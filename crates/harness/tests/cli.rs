//! CLI hardening tests: malformed input to `bglsim`, `repro`, and
//! `calib` must produce a one-line stderr message and exit status 2 —
//! never a panic (which would exit 101 with a backtrace).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn CLI binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The failure contract: exit 2 (not a 101 panic), exactly one line on
/// stderr, and that line mentions the offending input.
fn assert_clean_failure(bin: &str, args: &[&str], needle: &str) {
    let (code, _stdout, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(2),
        "{bin} {args:?} should exit 2, stderr: {stderr}"
    );
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{bin} {args:?} stderr: {stderr:?}"
    );
    assert!(
        stderr.contains(needle),
        "{bin} {args:?} stderr {stderr:?} lacks {needle:?}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?} panicked: {stderr}"
    );
}

#[test]
fn bglsim_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(bin, &["sweep", "--shape", "8xbogus"], "invalid shape");
    assert_clean_failure(bin, &["sweep", "--sizes", "12,notanumber"], "numeric bytes");
    assert_clean_failure(bin, &["sweep", "--strategies", "warp"], "unknown strategy");
    assert_clean_failure(bin, &["sweep", "--coverage", "1.5"], "within 0..=1");
    assert_clean_failure(bin, &["sweep", "--jobs", "0"], "positive integer");
    assert_clean_failure(bin, &["sweep", "--frobnicate"], "unknown flag");
    assert_clean_failure(bin, &["sweep", "--shape"], "needs a value");
    assert_clean_failure(bin, &["sweep", "--shape", "--csv"], "needs a value");
    assert_clean_failure(bin, &["sweep", "stray"], "unexpected argument");
    assert_clean_failure(bin, &["pattern", "--pattern", "plane:w"], "plane:x|y|z");
    assert_clean_failure(bin, &["pattern", "--pattern", "swirl:3"], "unknown pattern");
    assert_clean_failure(bin, &["pattern", "--m", "many"], "numeric bytes");
}

#[test]
fn bglsim_usage_exits_2_without_panicking() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let (code, _stdout, stderr) = run(bin, &[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn calib_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(bin, &["8xbogus"], "invalid shape");
    assert_clean_failure(bin, &["4x4", "WARP"], "unknown strategy");
    assert_clean_failure(bin, &["4x4", "AR", "lots"], "needs a number");
    assert_clean_failure(bin, &["4x4", "AR", "64", "2.0"], "within 0..=1");
    assert_clean_failure(
        bin,
        &["4x4", "AR", "64", "1.0", "--jobs", "zero"],
        "positive integer",
    );
    assert_clean_failure(bin, &["4x4", "--frobnicate"], "unknown flag");
    assert_clean_failure(
        bin,
        &["4x4", "AR", "64", "1.0", "extra"],
        "unexpected argument",
    );
}

#[test]
fn repro_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_repro");
    assert_clean_failure(bin, &["table3", "--scale", "huge"], "unknown scale");
    assert_clean_failure(bin, &["table3", "--jobs", "-1"], "positive integer");
    assert_clean_failure(bin, &["table3", "--out"], "needs a directory");
    assert_clean_failure(bin, &["table3", "--out", "--json"], "needs a directory");
    assert_clean_failure(bin, &["table3", "--frobnicate"], "unknown flag");
}

/// A tiny happy-path smoke so the suite also proves the binaries still
/// *work* after the flag-parsing rewrite (quick fit, no simulation).
#[test]
fn bglsim_fit_happy_path() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let (code, stdout, stderr) = run(bin, &["fit", "--shape", "4x4x4"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("ping-pong fit"), "{stdout}");
}
