//! CLI hardening tests: malformed input to `bglsim`, `repro`, and
//! `calib` must produce a one-line stderr message and exit status 2 —
//! never a panic (which would exit 101 with a backtrace).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("spawn CLI binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The failure contract: exit 2 (not a 101 panic), exactly one line on
/// stderr, and that line mentions the offending input.
fn assert_clean_failure(bin: &str, args: &[&str], needle: &str) {
    let (code, _stdout, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(2),
        "{bin} {args:?} should exit 2, stderr: {stderr}"
    );
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{bin} {args:?} stderr: {stderr:?}"
    );
    assert!(
        stderr.contains(needle),
        "{bin} {args:?} stderr {stderr:?} lacks {needle:?}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?} panicked: {stderr}"
    );
}

#[test]
fn bglsim_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(bin, &["sweep", "--shape", "8xbogus"], "invalid shape");
    assert_clean_failure(bin, &["sweep", "--sizes", "12,notanumber"], "numeric bytes");
    assert_clean_failure(bin, &["sweep", "--strategies", "warp"], "unknown strategy");
    assert_clean_failure(bin, &["sweep", "--coverage", "1.5"], "within 0..=1");
    assert_clean_failure(bin, &["sweep", "--jobs", "0"], "positive integer");
    assert_clean_failure(bin, &["sweep", "--frobnicate"], "unknown flag");
    assert_clean_failure(bin, &["sweep", "--shape"], "needs a value");
    assert_clean_failure(bin, &["sweep", "--shape", "--csv"], "needs a value");
    assert_clean_failure(bin, &["sweep", "stray"], "unexpected argument");
    assert_clean_failure(bin, &["pattern", "--pattern", "plane:w"], "plane:x|y|z");
    assert_clean_failure(bin, &["pattern", "--pattern", "swirl:3"], "unknown pattern");
    assert_clean_failure(bin, &["pattern", "--m", "many"], "numeric bytes");
}

#[test]
fn bglsim_rejects_malformed_pacer_flags() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let sweep = |extra: &[&'static str]| -> Vec<&'static str> {
        let mut args = vec![
            "sweep",
            "--shape",
            "4x4",
            "--strategies",
            "ar",
            "--sizes",
            "64",
        ];
        args.extend_from_slice(extra);
        args
    };
    assert_clean_failure(bin, &sweep(&["--pacer", "warp"]), "must be none, rate:");
    assert_clean_failure(bin, &sweep(&["--pacer", "rate:fast"]), "positive factor");
    assert_clean_failure(bin, &sweep(&["--pacer", "rate:-1"]), "positive factor");
    assert_clean_failure(bin, &sweep(&["--pacer", "rate:0"]), "positive factor");
    assert_clean_failure(bin, &sweep(&["--pacer", "credit:8"]), "<window>,<every>");
    assert_clean_failure(bin, &sweep(&["--pacer", "credit:0,1"]), "positive integer");
    assert_clean_failure(
        bin,
        &sweep(&["--pacer", "credit:4,zero"]),
        "positive integer",
    );
    assert_clean_failure(
        bin,
        &sweep(&["--pacer", "credit:2,5"]),
        "must not exceed the window",
    );
    assert_clean_failure(
        bin,
        &sweep(&["--credit", "2,5"]),
        "must not exceed the window",
    );
    assert_clean_failure(
        bin,
        &sweep(&["--pacer", "credit:4,2", "--credit", "4,2"]),
        "conflict",
    );
    assert_clean_failure(bin, &sweep(&["--pacer"]), "needs a value");
    // Pacing `auto` is meaningless: the resolved strategy picks its own.
    let mut auto_args = vec![
        "sweep",
        "--shape",
        "4x4",
        "--strategies",
        "auto",
        "--sizes",
        "64",
    ];
    auto_args.extend_from_slice(&["--pacer", "rate:1.0"]);
    assert_clean_failure(bin, &auto_args, "auto");
}

#[test]
fn bglsim_pacer_happy_paths() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    for pacer in ["none", "rate:1.0", "credit:4,2"] {
        let (code, stdout, stderr) = run(
            bin,
            &[
                "sweep",
                "--shape",
                "4x4",
                "--strategies",
                "tps",
                "--sizes",
                "64",
                "--pacer",
                pacer,
            ],
        );
        assert_eq!(code, Some(0), "--pacer {pacer} failed: {stderr}");
        assert!(stdout.contains("TPS"), "--pacer {pacer}: {stdout}");
    }
}

/// Every malformed `--fault` spec obeys the one-line exit-2 contract:
/// bad grammar, bad direction, out-of-range coordinate or rank, a
/// mesh-edge link, a duplicate, and an inverted schedule window.
#[test]
fn bglsim_rejects_malformed_fault_specs() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let sweep = |shape: &'static str, fault: &'static str| -> Vec<&'static str> {
        vec![
            "sweep",
            "--shape",
            shape,
            "--strategies",
            "ar",
            "--sizes",
            "64",
            "--fault",
            fault,
        ]
    };
    assert_clean_failure(bin, &sweep("4x4x4", "x+"), "link:X,Y,Z,DIR");
    assert_clean_failure(bin, &sweep("4x4x4", "link:"), "4 fields");
    assert_clean_failure(bin, &sweep("4x4x4", "link:0,0,0"), "4 fields");
    assert_clean_failure(bin, &sweep("4x4x4", "link:0,0,zero,x+"), "numeric");
    assert_clean_failure(bin, &sweep("4x4x4", "link:9,0,0,x+"), "outside partition");
    assert_clean_failure(bin, &sweep("4x4x4", "link:0,0,0,w+"), "x+|x-|y+|y-|z+|z-");
    assert_clean_failure(bin, &sweep("4x4x4", "link:0,0,0,x"), "x+|x-|y+|y-|z+|z-");
    assert_clean_failure(bin, &sweep("4x4x4", "node:999"), "out of range");
    assert_clean_failure(bin, &sweep("4x4x4", "node:five"), "numeric");
    assert_clean_failure(bin, &sweep("4x4x4", "node:5:@900-100"), "not after fail");
    assert_clean_failure(bin, &sweep("4x4x4", "node:5:@soon"), "numeric");
    assert_clean_failure(bin, &sweep("4x4x4", "node:5:100"), "@FAIL");
    assert_clean_failure(bin, &sweep("4x4x4", "disk:3"), "link or node");
    assert_clean_failure(
        bin,
        &sweep("4x4x4", "link:0,0,0,x+;link:0,0,0,x+"),
        "duplicate fault",
    );
    // The mesh dimension of 8x8x4M has no wrap link at its edge.
    assert_clean_failure(bin, &sweep("8x8x4M", "link:0,0,3,z+"), "mesh edge");
    assert_clean_failure(bin, &sweep("4x4x4", ""), "got \"\"");
    // Repeated flags accumulate, so a duplicate across two --fault
    // occurrences is caught exactly like one within a single spec.
    let mut repeated = sweep("4x4x4", "link:0,0,0,x+");
    repeated.extend_from_slice(&["--fault", "link:0,0,0,x+"]);
    assert_clean_failure(bin, &repeated, "duplicate fault");
    // The flag only exists where a simulation runs.
    assert_clean_failure(bin, &["fit", "--fault", "node:5"], "unknown flag");
}

/// Fault injection happy paths: AR completes around a statically dead
/// link (different table than healthy), DR reports the unreachable
/// pairs, and a scheduled node outage sweeps clean.
#[test]
fn bglsim_fault_happy_paths() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let sweep = |strategies: &'static str, extra: &[&'static str]| {
        let mut args = vec![
            "sweep",
            "--shape",
            "4x4x4",
            "--strategies",
            strategies,
            "--sizes",
            "240",
        ];
        args.extend_from_slice(extra);
        run(bin, &args)
    };
    // The human table rounds to fractions of a percent, so compare the
    // full JSON reports: the detoured traffic must move link counters.
    let (code, healthy, stderr) = sweep("ar", &["--json"]);
    assert_eq!(code, Some(0), "healthy sweep failed: {stderr}");

    let (code, ar, stderr) = sweep("ar", &["--fault", "link:0,0,0,x+", "--json"]);
    assert_eq!(code, Some(0), "faulty AR sweep failed: {stderr}");
    assert!(ar.contains("cycles"), "{ar}");
    assert_ne!(ar, healthy, "the dead link must change the run");

    let (code, dr, stderr) = sweep("dr", &["--fault", "link:0,0,0,x+"]);
    assert_eq!(code, Some(0), "DR sweep reports per-point errors: {stderr}");
    assert!(dr.contains("ERROR"), "{dr}");
    assert!(dr.contains("unreachable"), "{dr}");

    let (code, out, stderr) = sweep("ar", &["--fault", "node:5:@100-900"]);
    assert_eq!(code, Some(0), "scheduled node fault failed: {stderr}");
    assert!(out.contains("of peak"), "{out}");
}

/// Shape arity contract across the CLIs: any arity from 2 to 6 parses
/// (a true 2-D torus and a 5-D torus both run), while 1-token shapes,
/// missing or zero sizes, and arities above `MAX_DIMS` all obey the
/// one-line exit-2 contract.
#[test]
fn shape_arity_accepted_and_rejected_consistently() {
    let bglsim = env!("CARGO_BIN_EXE_bglsim");
    let sweep = |shape: &'static str| -> Vec<&'static str> {
        vec![
            "sweep",
            "--shape",
            shape,
            "--strategies",
            "ar",
            "--sizes",
            "64",
        ]
    };
    for shape in ["32x32", "4x4x4x4x2"] {
        let (code, stdout, stderr) = run(bglsim, &sweep(shape));
        assert_eq!(code, Some(0), "--shape {shape} failed: {stderr}");
        assert!(stdout.contains("of peak"), "--shape {shape}: {stdout}");
    }
    // 1-token shapes are rejected: spell a line "8x1x1" explicitly.
    assert_clean_failure(bglsim, &sweep("8"), "expected 2..=6");
    assert_clean_failure(bglsim, &sweep("4x"), "bad size");
    assert_clean_failure(bglsim, &sweep("4x0x4"), "zero size");
    assert_clean_failure(bglsim, &sweep("2x2x2x2x2x2x2"), "expected 2..=6");
    assert_clean_failure(bglsim, &["profile", "--shape", "8"], "expected 2..=6");
    assert_clean_failure(bglsim, &["fit", "--shape", "4x0x4"], "zero size");
    let calib = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(calib, &["8"], "expected 2..=6");
    assert_clean_failure(calib, &["4x"], "bad size");
    assert_clean_failure(calib, &["4x0x4"], "zero size");
    assert_clean_failure(calib, &["2x2x2x2x2x2x2"], "expected 2..=6");
}

/// The 3-D-only indirect strategies fail fast on higher-arity tori:
/// exit 2 with the typed one-line message, never a hang — on sweep,
/// profile, and calib.
#[test]
fn indirect_strategies_on_high_arity_tori_exit_2() {
    let bglsim = env!("CARGO_BIN_EXE_bglsim");
    let needle = "at most 3 dimensions";
    assert_clean_failure(
        bglsim,
        &[
            "sweep",
            "--shape",
            "4x4x4x4",
            "--strategies",
            "tps",
            "--sizes",
            "64",
        ],
        needle,
    );
    assert_clean_failure(
        bglsim,
        &[
            "sweep",
            "--shape",
            "4x4x4x4x2",
            "--strategies",
            "vm",
            "--sizes",
            "64",
        ],
        needle,
    );
    assert_clean_failure(
        bglsim,
        &["profile", "--shape", "4x4x4x4", "--strategy", "tps"],
        needle,
    );
    let calib = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(calib, &["4x4x4x4", "TPS", "64", "1.0"], needle);
    assert_clean_failure(calib, &["4x4x4x4", "VM", "64", "1.0"], needle);
}

#[test]
fn bglsim_usage_exits_2_without_panicking() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let (code, _stdout, stderr) = run(bin, &[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bglsim_validate_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(bin, &["validate", "--tier", "paper"], "quick or full");
    assert_clean_failure(bin, &["validate", "--tier"], "needs a value");
    assert_clean_failure(bin, &["validate", "--jobs", "0"], "positive integer");
    assert_clean_failure(bin, &["validate", "--frobnicate"], "unknown flag");
    // --bless is a bool flag; a stray value after it is rejected.
    assert_clean_failure(
        bin,
        &["validate", "--bless", "stray"],
        "unexpected argument",
    );
}

#[test]
fn calib_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(bin, &["8xbogus"], "invalid shape");
    assert_clean_failure(bin, &["4x4", "WARP"], "unknown strategy");
    assert_clean_failure(bin, &["4x4", "AR", "lots"], "needs a number");
    assert_clean_failure(bin, &["4x4", "AR", "64", "2.0"], "within 0..=1");
    assert_clean_failure(
        bin,
        &["4x4", "AR", "64", "1.0", "--jobs", "zero"],
        "positive integer",
    );
    assert_clean_failure(bin, &["4x4", "--frobnicate"], "unknown flag");
    assert_clean_failure(
        bin,
        &["4x4", "AR", "64", "1.0", "extra"],
        "unexpected argument",
    );
}

#[test]
fn repro_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_repro");
    assert_clean_failure(bin, &["table3", "--scale", "huge"], "unknown scale");
    assert_clean_failure(bin, &["table3", "--jobs", "-1"], "positive integer");
    assert_clean_failure(bin, &["table3", "--out"], "needs a directory");
    assert_clean_failure(bin, &["table3", "--out", "--json"], "needs a directory");
    assert_clean_failure(bin, &["table3", "--frobnicate"], "unknown flag");
}

/// Every simulation CLI accepts `--engine` and rejects an unknown mode
/// with the one-line exit-2 contract.
#[test]
fn engine_flag_rejects_unknown_mode() {
    let bglsim = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(bglsim, &["sweep", "--engine", "warp"], "unknown engine");
    assert_clean_failure(bglsim, &["sweep", "--engine"], "needs a value");
    assert_clean_failure(bglsim, &["pattern", "--engine", "warp"], "unknown engine");
    assert_clean_failure(bglsim, &["validate", "--engine", "warp"], "unknown engine");
    let calib = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(
        calib,
        &["4x4", "AR", "64", "1.0", "--engine", "warp"],
        "unknown engine",
    );
    let repro = env!("CARGO_BIN_EXE_repro");
    assert_clean_failure(repro, &["table3", "--engine", "warp"], "unknown engine");
}

/// Every simulation CLI accepts `--shards` and rejects zero or garbage
/// with the one-line exit-2 contract.
#[test]
fn shards_flag_rejects_malformed_counts() {
    let bglsim = env!("CARGO_BIN_EXE_bglsim");
    for bad in ["0", "-4", "many"] {
        assert_clean_failure(bglsim, &["sweep", "--shards", bad], "positive integer");
    }
    assert_clean_failure(bglsim, &["pattern", "--shards", "0"], "positive integer");
    assert_clean_failure(bglsim, &["validate", "--shards", "0"], "positive integer");
    let calib = env!("CARGO_BIN_EXE_calib");
    assert_clean_failure(
        calib,
        &["4x4", "AR", "64", "1.0", "--shards", "0"],
        "positive integer",
    );
    let repro = env!("CARGO_BIN_EXE_repro");
    assert_clean_failure(repro, &["table3", "--shards", "0"], "positive integer");
}

/// Sharding is observationally invisible: the same tiny sweep prints a
/// byte-identical table at 1 and 4 shards, in every engine mode.
#[test]
fn shards_flag_output_is_identical() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let sweep = |extra: &[&str]| {
        let mut args = vec![
            "sweep",
            "--shape",
            "4x4x4",
            "--strategies",
            "ar",
            "--sizes",
            "64",
        ];
        args.extend_from_slice(extra);
        let (code, stdout, stderr) = run(bin, &args);
        assert_eq!(code, Some(0), "{args:?} failed: {stderr}");
        stdout
    };
    let reference = sweep(&[]);
    assert!(reference.contains("of peak"), "{reference}");
    for engine in ["full-scan", "active-set", "event"] {
        for shards in ["1", "4"] {
            let got = sweep(&["--engine", engine, "--shards", shards]);
            assert_eq!(
                got, reference,
                "--engine {engine} --shards {shards} must not change the table"
            );
        }
    }
}

/// Each named engine mode runs a small sweep to completion and prints
/// the same table (the modes are observationally equivalent).
#[test]
fn engine_flag_happy_paths() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    for engine in ["full-scan", "active-set", "event"] {
        let (code, stdout, stderr) = run(
            bin,
            &[
                "sweep",
                "--shape",
                "4x4",
                "--strategies",
                "ar",
                "--sizes",
                "64",
                "--engine",
                engine,
            ],
        );
        assert_eq!(code, Some(0), "--engine {engine} failed: {stderr}");
        assert!(stdout.contains("of peak"), "--engine {engine}: {stdout}");
    }
}

/// A tiny happy-path smoke so the suite also proves the binaries still
/// *work* after the flag-parsing rewrite (quick fit, no simulation).
#[test]
fn bglsim_fit_happy_path() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let (code, stdout, stderr) = run(bin, &["fit", "--shape", "4x4x4"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("ping-pong fit"), "{stdout}");
}

#[test]
fn bglsim_rejects_malformed_trace_flags() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(
        bin,
        &["sweep", "--trace-interval", "0"],
        "positive cycle count",
    );
    assert_clean_failure(
        bin,
        &["sweep", "--trace-interval", "often"],
        "positive cycle count",
    );
    assert_clean_failure(bin, &["sweep", "--trace-out"], "needs a value");
    // --report is a bool flag; a stray value after it is rejected.
    assert_clean_failure(bin, &["sweep", "--report", "stray"], "unexpected argument");
    // These flags only exist under `sweep`.
    assert_clean_failure(bin, &["fit", "--report"], "unknown flag");
}

/// `--report` on a tiny sweep prints every report section.
#[test]
fn bglsim_report_happy_path() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let (code, stdout, stderr) = run(
        bin,
        &[
            "sweep",
            "--shape",
            "4x4",
            "--strategies",
            "ar",
            "--sizes",
            "240",
            "--trace-interval",
            "200",
            "--report",
        ],
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("run report: AR on 4x4"), "{stdout}");
    assert!(stdout.contains("timeline ("), "{stdout}");
    assert!(stdout.contains("FIFO highlights:"), "{stdout}");
    assert!(stdout.contains("hottest links"), "{stdout}");
}

/// `--trace-out` writes parseable exports: RFC-4180 CSV for `.csv`
/// paths, JSON that round-trips through the serde stubs otherwise.
#[test]
fn bglsim_trace_out_writes_csv_and_json() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let dir = std::env::temp_dir().join(format!("bglsim-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let csv_path = dir.join("trace.csv");
    let json_path = dir.join("trace.json");

    let base = [
        "sweep",
        "--shape",
        "4x4",
        "--strategies",
        "ar",
        "--sizes",
        "240",
    ];
    let mut csv_args: Vec<&str> = base.to_vec();
    let csv_s = csv_path.to_str().unwrap();
    csv_args.extend(["--trace-out", csv_s]);
    let (code, _stdout, stderr) = run(bin, &csv_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv written");
    assert!(csv.starts_with("cycle,busy_x"), "{csv}");
    assert!(csv.contains("\r\n"), "RFC-4180 wants CRLF");

    let mut json_args: Vec<&str> = base.to_vec();
    let json_s = json_path.to_str().unwrap();
    json_args.extend(["--trace-out", json_s]);
    let (code, _stdout, stderr) = run(bin, &json_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let json = std::fs::read_to_string(&json_path).expect("json written");
    let reports: Vec<bgl_core::AaReport> = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(reports.len(), 1);
    let trace = reports[0].trace.as_ref().expect("trace present");
    assert!(!trace.samples.is_empty());
    assert_eq!(trace.link_busy_totals(), reports[0].stats.link_busy_chunks);

    std::fs::remove_dir_all(&dir).ok();
}

/// `profile` renders the host-side report for one point in every mode,
/// with the event section appearing exactly in event mode.
#[test]
fn bglsim_profile_happy_paths() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    for engine in ["full-scan", "active-set", "event"] {
        let (code, stdout, stderr) = run(
            bin,
            &[
                "profile",
                "--shape",
                "4x4",
                "--strategy",
                "ar",
                "--m",
                "240",
                "--engine",
                engine,
            ],
        );
        assert_eq!(code, Some(0), "--engine {engine} failed: {stderr}");
        assert!(
            stdout.contains("perf profile: AR on 4x4"),
            "--engine {engine}: {stdout}"
        );
        assert!(stdout.contains("phase breakdown"), "{stdout}");
        assert!(stdout.contains("imbalance ratio"), "{stdout}");
        assert_eq!(
            stdout.contains("skip-length histogram"),
            engine == "event",
            "--engine {engine}: {stdout}"
        );
        assert!(stderr.contains("bglsim: perf:"), "{stderr}");
    }
}

/// `profile --csv` emits RFC-4180 `metric,value` rows; `--json` a full
/// report whose profile round-trips through the serde stubs.
#[test]
fn bglsim_profile_exports_csv_and_json() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let base = [
        "profile",
        "--shape",
        "4x4",
        "--strategy",
        "ar",
        "--m",
        "240",
    ];
    let mut csv_args = base.to_vec();
    csv_args.push("--csv");
    let (code, csv, stderr) = run(bin, &csv_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(csv.starts_with("metric,value"), "{csv}");
    assert!(csv.contains("\r\n"), "RFC-4180 wants CRLF");
    assert!(csv.contains("total_secs,"), "{csv}");
    let mut json_args = base.to_vec();
    json_args.push("--json");
    let (code, json, stderr) = run(bin, &json_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let report: bgl_core::AaReport = serde_json::from_str(&json).expect("round-trips");
    let perf = report.perf.as_ref().expect("profile present");
    assert!(perf.stepped_cycles > 0);
    assert_eq!(perf.wide_cycles + perf.inline_cycles, perf.stepped_cycles);
}

/// `profile` obeys the one-line exit-2 contract on malformed input.
#[test]
fn bglsim_profile_rejects_malformed_input() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    assert_clean_failure(bin, &["profile", "--shape", "8xbogus"], "invalid shape");
    assert_clean_failure(bin, &["profile", "--m", "lots"], "numeric bytes");
    assert_clean_failure(bin, &["profile", "--coverage", "2.0"], "within 0..=1");
    assert_clean_failure(bin, &["profile", "--engine", "warp"], "unknown engine");
    assert_clean_failure(bin, &["profile", "--shards", "0"], "positive integer");
    assert_clean_failure(bin, &["profile", "--strategy", "warp"], "unknown strategy");
    assert_clean_failure(bin, &["profile", "--frobnicate"], "unknown flag");
    assert_clean_failure(bin, &["profile", "--json", "--csv"], "conflict");
    // --perf belongs to sweep/validate; profile is always profiled.
    assert_clean_failure(bin, &["profile", "--perf"], "unknown flag");
}

/// `--perf` is observational: a sweep's stdout table is byte-identical
/// with and without it (the timing summary goes to stderr), and
/// `--progress` is accepted without polluting stdout.
#[test]
fn bglsim_perf_and_progress_do_not_change_sweep_output() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let base = [
        "sweep",
        "--shape",
        "4x4",
        "--strategies",
        "ar",
        "--sizes",
        "240",
    ];
    let (code, reference, stderr) = run(bin, &base);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    let mut perf_args = base.to_vec();
    perf_args.push("--perf");
    let (code, stdout, stderr) = run(bin, &perf_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert_eq!(stdout, reference, "--perf must not change the table");
    assert!(stderr.contains("bglsim: perf:"), "{stderr}");
    let mut progress_args = base.to_vec();
    progress_args.push("--progress");
    let (code, stdout, stderr) = run(bin, &progress_args);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert_eq!(stdout, reference, "--progress must not change the table");
}

/// CSV export is single-series by design: two points must fail cleanly.
#[test]
fn bglsim_trace_out_csv_rejects_multiple_points() {
    let bin = env!("CARGO_BIN_EXE_bglsim");
    let dir = std::env::temp_dir().join(format!("bglsim-trace-multi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let path = dir.join("two.csv");
    assert_clean_failure(
        bin,
        &[
            "sweep",
            "--shape",
            "4x4",
            "--strategies",
            "ar,dr",
            "--sizes",
            "240",
            "--trace-out",
            path.to_str().unwrap(),
        ],
        "exactly one point",
    );
    std::fs::remove_dir_all(&dir).ok();
}
