//! The tentpole guarantee of the parallel runner: executing the same
//! declared point set with one worker thread and with many produces
//! byte-identical reports — cycle counts, network statistics, and the
//! rendered experiment rows.

use bgl_core::StrategyKind;
use bgl_harness::run_suite;
use bgl_harness::runner::{RunPoint, Runner, Scale};
/// A point set that crosses shapes, strategies, message sizes, sampled
/// coverage, and a config variant — the kinds of runs a real suite mixes.
fn point_set(runner: &Runner) -> Vec<RunPoint> {
    let mut pts = vec![
        runner.point("4x4", &StrategyKind::ar(), 240),
        runner.point("4x4", &StrategyKind::dr(), 240),
        runner.point("4x4x2", &StrategyKind::tps(), 240),
        runner.point("4x4", &StrategyKind::vmesh(), 32),
        runner.point("4x4x4", &StrategyKind::xyz(), 64),
        runner.point("8x8x8", &StrategyKind::ar(), 912), // coverage-sampled at Quick
    ];
    pts.push(
        runner
            .point("4x4", &StrategyKind::ar(), 240)
            .variant("vc8", |c| c.router.vc_fifo_chunks = 8),
    );
    pts
}

#[test]
fn one_thread_and_many_threads_agree_exactly() {
    let serial = Runner::new(Scale::Quick).with_jobs(1);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);
    let parallel = Runner::new(Scale::Quick).with_jobs(threads);
    serial.run_points(&point_set(&serial));
    parallel.run_points(&point_set(&parallel));
    assert_eq!(serial.cached_runs(), parallel.cached_runs());
    for (a, b) in point_set(&serial).iter().zip(point_set(&parallel).iter()) {
        let ra = serial.report(a).expect("serial run completes");
        let rb = parallel.report(b).expect("parallel run completes");
        assert_eq!(ra.cycles, rb.cycles, "{:?}", a.key);
        assert_eq!(ra.stats, rb.stats, "{:?}", a.key);
        assert_eq!(ra, rb, "{:?}", a.key);
    }
}

#[test]
fn suite_rows_identical_across_thread_counts() {
    let ids = ["fig5", "fig6", "table4"];
    let serial = Runner::new(Scale::Quick).with_jobs(1);
    let parallel = Runner::new(Scale::Quick).with_jobs(8);
    let a = run_suite(&serial, &ids);
    let b = run_suite(&parallel, &ids);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.rows, rb.rows, "{}", ra.id);
        assert_eq!(ra.to_csv(), rb.to_csv(), "{}", ra.id);
    }
}

#[test]
fn repeated_batches_reuse_the_cache() {
    let runner = Runner::new(Scale::Quick).with_jobs(4);
    let pts = point_set(&runner);
    runner.run_points(&pts);
    let n = runner.cached_runs();
    runner.run_points(&pts);
    assert_eq!(
        runner.cached_runs(),
        n,
        "second batch must be pure cache hits"
    );
}
