//! Human-readable host-profiling reports.
//!
//! [`render_perf_report`] turns an [`AaReport`] that carries a
//! [`PerfProfile`](bgl_sim::PerfProfile) into the `bglsim profile` text:
//! a per-phase wall-clock breakdown, the per-shard busy/barrier-wait
//! split with the load-imbalance ratio, and — for event-mode runs — the
//! wake-cause breakdown and the power-of-two skip-length histogram.
//! Everything here is *host* time (seconds on the machine running the
//! simulator); the simulated-cycle figures next to it exist precisely so
//! the two are never confused.

use bgl_core::AaReport;
use bgl_sim::{EventPerf, PerfProfile};
use std::fmt::Write as _;

/// Width of the share bars, characters at 100 %.
const BAR_WIDTH: usize = 24;

/// Render the full profile report. Falls back to a one-line hint when the
/// report carries no profile (the run was made without `SimConfig::perf`).
pub fn render_perf_report(report: &AaReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf profile: {} on {}, m={} B/dest, coverage {:.4}",
        report.strategy.name(),
        report.partition,
        report.workload.m_bytes,
        report.workload.coverage,
    );
    let Some(p) = &report.perf else {
        let _ = writeln!(out, "(no profile recorded — rerun with --perf)");
        return out;
    };
    let _ = writeln!(
        out,
        "  simulated {} cycles ({:.3} ms of machine time) in {:.3} s of host wall-clock",
        report.cycles,
        report.time_secs * 1e3,
        p.total_secs,
    );
    let _ = writeln!(
        out,
        "  stepped {} cycles ({} wide, {} inline), skipped {} cycles",
        p.stepped_cycles,
        p.wide_cycles,
        p.inline_cycles,
        p.skipped_cycles(),
    );
    let _ = writeln!(
        out,
        "  active set: mean {:.1}, max {} marked nodes per stepped cycle",
        p.active_occupancy_mean, p.active_occupancy_max,
    );
    out.push('\n');
    render_phase_breakdown(&mut out, p);
    render_shard_balance(&mut out, p);
    if let Some(ev) = &p.event {
        render_event_counters(&mut out, ev);
    }
    out
}

/// A `#`/`-` bar whose fill is `share` of [`BAR_WIDTH`].
fn bar(share: f64) -> String {
    let filled = ((share.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
    "#".repeat(filled) + &"-".repeat(BAR_WIDTH - filled)
}

/// Per-phase host seconds summed over all shards, as shares of the
/// phase-attributed busy total.
fn render_phase_breakdown(out: &mut String, p: &PerfProfile) {
    let totals = p.phase_totals();
    let busy = totals.total();
    let _ = writeln!(
        out,
        "phase breakdown (host seconds, all shards; bar = share of busy time):"
    );
    for (label, secs) in totals.named() {
        let share = if busy > 0.0 { secs / busy } else { 0.0 };
        let _ = writeln!(
            out,
            "  {label:<12} {}  {secs:>9.4}s  {:>5.1}%",
            bar(share),
            100.0 * share,
        );
    }
    let attributed = if p.total_secs > 0.0 {
        100.0 * busy / p.total_secs
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  busy {busy:.4}s ({attributed:.1}% of wall-clock), barrier wait {:.4}s",
        p.barrier_wait_secs(),
    );
}

/// Per-shard busy/barrier table plus the imbalance ratio. Barrier-wait
/// columns only accumulate on threaded (wide) cycles.
fn render_shard_balance(out: &mut String, p: &PerfProfile) {
    let _ = writeln!(
        out,
        "shard balance ({} shard{}):",
        p.shards.len(),
        if p.shards.len() == 1 { "" } else { "s" },
    );
    let _ = writeln!(
        out,
        "  {:>6}  {:>10}  {:>12}  {:>12}",
        "shard", "busy s", "barrier A s", "barrier B s",
    );
    for (i, s) in p.shards.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {i:>6}  {:>10.4}  {:>12.4}  {:>12.4}",
            s.busy_secs(),
            s.barrier_a_wait_secs,
            s.barrier_b_wait_secs,
        );
    }
    let _ = writeln!(
        out,
        "  imbalance ratio (busiest / mean busy): {:.3}",
        p.shard_imbalance(),
    );
}

/// Event-engine section: jump totals, wake-cause breakdown and the
/// skip-length histogram (only non-empty buckets are printed).
fn render_event_counters(out: &mut String, ev: &EventPerf) {
    let avg = if ev.skips > 0 {
        ev.skipped_cycles as f64 / ev.skips as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "event engine: {} cycles skipped in {} jumps (avg {avg:.1} cycles/jump), \
         {} fresh suppressions",
        ev.skipped_cycles, ev.skips, ev.fresh_suppressions,
    );
    let _ = writeln!(out, "wake causes (what bounded each jump):");
    for (label, count) in ev.wake_causes() {
        let share = if ev.skips > 0 {
            count as f64 / ev.skips as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {label:<18} {}  {count:>8}  {:>5.1}%",
            bar(share),
            100.0 * share,
        );
    }
    let _ = writeln!(out, "skip-length histogram (cycles per jump):");
    let max = ev.skip_histogram.iter().copied().max().unwrap_or(0);
    for (k, &count) in ev.skip_histogram.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let share = if max > 0 {
            count as f64 / max as f64
        } else {
            0.0
        };
        let lo = 1u64 << k;
        let label = if k + 1 == ev.skip_histogram.len() {
            format!("{lo}+")
        } else {
            format!("{lo}..{}", (lo << 1) - 1)
        };
        let _ = writeln!(out, "  {label:>14} {}  {count:>8}", bar(share));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_core::{AaRun, AaWorkload, StrategyKind};
    use bgl_sim::{EngineMode, PerfConfig};
    use bgl_torus::Partition;

    fn profiled_report(engine: EngineMode) -> AaReport {
        let part: Partition = "4x4".parse().unwrap();
        AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .sim(move |c| {
                c.engine = engine;
                c.perf = Some(PerfConfig::default());
            })
            .run()
            .unwrap()
    }

    #[test]
    fn report_renders_phase_and_shard_sections() {
        let report = profiled_report(EngineMode::ActiveSet);
        assert!(report.perf.is_some(), "profile must be recorded");
        let text = render_perf_report(&report);
        assert!(text.contains("perf profile: AR on 4x4"), "{text}");
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("arbitration"), "{text}");
        assert!(text.contains("imbalance ratio"), "{text}");
        assert!(
            !text.contains("event engine:"),
            "no event section outside event mode: {text}"
        );
    }

    #[test]
    fn event_mode_report_has_wake_causes_and_histogram() {
        let report = profiled_report(EngineMode::EventDriven);
        let text = render_perf_report(&report);
        assert!(text.contains("event engine:"), "{text}");
        assert!(text.contains("wake causes"), "{text}");
        assert!(text.contains("skip-length histogram"), "{text}");
    }

    #[test]
    fn report_without_profile_suggests_flag() {
        let part: Partition = "4x4".parse().unwrap();
        let report = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .run()
            .unwrap();
        let text = render_perf_report(&report);
        assert!(text.contains("no profile recorded"), "{text}");
    }

    #[test]
    fn bars_are_bounded() {
        let report = profiled_report(EngineMode::EventDriven);
        let text = render_perf_report(&report);
        for line in text.lines() {
            let hashes = line.chars().filter(|&c| c == '#').count();
            assert!(hashes <= BAR_WIDTH, "{line}");
        }
    }
}
