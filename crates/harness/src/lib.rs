//! Experiment harness: regenerates every table and figure of the paper
//! with paper-value comparison columns.
//!
//! * [`runner`] — budgeted, memoizing simulation runner (coverage sampling
//!   for the very large partitions).
//! * [`experiments`] — one module per table/figure (`table1`–`table4`,
//!   `fig1`–`fig7`, plus `ablations`).
//! * [`paper`] — the paper's reported numbers, transcribed.
//! * [`experiment`] — report rendering (text/CSV/JSON).
//! * [`conformance`] — the DESIGN.md §7 validation targets as a
//!   machine-checked PASS/FAIL suite (`bglsim validate`).
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro list                  # show experiment ids
//! repro table3 --scale paper  # regenerate one table at paper scale
//! repro all --scale quick     # regenerate everything, scaled down
//! ```

pub mod conformance;
pub mod experiment;
pub mod experiments;
pub mod paper;
pub mod perf_report;
pub mod runner;
pub mod trace_report;

pub use conformance::{run_validation, Tier, ValidationReport};
pub use experiment::ExperimentReport;
pub use perf_report::render_perf_report;
pub use runner::{Runner, RunnerTiming, Scale};
pub use trace_report::render_run_report;

/// Run a set of experiment ids, in order, sharing one runner/cache.
/// Invalid ids are skipped with a stderr warning.
///
/// Every experiment's declared simulation points are gathered first and
/// executed as one deduplicated batch on the runner's thread pool, so
/// points shared across experiments run once and the pool stays full
/// across experiment boundaries.
pub fn run_suite(runner: &Runner, ids: &[&str]) -> Vec<ExperimentReport> {
    let points: Vec<_> = ids
        .iter()
        .filter_map(|id| experiments::points_by_id(runner, id))
        .flatten()
        .collect();
    runner.run_points(&points);
    ids.iter()
        .filter_map(|id| {
            let rep = experiments::run_by_id(runner, id);
            if rep.is_none() {
                eprintln!("warning: unknown experiment id {id:?}");
            }
            rep
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_skips_unknown_ids() {
        let r = Runner::new(Scale::Quick);
        let reps = run_suite(&r, &["fig5", "bogus"]);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].id, "fig5");
    }
}
