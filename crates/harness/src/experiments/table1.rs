//! Table 1: AR percent of peak on symmetric lines, planes and tori for
//! large messages.

use crate::experiment::ExperimentReport;
use crate::experiments::{cov, pct};
use crate::paper::TABLE1_AR_SYMMETRIC;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// Partitions evaluated at each scale.
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x1x1", "16x1x1", "8x8", "8x8x8"],
        Scale::Paper => TABLE1_AR_SYMMETRIC.iter().map(|(s, _)| *s).collect(),
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    shapes(runner.scale)
        .iter()
        .map(|shape| {
            let m = runner.large_m_for(&shape.parse().unwrap());
            runner.point(shape, &StrategyKind::ar(), m)
        })
        .collect()
}

/// Run Table 1.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "table1",
        "AR % of peak, symmetric partitions, large messages (paper Table 1)",
        &[
            "Partition",
            "AR % (sim)",
            "AR % (paper)",
            "m (B)",
            "coverage",
        ],
    );
    for shape in shapes(runner.scale) {
        let m = runner.large_m_for(&shape.parse().unwrap());
        let paper = TABLE1_AR_SYMMETRIC
            .iter()
            .find(|(s, _)| *s == shape)
            .map(|(_, v)| pct(*v))
            .unwrap_or_else(|| "-".into());
        match runner.aa(shape, &StrategyKind::ar(), m) {
            Ok(r) => rep.push_row(vec![
                shape.to_string(),
                pct(r.percent_of_peak),
                paper,
                m.to_string(),
                cov(r.workload.coverage),
            ]),
            Err(e) => rep.push_row(vec![
                shape.to_string(),
                format!("ERROR: {e}"),
                paper,
                m.to_string(),
                "-".into(),
            ]),
        }
    }
    rep.note("percent of peak is Equation 2 with the measured run time; see EXPERIMENTS.md for coverage sampling");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_shapes_are_symmetric_and_high() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows.len(), 4);
        for row in &rep.rows {
            let v: f64 = row[1].parse().expect("numeric percent");
            assert!(v > 55.0, "{} only reached {v}%", row[0]);
            assert!(v <= 101.0);
        }
    }
}
