//! Table 2: AR percent of peak on asymmetric meshes and tori for large
//! messages.

use crate::experiment::ExperimentReport;
use crate::experiments::{cov, pct};
use crate::paper::TABLE2_AR_ASYMMETRIC;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// Partitions evaluated at each scale.
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x2M", "8x16", "8x8x2M", "8x4x4"],
        Scale::Paper => TABLE2_AR_ASYMMETRIC.iter().map(|(s, _)| *s).collect(),
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    shapes(runner.scale)
        .iter()
        .map(|shape| {
            let m = runner.large_m_for(&shape.parse().unwrap());
            runner.point(shape, &StrategyKind::ar(), m)
        })
        .collect()
}

/// Run Table 2.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "table2",
        "AR % of peak, asymmetric meshes and tori, large messages (paper Table 2)",
        &[
            "Partition",
            "AR % (sim)",
            "AR % (paper)",
            "m (B)",
            "coverage",
        ],
    );
    for shape in shapes(runner.scale) {
        let m = runner.large_m_for(&shape.parse().unwrap());
        let paper = TABLE2_AR_ASYMMETRIC
            .iter()
            .find(|(s, _)| *s == shape)
            .map(|(_, v)| pct(*v))
            .unwrap_or_else(|| "-".into());
        match runner.aa(shape, &StrategyKind::ar(), m) {
            Ok(r) => rep.push_row(vec![
                shape.to_string(),
                pct(r.percent_of_peak),
                paper,
                m.to_string(),
                cov(r.workload.coverage),
            ]),
            Err(e) => rep.push_row(vec![
                shape.to_string(),
                format!("ERROR: {e}"),
                paper,
                m.to_string(),
                "-".into(),
            ]),
        }
    }
    rep.note("asymmetric partitions degrade AR: packets burn short-dimension hops and queue for the long dimension");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_runs_and_shows_degradation_vs_symmetric() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows.len(), 4);
        for row in &rep.rows {
            let v: f64 = row[1].parse().expect("numeric percent");
            assert!(v > 30.0 && v <= 101.0, "{}: {v}", row[0]);
        }
    }
}
