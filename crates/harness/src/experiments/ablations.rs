//! Ablations beyond the paper: which design choices carry the results.
//!
//! * **Bubble rule / escape VC off** → the adaptive network deadlocks
//!   (watchdog fires) — the deadlock-avoidance machinery is load-bearing.
//! * **VC FIFO depth** → shallow buffers trigger the asymmetric-torus
//!   congestion collapse early.
//! * **Longest-dimension-first shaping on** (an extension beyond the
//!   paper): software hint-bit-style restriction of adaptive packets to
//!   their longest remaining dimension largely removes the Section-3.2
//!   tree saturation — a router-independent mitigation.
//! * **TPS without reserved injection FIFOs** → phase-1 packets queue
//!   behind phase-2 packets, breaking the pipelining argument.
//! * **TPS credit-based flow control** → bounding intermediate memory
//!   costs little bandwidth (the paper's future-work claim).

use crate::experiment::ExperimentReport;
use crate::experiments::pct;
use crate::runner::{Runner, Scale};
use bgl_core::{CreditConfig, StrategyKind};
use bgl_sim::SimConfig;

/// The asymmetric testbed partition per scale.
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "8x4x4",
        Scale::Paper => "16x8x8",
    }
}

/// Run the ablation suite.
pub fn run(runner: &Runner) -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "ablations",
        "Design-choice ablations on an asymmetric torus",
        &["variant", "strategy", "% of peak / outcome"],
    );
    let shape = shape(runner.scale);
    let m = runner.large_m_for(&shape.parse().unwrap());
    let cov = runner.budget_coverage(&shape.parse().unwrap(), m);
    let ar = StrategyKind::AdaptiveRandomized;
    let tps = StrategyKind::TwoPhaseSchedule { linear: None, credit: None };
    let tps_credit = StrategyKind::TwoPhaseSchedule {
        linear: None,
        credit: Some(CreditConfig::default()),
    };

    let mut case = |label: &str, strategy: &StrategyKind, tweak: &dyn Fn(&mut SimConfig)| {
        let cell = match runner.aa_variant(shape, strategy, m, cov, label, tweak) {
            Ok(r) => pct(r.percent_of_peak),
            Err(e) => format!("{e}"),
        };
        rep.push_row(vec![label.to_string(), strategy.name().to_string(), cell]);
    };

    case("baseline", &ar, &|_| {});
    case("no-bubble-rule (slack=0)", &ar, &|c| c.router.bubble_slack_chunks = 0);
    case("no-escape-vc", &ar, &|c| c.router.adaptive_bubble_escape = false);
    case("vc-fifo-8-chunks", &ar, &|c| c.router.vc_fifo_chunks = 8);
    case("vc-fifo-16-chunks", &ar, &|c| c.router.vc_fifo_chunks = 16);
    case("vc-fifo-256-chunks", &ar, &|c| c.router.vc_fifo_chunks = 256);
    case("longest-first-shaping", &ar, &|c| c.router.longest_first_bias = Some(true));
    case("injection-priority", &ar, &|c| c.router.transit_priority = false);
    case("tps-baseline", &tps, &|_| {});
    case("tps-shared-inj-fifos", &tps, &|c| c.inj_class_masks = vec![u8::MAX; 6]);
    case("tps-credit-flow-control", &tps_credit, &|_| {});
    // The HPCC-Randomaccess-style three-phase scheme the paper argues TPS
    // beats ("gains from lower overheads as it has only one forwarding
    // phase"): two software forwarding hops instead of one.
    case("xyz-three-phase", &StrategyKind::XyzRouting, &|_| {});
    // Pinned high-pressure pair: the congestion collapse of classical
    // adaptivity needs a full (unsampled) exchange to show at small scale.
    for (label, bias) in [
        ("pinned-baseline (full AA 8x4x4)", false),
        ("pinned-shaped (full AA 8x4x4)", true),
    ] {
        let cell = match runner.aa_variant("8x4x4", &ar, 1872, 1.0, label, |c| {
            c.router.longest_first_bias = Some(bias);
            c.router.vc_fifo_chunks = 32; // BG/L's literal 1 KB VC FIFOs
        }) {
            Ok(r) => pct(r.percent_of_peak),
            Err(e) => format!("{e}"),
        };
        rep.push_row(vec![label.to_string(), ar.name().to_string(), cell]);
    }
    // The textbook deadlock: classical fully adaptive routing, no bubble
    // slack, tight (one-packet-deep headroom) VC FIFOs, under a full
    // unsampled exchange. Run pinned rather than budgeted so the pressure
    // is high enough to close the cycles at any scale.
    let deadlock = match runner.aa_variant(
        "8x4x4",
        &ar,
        1872,
        1.0,
        "deadlock-demo",
        |c| {
            c.router.bubble_slack_chunks = 0;
            c.router.vc_fifo_chunks = 32;
            c.watchdog_cycles = 100_000;
        },
    ) {
        Ok(r) => pct(r.percent_of_peak),
        Err(e) => format!("{e}"),
    };
    rep.push_row(vec![
        "no-bubble-rule, vc=32, full AA on 8x4x4".into(),
        ar.name().to_string(),
        deadlock,
    ]);
    rep.note("a Stalled outcome is the expected deadlock when the bubble machinery is disabled");
    rep.note("tps-shared-inj-fifos removes the per-phase reservation that enables phase pipelining");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_ablations_show_expected_shape() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        let get = |label: &str| -> String {
            rep.rows.iter().find(|row| row[0] == label).unwrap()[2].clone()
        };
        // Disabling the deadlock machinery (without the longest-first
        // shaping that happens to break the cycles) stalls the run.
        let deadlock_row = rep
            .rows
            .iter()
            .find(|row| row[0].starts_with("no-bubble-rule, vc=32"))
            .expect("deadlock row present");
        assert!(deadlock_row[2].contains("stalled"), "{}", deadlock_row[2]);
        // Under full pressure, classical (unshaped) adaptivity suffers the
        // asymmetric-torus collapse; longest-first shaping recovers it.
        let base: f64 = get("pinned-baseline (full AA 8x4x4)").parse().unwrap();
        let shaped: f64 = get("pinned-shaped (full AA 8x4x4)").parse().unwrap();
        assert!(shaped > base + 10.0, "baseline {base} vs shaped {shaped}");
        // TPS with credits still completes at a sane fraction of peak.
        let credit: f64 = get("tps-credit-flow-control").parse().unwrap();
        assert!(credit > 30.0, "{credit}");
    }
}
