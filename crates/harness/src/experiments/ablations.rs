//! Ablations beyond the paper: which design choices carry the results.
//!
//! * **Bubble rule / escape VC off** → the adaptive network deadlocks
//!   (watchdog fires) — the deadlock-avoidance machinery is load-bearing.
//! * **VC FIFO depth** → shallow buffers trigger the asymmetric-torus
//!   congestion collapse early.
//! * **Longest-dimension-first shaping on** (an extension beyond the
//!   paper): software hint-bit-style restriction of adaptive packets to
//!   their longest remaining dimension largely removes the Section-3.2
//!   tree saturation — a router-independent mitigation.
//! * **TPS without reserved injection FIFOs** → phase-1 packets queue
//!   behind phase-2 packets, breaking the pipelining argument.
//! * **TPS credit-based flow control** → bounding intermediate memory
//!   costs little bandwidth (the paper's future-work claim).

use crate::experiment::ExperimentReport;
use crate::experiments::pct;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::{CreditConfig, Pacer, StrategyKind};
use bgl_sim::SimConfig;
use bgl_torus::Partition;
use std::sync::Arc;

/// The asymmetric testbed partition per scale.
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "8x4x4",
        Scale::Paper => "16x8x8",
    }
}

/// A shareable config tweak (the same closure backs the declared
/// [`RunPoint`] and the sequential fetch in [`run`]).
type Tweak = Arc<dyn Fn(&mut SimConfig) + Send + Sync>;

fn tweak(f: impl Fn(&mut SimConfig) + Send + Sync + 'static) -> Tweak {
    Arc::new(f)
}

/// One ablation case: variant label, row label, strategy, config tweak.
struct Case {
    variant: &'static str,
    row: &'static str,
    strategy: StrategyKind,
    tweak: Tweak,
}

impl Case {
    fn new(label: &'static str, strategy: StrategyKind, tweak: Tweak) -> Case {
        Case {
            variant: label,
            row: label,
            strategy,
            tweak,
        }
    }
}

/// The budgeted sweep on the scale-dependent asymmetric testbed.
fn budget_cases() -> Vec<Case> {
    let ar = StrategyKind::ar();
    let tps = StrategyKind::tps();
    let tps_credit = StrategyKind::tps().with_pacer(Pacer::CreditWindow {
        credit: CreditConfig::default(),
    });
    vec![
        Case::new("baseline", ar.clone(), tweak(|_| {})),
        Case::new(
            "no-bubble-rule (slack=0)",
            ar.clone(),
            tweak(|c| c.router.bubble_slack_chunks = 0),
        ),
        Case::new(
            "no-escape-vc",
            ar.clone(),
            tweak(|c| c.router.adaptive_bubble_escape = false),
        ),
        Case::new(
            "vc-fifo-8-chunks",
            ar.clone(),
            tweak(|c| c.router.vc_fifo_chunks = 8),
        ),
        Case::new(
            "vc-fifo-16-chunks",
            ar.clone(),
            tweak(|c| c.router.vc_fifo_chunks = 16),
        ),
        Case::new(
            "vc-fifo-256-chunks",
            ar.clone(),
            tweak(|c| c.router.vc_fifo_chunks = 256),
        ),
        Case::new(
            "longest-first-shaping",
            ar.clone(),
            tweak(|c| c.router.longest_first_bias = Some(true)),
        ),
        Case::new(
            "injection-priority",
            ar,
            tweak(|c| c.router.transit_priority = false),
        ),
        Case::new("tps-baseline", tps.clone(), tweak(|_| {})),
        Case::new(
            "tps-shared-inj-fifos",
            tps,
            tweak(|c| c.inj_class_masks = vec![u8::MAX; 6]),
        ),
        Case::new("tps-credit-flow-control", tps_credit, tweak(|_| {})),
        // The HPCC-Randomaccess-style three-phase scheme the paper argues
        // TPS beats ("gains from lower overheads as it has only one
        // forwarding phase"): two software forwarding hops instead of one.
        Case::new("xyz-three-phase", StrategyKind::xyz(), tweak(|_| {})),
    ]
}

/// The pinned high-pressure cases: full (unsampled) exchanges on 8x4x4
/// at any scale. The congestion collapse of classical adaptivity, its
/// longest-first mitigation, and the textbook deadlock (no bubble slack,
/// tight VC FIFOs) all need the full pressure to show at small scale.
fn pinned_cases() -> Vec<Case> {
    let ar = StrategyKind::ar();
    let mut cases: Vec<Case> = [
        ("pinned-baseline (full AA 8x4x4)", false),
        ("pinned-shaped (full AA 8x4x4)", true),
    ]
    .into_iter()
    .map(|(label, bias)| {
        Case::new(
            label,
            ar.clone(),
            tweak(move |c| {
                c.router.longest_first_bias = Some(bias);
                c.router.vc_fifo_chunks = 32; // BG/L's literal 1 KB VC FIFOs
            }),
        )
    })
    .collect();
    cases.push(Case {
        variant: "deadlock-demo",
        row: "no-bubble-rule, vc=32, full AA on 8x4x4",
        strategy: ar,
        tweak: tweak(|c| {
            c.router.bubble_slack_chunks = 0;
            c.router.vc_fifo_chunks = 32;
            c.watchdog_cycles = 100_000;
        }),
    });
    cases
}

/// The pinned testbed: partition, message size, coverage.
const PINNED: (&str, u64, f64) = ("8x4x4", 1872, 1.0);

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let part: Partition = shape(runner.scale).parse().unwrap();
    let m = runner.large_m_for(&part);
    let cov = runner.budget_coverage(&part, m);
    let pinned_part: Partition = PINNED.0.parse().unwrap();
    let budget = budget_cases().into_iter().map(move |case| {
        let t = case.tweak;
        RunPoint::new(part, case.strategy, m, cov).variant(case.variant, move |c| t(c))
    });
    let pinned = pinned_cases().into_iter().map(move |case| {
        let t = case.tweak;
        RunPoint::new(pinned_part, case.strategy, PINNED.1, PINNED.2)
            .variant(case.variant, move |c| t(c))
    });
    budget.chain(pinned).collect()
}

/// Run the ablation suite.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "ablations",
        "Design-choice ablations on an asymmetric torus",
        &["variant", "strategy", "% of peak / outcome"],
    );
    let shape = shape(runner.scale);
    let m = runner.large_m_for(&shape.parse().unwrap());
    let cov = runner.budget_coverage(&shape.parse().unwrap(), m);
    let mut case = |case: &Case, shape: &str, m: u64, cov: f64| {
        let t = &case.tweak;
        let cell = match runner.aa_variant(shape, &case.strategy, m, cov, case.variant, |c| t(c)) {
            Ok(r) => pct(r.percent_of_peak),
            Err(e) => format!("{e}"),
        };
        rep.push_row(vec![
            case.row.to_string(),
            case.strategy.name().to_string(),
            cell,
        ]);
    };
    for c in &budget_cases() {
        case(c, shape, m, cov);
    }
    for c in &pinned_cases() {
        case(c, PINNED.0, PINNED.1, PINNED.2);
    }
    rep.note("a Stalled outcome is the expected deadlock when the bubble machinery is disabled");
    rep.note(
        "tps-shared-inj-fifos removes the per-phase reservation that enables phase pipelining",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_ablations_show_expected_shape() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        let get = |label: &str| -> String {
            rep.rows.iter().find(|row| row[0] == label).unwrap()[2].clone()
        };
        // Disabling the deadlock machinery (without the longest-first
        // shaping that happens to break the cycles) stalls the run.
        let deadlock_row = rep
            .rows
            .iter()
            .find(|row| row[0].starts_with("no-bubble-rule, vc=32"))
            .expect("deadlock row present");
        assert!(deadlock_row[2].contains("stalled"), "{}", deadlock_row[2]);
        // Under full pressure, classical (unshaped) adaptivity suffers the
        // asymmetric-torus collapse; longest-first shaping recovers it.
        let base: f64 = get("pinned-baseline (full AA 8x4x4)").parse().unwrap();
        let shaped: f64 = get("pinned-shaped (full AA 8x4x4)").parse().unwrap();
        assert!(shaped > base + 10.0, "baseline {base} vs shaped {shaped}");
        // TPS with credits still completes at a sane fraction of peak.
        let credit: f64 = get("tps-credit-flow-control").parse().unwrap();
        assert!(credit > 30.0, "{credit}");
    }

    #[test]
    fn declared_points_cover_every_row() {
        let r = Runner::new(Scale::Quick);
        // One point per case, all distinct keys.
        let pts = points(&r);
        assert_eq!(pts.len(), budget_cases().len() + pinned_cases().len());
        let keys: std::collections::HashSet<_> = pts.iter().map(|p| p.key.clone()).collect();
        assert_eq!(keys.len(), pts.len());
    }
}
