//! Figure 3: per-node throughput across partitions — the Equation-2 peak
//! bisection bandwidth per node vs what AR achieves with one packet and
//! with large messages.

use crate::experiment::ExperimentReport;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;
use bgl_model::peak;
use bgl_torus::Partition;

/// Partitions plotted per scale (the paper plots its Table 1/2 set).
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x1x1", "8x8", "8x8x8", "8x4x4"],
        Scale::Paper => vec![
            "8x1x1", "16x1x1", "8x8", "16x16", "8x8x8", "8x8x16", "8x16x16", "8x32x16", "16x16x16",
        ],
    }
}

/// One 240-byte payload packet per destination (the paper's "1 packet"
/// series; 240+48 B rides two packets, so we use 192 B = exactly one full
/// packet with the header).
pub const ONE_PACKET_M: u64 = 192;

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let ar = StrategyKind::ar();
    shapes(runner.scale)
        .iter()
        .flat_map(|shape| {
            let part: Partition = shape.parse().unwrap();
            [
                runner.point(shape, &ar, ONE_PACKET_M),
                runner.point(shape, &ar, runner.large_m_for(&part)),
            ]
        })
        .collect()
}

/// Run Figure 3.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "fig3",
        "Per-node throughput: peak vs AR one-packet vs AR large (paper Figure 3)",
        &[
            "Partition",
            "Peak MB/s/node",
            "AR 1-pkt MB/s/node",
            "AR large MB/s/node",
            "AR large %",
        ],
    );
    for shape in shapes(runner.scale) {
        let part: Partition = shape.parse().unwrap();
        let m_large = runner.large_m_for(&part);
        let peak_bw = peak::peak_per_node_bandwidth(&part, &runner.params) / 1e6;
        let one = runner.aa(shape, &StrategyKind::ar(), ONE_PACKET_M);
        let large = runner.aa(shape, &StrategyKind::ar(), m_large);
        let fmt_bw = |r: &Result<bgl_core::AaReport, bgl_sim::SimError>| match r {
            Ok(r) => format!("{:.1}", r.per_node_bandwidth / 1e6),
            Err(e) => format!("ERROR: {e}"),
        };
        let large_pct = match &large {
            Ok(r) => format!("{:.1}", r.percent_of_peak),
            Err(_) => "-".into(),
        };
        rep.push_row(vec![
            shape.to_string(),
            format!("{peak_bw:.1}"),
            fmt_bw(&one),
            fmt_bw(&large),
            large_pct,
        ]);
    }
    rep.note("peak per-node bandwidth falls as the longest dimension grows (≈ 8/(M·β))");
    rep.note("a one-packet AA already runs close to the large-message bandwidth");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_fig3_bandwidth_sane() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        for row in &rep.rows {
            let peak_bw: f64 = row[1].parse().unwrap();
            let large: f64 = row[3].parse().unwrap();
            assert!(large <= peak_bw * 1.05, "{row:?}");
            assert!(large > peak_bw * 0.3, "{row:?}");
        }
    }

    #[test]
    fn peak_bw_drops_with_longest_dimension() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        let bw_of = |shape: &str| -> f64 {
            rep.rows.iter().find(|row| row[0] == shape).unwrap()[1]
                .parse()
                .unwrap()
        };
        // 8-line and 8x8x8 share M=8: peak/node differs only by the
        // (P-1)/P self-traffic factor, so the cube is slightly higher.
        let (line, cube) = (bw_of("8x1x1"), bw_of("8x8x8"));
        assert!(cube >= line && cube / line < 1.2, "line {line} cube {cube}");
    }
}
