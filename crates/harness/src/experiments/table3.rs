//! Table 3: Two Phase Schedule percent of peak and chosen phase-1
//! dimension on partitions from 512 to 20,480 nodes.

use crate::experiment::ExperimentReport;
use crate::experiments::{cov, pct};
use crate::paper::TABLE3_TPS;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::{choose_linear_dim, StrategyKind};
use bgl_torus::Partition;

/// Partitions evaluated at each scale.
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x4x4", "4x8x4", "8x8x8", "8x8x4M"],
        Scale::Paper => TABLE3_TPS.iter().map(|(s, _, _)| *s).collect(),
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let strategy = StrategyKind::tps();
    shapes(runner.scale)
        .iter()
        .map(|shape| {
            let m = runner.large_m_for(&shape.parse().unwrap());
            runner.point(shape, &strategy, m)
        })
        .collect()
}

/// Run Table 3.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "table3",
        "Two Phase Schedule % of peak and phase-1 dimension (paper Table 3)",
        &[
            "Nodes",
            "Partition",
            "TPS % (sim)",
            "TPS % (paper)",
            "Phase1 (sim)",
            "Phase1 (paper)",
            "coverage",
        ],
    );
    let strategy = StrategyKind::tps();
    for shape in shapes(runner.scale) {
        let part: Partition = shape.parse().unwrap();
        let m = runner.large_m_for(&part);
        let (paper_pct, paper_dim) = TABLE3_TPS
            .iter()
            .find(|(s, _, _)| *s == shape)
            .map(|(_, v, d)| (pct(*v), d.to_string()))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let linear = choose_linear_dim(&part).to_string();
        match runner.aa(shape, &strategy, m) {
            Ok(r) => rep.push_row(vec![
                part.num_nodes().to_string(),
                shape.to_string(),
                pct(r.percent_of_peak),
                paper_pct,
                linear,
                paper_dim,
                cov(r.workload.coverage),
            ]),
            Err(e) => rep.push_row(vec![
                part.num_nodes().to_string(),
                shape.to_string(),
                format!("ERROR: {e}"),
                paper_pct,
                linear,
                paper_dim,
                "-".into(),
            ]),
        }
    }
    rep.note("phase-1 dimension chosen automatically: symmetric-plane preference, else the longest dimension");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_runs() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows.len(), 4);
        for row in &rep.rows {
            let v: f64 = row[2].parse().expect("numeric percent");
            assert!(v > 30.0 && v <= 101.0, "{}: {v}", row[1]);
        }
        // 8x4x4 must pick X (symmetric-plane rule).
        let first = &rep.rows[0];
        assert_eq!(first[4], "X");
    }
}
