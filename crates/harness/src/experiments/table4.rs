//! Table 4: one-byte all-to-all latency, TPS vs AR.
//!
//! On small partitions the extra store-and-forward hop makes TPS slower;
//! past ~4096 nodes network contention on even 64-byte packets makes the
//! indirect schedule *faster* — the paper's crossover.

use crate::experiment::ExperimentReport;
use crate::paper::TABLE4_LATENCY_MS;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// Partitions evaluated at each scale.
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x8x8", "8x8x16"],
        Scale::Paper => TABLE4_LATENCY_MS.iter().map(|(s, _, _)| *s).collect(),
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let tps = StrategyKind::tps();
    let ar = StrategyKind::ar();
    shapes(runner.scale)
        .iter()
        .flat_map(|shape| [runner.point(shape, &tps, 1), runner.point(shape, &ar, 1)])
        .collect()
}

/// Run Table 4.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "table4",
        "1-byte all-to-all latency in ms, TPS vs AR (paper Table 4)",
        &[
            "Partition",
            "TPS ms (sim)",
            "AR ms (sim)",
            "TPS ms (paper)",
            "AR ms (paper)",
            "TPS/AR (sim)",
        ],
    );
    let tps = StrategyKind::tps();
    let ar = StrategyKind::ar();
    for shape in shapes(runner.scale) {
        let (p_tps, p_ar) = TABLE4_LATENCY_MS
            .iter()
            .find(|(s, _, _)| *s == shape)
            .map(|(_, t, a)| (format!("{t}"), format!("{a}")))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let run_ms = |strategy: &StrategyKind| -> Result<f64, String> {
            let r = runner.aa(shape, strategy, 1).map_err(|e| e.to_string())?;
            // When the run was coverage-sampled, extrapolate the full-AA
            // latency linearly in the traffic volume (the regime is
            // bandwidth-dominated even at 64-byte packets — Section 4.1).
            Ok(r.time_secs * 1e3 / r.workload.coverage)
        };
        match (run_ms(&tps), run_ms(&ar)) {
            (Ok(t), Ok(a)) => rep.push_row(vec![
                shape.to_string(),
                format!("{t:.2}"),
                format!("{a:.2}"),
                p_tps,
                p_ar,
                format!("{:.2}", t / a),
            ]),
            (t, a) => rep.push_row(vec![
                shape.to_string(),
                t.map(|v| format!("{v:.2}")).unwrap_or_else(|e| e),
                a.map(|v| format!("{v:.2}")).unwrap_or_else(|e| e),
                p_tps,
                p_ar,
                "-".into(),
            ]),
        }
    }
    rep.note(
        "1-byte payload rides the 64-byte minimum packet; sampled runs extrapolated by 1/coverage",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table4_tps_slower_on_midplane() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        // On 8x8x8, TPS pays the forwarding hop: TPS/AR > 1.
        let ratio: f64 = rep.rows[0][5].parse().expect("ratio");
        assert!(ratio > 1.0, "TPS/AR = {ratio}");
    }
}
