//! Figure 4: the direct strategies compared — AR vs DR vs throttled AR —
//! across partition shapes, for large messages.

use crate::experiment::ExperimentReport;
use crate::experiments::pct;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// The three direct strategies this figure compares.
fn strategies() -> [StrategyKind; 3] {
    [
        StrategyKind::ar(),
        StrategyKind::dr(),
        StrategyKind::throttled(1.0),
    ]
}

/// Partitions compared per scale.
pub fn shapes(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["8x4x4", "4x4x8", "4x4x4"],
        Scale::Paper => vec!["8x8x8", "16x8x8", "8x16x8", "8x8x16", "8x16x16", "8x32x16"],
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    shapes(runner.scale)
        .iter()
        .flat_map(|shape| {
            let m = runner.large_m_for(&shape.parse().unwrap());
            strategies().map(|s| runner.point(shape, &s, m))
        })
        .collect()
}

/// Run Figure 4.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "fig4",
        "Direct strategies, % of peak, large messages (paper Figure 4)",
        &["Partition", "AR %", "DR %", "AR-throttled %"],
    );
    for shape in shapes(runner.scale) {
        let m = runner.large_m_for(&shape.parse().unwrap());
        let cell = |s: &StrategyKind| match runner.aa(shape, s, m) {
            Ok(r) => pct(r.percent_of_peak),
            Err(e) => format!("ERR:{e}"),
        };
        rep.push_row(vec![
            shape.to_string(),
            cell(&StrategyKind::ar()),
            cell(&StrategyKind::dr()),
            cell(&StrategyKind::throttled(1.0)),
        ]);
    }
    rep.note("DR is best when X is the longest dimension (packets start on the bottleneck links)");
    rep.note(
        "throttling at the bisection rate changes little — congestion happens inside the network",
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_fig4_dr_orientation_effect() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        let dr = |shape: &str| -> f64 {
            rep.rows.iter().find(|row| row[0] == shape).unwrap()[2]
                .parse()
                .unwrap()
        };
        // DR on 8x4x4 (X longest) beats DR on 4x4x8 (Z longest): the
        // paper's dimension-order asymmetry.
        assert!(
            dr("8x4x4") > dr("4x4x8") + 5.0,
            "DR X-first {} vs Z-longest {}",
            dr("8x4x4"),
            dr("4x4x8")
        );
    }
}
