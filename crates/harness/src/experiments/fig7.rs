//! Figure 7: short-message AA on the asymmetric 8×32×16 (4096-node)
//! torus — AR vs TPS vs VMesh. VMesh wins small, TPS takes over at
//! ~64 bytes, AR trails throughout because of asymmetric contention.

use crate::experiment::ExperimentReport;
use crate::runner::{RunPoint, Runner, Scale};

use bgl_core::{Pacer, StrategyKind};
use bgl_torus::Partition;

/// The partition (shrunk for quick scale but still asymmetric).
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "4x8x4",
        Scale::Paper => "8x32x16",
    }
}

/// Message sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![8, 64],
        Scale::Paper => vec![8, 16, 32, 64, 128],
    }
}

/// The strategies compared, in column order. At paper scale VMesh
/// carries the stop-and-wait credit window: its full-coverage phase-1
/// burst on the 4096-node 8×32×16 wedges the network unpaced (the
/// conformance suite's old known limitation — see
/// `conformance::families::vmesh_paced`), and a one-packet window per
/// row intermediate keeps it live.
fn strategies(scale: Scale) -> [(&'static str, StrategyKind); 3] {
    let vmesh = match scale {
        Scale::Quick => StrategyKind::vmesh(),
        Scale::Paper => StrategyKind::vmesh().with_pacer(Pacer::credit(1, 1)),
    };
    [
        ("AR", StrategyKind::ar()),
        ("TPS", StrategyKind::tps()),
        ("VMesh", vmesh),
    ]
}

/// A fig7 cell's run point. VMesh is pinned at full coverage (a combined
/// message carries a whole column's data, so destination sampling cannot
/// shrink its traffic and the budgeted coverage would misreport); the
/// direct and forwarding schemes run at the runner's budgeted coverage.
fn point_for(runner: &Runner, strategy: &StrategyKind, m: u64) -> RunPoint {
    let shape = shape(runner.scale);
    if matches!(strategy, StrategyKind::VirtualMesh { .. }) {
        let part: Partition = shape.parse().expect("valid shape");
        RunPoint::new(part, strategy.clone(), m, 1.0)
    } else {
        runner.point(shape, strategy, m)
    }
}

/// Whether a (strategy, size) cell is simulated at this scale. The
/// congestion-collapsed AR runs are the slowest to simulate and the
/// paper only needs AR's (bad) level: sample it at two sizes at paper
/// scale.
fn simulated(name: &str, m: u64, scale: Scale) -> bool {
    !(name == "AR" && scale == Scale::Paper && !(m == 8 || m == 64))
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    sizes(runner.scale)
        .iter()
        .flat_map(|&m| {
            strategies(runner.scale)
                .into_iter()
                .filter(move |(name, _)| simulated(name, m, runner.scale))
                .map(move |(_, s)| point_for(runner, &s, m))
        })
        .collect()
}

/// Run Figure 7.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "fig7",
        "Short-message AA on asymmetric torus: AR vs TPS vs VMesh (paper Figure 7)",
        &["m (B)", "AR ms", "TPS ms", "VMesh ms", "best"],
    );
    for m in sizes(runner.scale) {
        let mut cells = vec![m.to_string()];
        let mut best = ("-", f64::INFINITY);
        for (name, s) in &strategies(runner.scale) {
            if !simulated(name, m, runner.scale) {
                cells.push("-".into());
                continue;
            }
            match runner.report(&point_for(runner, s, m)) {
                Ok(r) => {
                    let t = r.time_secs * 1e3 / r.workload.coverage;
                    if t < best.1 {
                        best = (name, t);
                    }
                    cells.push(format!("{t:.4}"));
                }
                Err(e) => cells.push(format!("ERR:{e}")),
            }
        }
        cells.push(best.0.to_string());
        rep.push_row(cells);
    }
    rep.note("paper: at 8 B VMesh ≈ 2× TPS and ≈ 3× AR; TPS/VMesh crossover at 64 B");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_fig7_vmesh_best_at_8_bytes() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows[0][4], "VMesh", "{:?}", rep.rows[0]);
    }
}
