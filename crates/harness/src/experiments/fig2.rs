//! Figure 2: AR measured vs model vs peak on a 16×16×16 (4096-node)
//! partition.

use crate::experiment::ExperimentReport;
use crate::experiments::fig1::ar_vs_model;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// The partition this figure sweeps (shrunk for quick scale).
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "8x8x4",
        Scale::Paper => "16x16x16",
    }
}

/// Message sizes per scale.
pub fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![240, 912],
        Scale::Paper => vec![64, 240, 912, 1872, 3792],
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    sizes(runner.scale)
        .iter()
        .map(|&m| runner.point(shape(runner.scale), &StrategyKind::ar(), m))
        .collect()
}

/// Run Figure 2.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ar_vs_model("fig2", shape(runner.scale), &sizes(runner.scale), runner);
    if runner.scale == Scale::Quick {
        rep.note("quick scale substitutes 8x8x4 for the paper's 16x16x16");
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_fig2_runs() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows.len(), 2);
        assert_eq!(rep.id, "fig2");
    }
}
