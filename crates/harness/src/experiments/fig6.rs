//! Figure 6: measured VMesh vs AR on 512 nodes across short message
//! sizes — combining wins below the 32–64-byte crossover.

use crate::experiment::ExperimentReport;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;

/// The partition (shrunk for quick scale).
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "4x4x4",
        Scale::Paper => "8x8x8",
    }
}

/// Message sizes swept.
pub fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![8, 32, 256],
        Scale::Paper => vec![1, 8, 16, 32, 64, 128, 256, 512, 1024],
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let shape = shape(runner.scale);
    let vmesh = StrategyKind::vmesh();
    let ar = StrategyKind::ar();
    sizes(runner.scale)
        .iter()
        .flat_map(|&m| [runner.point(shape, &vmesh, m), runner.point(shape, &ar, m)])
        .collect()
}

/// Run Figure 6.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "fig6",
        "Short-message AA: VMesh vs AR measured (paper Figure 6)",
        &["m (B)", "VMesh ms", "AR ms", "AR/VMesh", "winner"],
    );
    let shape = shape(runner.scale);
    let vmesh = StrategyKind::vmesh();
    let ar = StrategyKind::ar();
    for m in sizes(runner.scale) {
        let v = runner.aa(shape, &vmesh, m);
        let a = runner.aa(shape, &ar, m);
        match (v, a) {
            (Ok(v), Ok(a)) => {
                let tv = v.time_secs * 1e3 / v.workload.coverage;
                let ta = a.time_secs * 1e3 / a.workload.coverage;
                rep.push_row(vec![
                    m.to_string(),
                    format!("{tv:.4}"),
                    format!("{ta:.4}"),
                    format!("{:.2}", ta / tv),
                    if tv < ta { "vmesh" } else { "direct" }.to_string(),
                ]);
            }
            (v, a) => rep.push_row(vec![
                m.to_string(),
                v.map(|r| format!("{:.4}", r.time_secs * 1e3))
                    .unwrap_or_else(|e| e.to_string()),
                a.map(|r| format!("{:.4}", r.time_secs * 1e3))
                    .unwrap_or_else(|e| e.to_string()),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    rep.note("paper: VMesh ≈ 2× AR for very short messages; crossover between 32 and 64 B");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_fig6_vmesh_wins_small_loses_large() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        assert_eq!(rep.rows[0][4], "vmesh", "8 B: {:?}", rep.rows[0]);
        assert_eq!(
            rep.rows.last().unwrap()[4],
            "direct",
            "256 B: {:?}",
            rep.rows.last()
        );
    }
}
