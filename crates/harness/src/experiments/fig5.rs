//! Figure 5: the Equation-4 virtual-mesh model prediction on 512 nodes
//! (pure model — no simulation).

use crate::experiment::ExperimentReport;
use crate::runner::Runner;
use bgl_model::{vmesh as vmesh_model, MachineParams};
use bgl_torus::{Partition, VirtualMesh, VmeshLayout};

/// Message sizes plotted.
pub const SIZES: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// This figure is pure model evaluation: no simulation points.
pub fn points(_runner: &Runner) -> Vec<crate::runner::RunPoint> {
    Vec::new()
}

/// Run Figure 5.
pub fn run(_runner: &Runner) -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        "fig5",
        "VMesh Equation-4 prediction, 32x16 virtual mesh on 8x8x8 (paper Figure 5)",
        &[
            "m (B)",
            "T_vmesh model (ms)",
            "T_direct model (ms)",
            "winner",
        ],
    );
    let params = MachineParams::bgl();
    let part: Partition = "8x8x8".parse().unwrap();
    let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
    assert_eq!((vm.pvx(), vm.pvy()), (32, 16), "paper's 32x16 mesh");
    for &m in SIZES {
        let t_v = vmesh_model::aa_vmesh_time_secs(&vm, m, &params) * 1e3;
        let t_d = bgl_model::direct::aa_direct_time_secs(&part, m, &params) * 1e3;
        rep.push_row(vec![
            m.to_string(),
            format!("{t_v:.4}"),
            format!("{t_d:.4}"),
            if t_v < t_d { "vmesh" } else { "direct" }.to_string(),
        ]);
    }
    let cross = vmesh_model::crossover_exact(&vm, &params).unwrap_or(f64::NAN);
    rep.note(format!(
        "model crossover at m = {cross:.0} B (paper: β-terms-only estimate 32 B, measured 32–64 B)"
    ));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, Scale};

    #[test]
    fn winner_flips_once_from_vmesh_to_direct() {
        let rep = run(&Runner::new(Scale::Quick));
        let winners: Vec<&str> = rep.rows.iter().map(|r| r[3].as_str()).collect();
        let first_direct = winners
            .iter()
            .position(|&w| w == "direct")
            .expect("direct wins large");
        assert!(first_direct > 0, "vmesh must win the smallest sizes");
        assert!(
            winners[first_direct..].iter().all(|&w| w == "direct"),
            "single crossover"
        );
    }
}
