//! Credit-window ablation: how hard can intermediate-memory flow control
//! squeeze before it costs bandwidth?
//!
//! Sweeps the shared credit-window pacer ([`Pacer::CreditWindow`]) from
//! the tightest possible window (1 packet in flight per intermediate) up
//! through the default and out to unpaced, for every strategy that
//! forwards through intermediates (TPS, VMesh, XYZ). The paper's
//! future-work claim — bounding intermediate memory costs little
//! bandwidth — shows up as the efficiency column flattening once the
//! window covers the forwarding pipeline's natural depth; the
//! credit-blocked counter shows the pacer actually engaging at the tight
//! end.
//!
//! A rate-window row (`Pacer::RateWindow` at the bisection-derived peak)
//! rides along per strategy as the throttling reference point.

use crate::experiment::ExperimentReport;
use crate::experiments::pct;
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::{Pacer, StrategyKind};
use bgl_torus::Partition;

/// The asymmetric testbed partition per scale (same as `ablations`).
pub fn shape(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "8x4x4",
        Scale::Paper => "16x8x8",
    }
}

/// The swept credit windows as (window, quantum); `None` = unpaced.
const WINDOWS: &[Option<(u32, u32)>] = &[
    Some((1, 1)),
    Some((2, 1)),
    Some((4, 2)),
    Some((8, 4)),
    Some((16, 8)),
    Some((40, 10)), // the default CreditConfig
    None,
];

/// Label a swept pacer for the row/variant column.
fn label(pacer: &Option<(u32, u32)>) -> String {
    match pacer {
        Some((w, e)) => format!("credit {w},{e}"),
        None => "unpaced".to_string(),
    }
}

/// The strategies with intermediate-memory pressure to bound.
fn strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::tps(),
        StrategyKind::vmesh(),
        StrategyKind::xyz(),
    ]
}

fn paced(base: &StrategyKind, w: &Option<(u32, u32)>) -> StrategyKind {
    match w {
        Some((win, every)) => base.clone().with_pacer(Pacer::credit(*win, *every)),
        None => base.clone(),
    }
}

/// Each strategy's sweep point: VMesh always runs the full exchange (a
/// combined message carries a whole column, so sampling would misreport
/// coverage); TPS and XYZ run at the budgeted coverage.
fn point_for(runner: &Runner, strategy: &StrategyKind, m: u64) -> RunPoint {
    let part: Partition = shape(runner.scale).parse().unwrap();
    if matches!(strategy, StrategyKind::VirtualMesh { .. }) {
        RunPoint::new(part, strategy.clone(), m, 1.0)
    } else {
        runner.point(shape(runner.scale), strategy, m)
    }
}

/// Message size per strategy: short messages for the combining VMesh
/// (its regime, and what keeps the full exchange tractable), the
/// budgeted large size for the forwarding strategies.
fn m_for(runner: &Runner, strategy: &StrategyKind) -> u64 {
    if matches!(strategy, StrategyKind::VirtualMesh { .. }) {
        8
    } else {
        runner.large_m_for(&shape(runner.scale).parse::<Partition>().unwrap())
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    let mut pts = Vec::new();
    for base in strategies() {
        let m = m_for(runner, &base);
        for w in WINDOWS {
            pts.push(point_for(runner, &paced(&base, w), m));
        }
        pts.push(point_for(
            runner,
            &base.clone().with_pacer(Pacer::rate(1.0)),
            m,
        ));
    }
    pts
}

/// Run the credit-window sweep.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    let mut rep = ExperimentReport::new(
        "flow",
        "Credit-window flow-control ablation",
        &[
            "pacer",
            "strategy",
            "% of peak",
            "credit-blocked",
            "pacing-blocked cycles",
        ],
    );
    for base in strategies() {
        let m = m_for(runner, &base);
        let mut row = |strategy: &StrategyKind, label: String| {
            let cells = match runner.report(&point_for(runner, strategy, m)) {
                Ok(r) => vec![
                    pct(r.percent_of_peak),
                    r.stats.credit_blocked_events.to_string(),
                    r.stats.pacing_blocked_cycles.to_string(),
                ],
                Err(e) => vec![format!("{e}"), String::new(), String::new()],
            };
            let mut full = vec![label, base.name().to_string()];
            full.extend(cells);
            rep.push_row(full);
        };
        for w in WINDOWS {
            row(&paced(&base, w), label(w));
        }
        row(
            &base.clone().with_pacer(Pacer::rate(1.0)),
            "rate 1.0".to_string(),
        );
    }
    rep.note("window 1,1 serializes every intermediate hand-off: the floor of the sweep");
    rep.note("efficiency flattening by the default window is the paper's cheap-flow-control claim");
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn quick_sweep_engages_and_flattens() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        // 3 strategies × (7 windows + 1 rate row).
        assert_eq!(rep.rows.len(), 3 * (WINDOWS.len() + 1));
        let cell = |pacer: &str, strat: &str, col: usize| -> String {
            rep.rows
                .iter()
                .find(|row| row[0] == pacer && row[1] == strat)
                .unwrap_or_else(|| panic!("row {pacer}/{strat}"))[col]
                .clone()
        };
        // The tightest window visibly engages the credit machinery…
        let blocked: u64 = cell("credit 1,1", "TPS", 3).parse().unwrap();
        assert!(blocked > 0, "tight window never blocked");
        // …and every paced TPS point still completes.
        for w in WINDOWS {
            let pct_cell = cell(&label(w), "TPS", 2);
            assert!(
                pct_cell.parse::<f64>().is_ok(),
                "TPS {} failed: {pct_cell}",
                label(w)
            );
        }
        // Unpaced rows report no credit blocking at all.
        assert_eq!(cell("unpaced", "TPS", 3), "0");
        // The rate row throttles via the pacing counter instead.
        let paced_cycles: u64 = cell("rate 1.0", "TPS", 4).parse().unwrap();
        assert!(paced_cycles > 0, "rate window never paced");
    }

    #[test]
    fn declared_points_cover_every_row() {
        let r = Runner::new(Scale::Quick);
        let pts = points(&r);
        assert_eq!(pts.len(), 3 * (WINDOWS.len() + 1));
        let keys: std::collections::HashSet<_> = pts.iter().map(|p| p.key.clone()).collect();
        assert_eq!(keys.len(), pts.len());
    }
}
