//! Figure 1: AR measured time vs the Equation-3 model and the Equation-2
//! peak on the 8×8×8 midplane, across message sizes.

use crate::experiment::ExperimentReport;
use crate::experiments::{cov, pct};
use crate::runner::{RunPoint, Runner, Scale};
use bgl_core::StrategyKind;
use bgl_model::{direct, peak, MachineParams};
use bgl_torus::Partition;

/// The partition this figure sweeps.
pub const SHAPE: &str = "8x8x8";

/// Message sizes per scale.
pub fn sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![64, 240, 912],
        Scale::Paper => vec![16, 64, 192, 432, 912, 1872, 3792, 7632],
    }
}

/// Declare every simulation point this experiment needs.
pub fn points(runner: &Runner) -> Vec<RunPoint> {
    sizes(runner.scale)
        .iter()
        .map(|&m| runner.point(SHAPE, &StrategyKind::ar(), m))
        .collect()
}

/// Shared implementation for Figures 1 and 2.
pub(crate) fn ar_vs_model(
    id: &str,
    shape: &str,
    sizes: &[u64],
    runner: &Runner,
) -> ExperimentReport {
    let mut rep = ExperimentReport::new(
        id,
        &format!("AR measured vs Equation-3 model vs Equation-2 peak on {shape}"),
        &[
            "m (B)",
            "AA time sim (ms)",
            "model (ms)",
            "peak (ms)",
            "% of peak",
            "coverage",
        ],
    );
    let part: Partition = shape.parse().unwrap();
    let params = MachineParams::bgl();
    for &m in sizes {
        let t_model = direct::aa_direct_time_secs(&part, m, &params) * 1e3;
        let t_peak = peak::aa_peak_time_secs(&part, m, &params) * 1e3;
        match runner.aa(shape, &StrategyKind::ar(), m) {
            Ok(r) => {
                let t_meas = r.time_secs * 1e3 / r.workload.coverage;
                rep.push_row(vec![
                    m.to_string(),
                    format!("{t_meas:.3}"),
                    format!("{t_model:.3}"),
                    format!("{t_peak:.3}"),
                    pct(r.percent_of_peak),
                    cov(r.workload.coverage),
                ]);
            }
            Err(e) => rep.push_row(vec![
                m.to_string(),
                format!("ERROR: {e}"),
                format!("{t_model:.3}"),
                format!("{t_peak:.3}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    rep.note("measured times extrapolated by 1/coverage when sampled; model is Equation 3 (P·α + P·C·(m+h)·β)");
    rep
}

/// Run Figure 1.
pub fn run(runner: &Runner) -> ExperimentReport {
    runner.run_points(&points(runner));
    ar_vs_model("fig1", SHAPE, &sizes(runner.scale), runner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig1_measured_tracks_model() {
        let r = Runner::new(Scale::Quick);
        let rep = run(&r);
        for row in &rep.rows {
            let meas: f64 = row[1].parse().unwrap();
            let model: f64 = row[2].parse().unwrap();
            let peak: f64 = row[3].parse().unwrap();
            assert!(meas >= peak * 0.95, "measured below peak: {row:?}");
            // Model and measurement agree within a factor ~2 everywhere.
            assert!(meas / model < 2.0 && model / meas < 2.0, "{row:?}");
        }
    }
}
