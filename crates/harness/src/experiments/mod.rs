//! One module per paper table/figure, each producing an
//! [`ExperimentReport`](crate::experiment::ExperimentReport).

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod flow_ablation;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::experiment::ExperimentReport;
use crate::runner::{RunPoint, Runner};

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig1",
    "fig2",
    "table1",
    "table2",
    "fig3",
    "fig4",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "flow",
];

/// The simulation points one experiment needs, by id. Feeding these to
/// [`Runner::run_points`](crate::runner::Runner::run_points) ahead of
/// `run_by_id` lets a whole suite's point set execute on the thread
/// pool at once instead of experiment by experiment.
pub fn points_by_id(runner: &Runner, id: &str) -> Option<Vec<RunPoint>> {
    Some(match id {
        "table1" => table1::points(runner),
        "table2" => table2::points(runner),
        "table3" => table3::points(runner),
        "table4" => table4::points(runner),
        "fig1" => fig1::points(runner),
        "fig2" => fig2::points(runner),
        "fig3" => fig3::points(runner),
        "fig4" => fig4::points(runner),
        "fig5" => fig5::points(runner),
        "fig6" => fig6::points(runner),
        "fig7" => fig7::points(runner),
        "ablations" => ablations::points(runner),
        "flow" => flow_ablation::points(runner),
        _ => return None,
    })
}

/// Run one experiment by id.
pub fn run_by_id(runner: &Runner, id: &str) -> Option<ExperimentReport> {
    Some(match id {
        "table1" => table1::run(runner),
        "table2" => table2::run(runner),
        "table3" => table3::run(runner),
        "table4" => table4::run(runner),
        "fig1" => fig1::run(runner),
        "fig2" => fig2::run(runner),
        "fig3" => fig3::run(runner),
        "fig4" => fig4::run(runner),
        "fig5" => fig5::run(runner),
        "fig6" => fig6::run(runner),
        "fig7" => fig7::run(runner),
        "ablations" => ablations::run(runner),
        "flow" => flow_ablation::run(runner),
        _ => return None,
    })
}

/// Format a percent cell.
pub(crate) fn pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a coverage cell.
pub(crate) fn cov(x: f64) -> String {
    if x >= 1.0 {
        "full".to_string()
    } else {
        format!("{:.3}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn unknown_id_is_none() {
        let r = Runner::new(Scale::Quick);
        assert!(run_by_id(&r, "nope").is_none());
    }

    #[test]
    fn fig5_is_model_only_and_fast() {
        let r = Runner::new(Scale::Quick);
        let rep = run_by_id(&r, "fig5").unwrap();
        assert_eq!(rep.id, "fig5");
        assert!(!rep.rows.is_empty());
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(pct(99.04), "99.0");
        assert_eq!(cov(1.0), "full");
        assert_eq!(cov(0.25), "0.250");
    }
}
