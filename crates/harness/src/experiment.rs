//! Experiment report structure and rendering (aligned text tables, CSV,
//! JSON).

use serde::{Deserialize, Serialize};

/// A reproduced table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short id ("table1", "fig6", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rendered rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling substitutions, observations).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Create an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> ExperimentReport {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned monospace table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Render as CSV with RFC 4180 quoting (shared writer in
    /// [`bgl_sim::csv`]): cells containing commas, quotes, or line breaks
    /// are wrapped in double quotes with inner quotes doubled, so no cell
    /// content is ever altered. Rows end in a bare `\n` (the simulator's
    /// trace export keeps RFC 4180's CRLF; both parse back with
    /// [`bgl_sim::csv::parse`]).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        bgl_sim::csv::push_row(&mut out, self.columns.iter().map(String::as_str), "\n");
        for row in &self.rows {
            bgl_sim::csv::push_row(&mut out, row.iter().map(String::as_str), "\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("t", "sample", &["a", "bee"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["333".into(), "4".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn text_render_aligns() {
        let t = sample().to_text();
        assert!(t.contains("a    bee"));
        assert!(t.contains("333  4"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn csv_render() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines, vec!["a,bee", "1,2", "333,4"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut r = ExperimentReport::new("t", "sample", &["a"]);
        r.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_commas_per_rfc4180() {
        let mut r = ExperimentReport::new("t", "s", &["a", "b"]);
        r.push_row(vec!["x,y".into(), "plain".into()]);
        let lines: Vec<String> = r.to_csv().lines().map(String::from).collect();
        assert_eq!(lines[1], "\"x,y\",plain");
    }

    #[test]
    fn csv_doubles_inner_quotes_and_wraps_newlines() {
        let mut r = ExperimentReport::new("t", "s", &["a", "b"]);
        r.push_row(vec!["say \"hi\"".into(), "two\nlines".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"say \"\"hi\"\"\""), "{csv}");
        assert!(csv.contains("\"two\nlines\""), "{csv}");
    }

    #[test]
    fn csv_leaves_clean_cells_unquoted() {
        let mut r = ExperimentReport::new("t", "s", &["m (B)"]);
        r.push_row(vec!["8x8x8".into()]);
        assert_eq!(r.to_csv(), "m (B)\n8x8x8\n");
    }

    /// Cells over a charset stacked with CSV specials (commas, quotes,
    /// CR, LF, Unicode) — the adversarial inputs for RFC-4180 quoting.
    fn cell_strategy() -> impl proptest::strategy::Strategy<Value = String> {
        use proptest::strategy::Strategy as _;
        const CHARS: [char; 9] = ['a', 'z', '0', ' ', ',', '"', '\r', '\n', 'é'];
        proptest::collection::vec(0usize..CHARS.len(), 0..9)
            .prop_map(|idxs| idxs.into_iter().map(|i| CHARS[i]).collect())
    }

    proptest::proptest! {
        /// Any cell content — commas, quotes, CR/LF, Unicode — survives
        /// the shared writer/parser pair exactly, through the report's
        /// LF-terminated rendering. (The CRLF-terminated trace export is
        /// covered by the same pairing in `bgl-sim`'s csv_roundtrip.)
        #[test]
        fn csv_parses_back_verbatim(
            header in proptest::collection::vec(cell_strategy(), 1..4),
            body in proptest::collection::vec(cell_strategy(), 1..13),
        ) {
            let width = header.len();
            let cols: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut r = ExperimentReport::new("t", "s", &cols);
            for chunk_start in (0..body.len()).step_by(width) {
                let mut row: Vec<String> =
                    body[chunk_start..(chunk_start + width).min(body.len())].to_vec();
                row.resize(width, String::new());
                // A single empty cell renders as a blank line, which the
                // dialect (like RFC 4180) cannot distinguish from no row.
                if width == 1 && row[0].is_empty() {
                    continue;
                }
                r.push_row(row);
            }
            let parsed = bgl_sim::csv::parse(&r.to_csv());
            proptest::prop_assert_eq!(&parsed[0], &header);
            proptest::prop_assert_eq!(&parsed[1..], &r.rows[..]);
        }
    }
}
