//! Experiment report structure and rendering (aligned text tables, CSV,
//! JSON).

use serde::{Deserialize, Serialize};

/// A reproduced table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short id ("table1", "fig6", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rendered rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling substitutions, observations).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Create an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> ExperimentReport {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned monospace table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Render as CSV (quoting-free cells assumed; commas are replaced).
    pub fn to_csv(&self) -> String {
        let clean = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| clean(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("t", "sample", &["a", "bee"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["333".into(), "4".into()]);
        r.note("hello");
        r
    }

    #[test]
    fn text_render_aligns() {
        let t = sample().to_text();
        assert!(t.contains("a    bee"));
        assert!(t.contains("333  4"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn csv_render() {
        let c = sample().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines, vec!["a,bee", "1,2", "333,4"]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut r = ExperimentReport::new("t", "sample", &["a"]);
        r.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn commas_sanitized_in_csv() {
        let mut r = ExperimentReport::new("t", "s", &["a"]);
        r.push_row(vec!["x,y".into()]);
        assert!(r.to_csv().contains("x;y"));
    }
}
