//! The paper's reported numbers, transcribed for side-by-side comparison.
//!
//! Every value here comes from the tables and running text of *Performance
//! Analysis and Optimization of All-to-all Communication on the Blue
//! Gene/L Supercomputer* (Kumar & Heidelberger). Figures without exact
//! numbers are represented by the quantitative claims the text makes about
//! them.

/// Table 1: AR percent of peak on symmetric partitions, large messages.
pub const TABLE1_AR_SYMMETRIC: &[(&str, f64)] = &[
    ("8x1x1", 98.2),
    ("16x1x1", 97.7),
    ("8x8", 98.7),
    ("16x16", 99.7),
    ("8x8x8", 99.0),
    ("16x16x16", 99.0),
];

/// Table 2: AR percent of peak on asymmetric meshes and tori, large
/// messages. `M` marks a mesh dimension.
pub const TABLE2_AR_ASYMMETRIC: &[(&str, f64)] = &[
    ("8x2M", 91.8),
    ("8x4M", 89.0),
    ("8x16", 85.7),
    ("8x32", 84.0),
    ("8x8x2M", 90.1),
    ("8x8x4M", 87.7),
    ("8x8x16", 81.0),
    ("8x16x16", 87.0),
    ("8x32x16", 73.3),
    ("16x32x16", 71.0),
    ("32x32x16", 73.6),
];

/// Table 3: Two Phase Schedule percent of peak and chosen phase-1
/// dimension, long messages: `(shape, percent, linear dimension)`.
pub const TABLE3_TPS: &[(&str, f64, &str)] = &[
    ("8x8x8", 77.2, "Z"),
    ("16x8x8", 99.0, "X"),
    ("8x16x8", 98.9, "Y"),
    ("8x8x16", 97.9, "Z"),
    ("16x16x8", 97.5, "Z"),
    ("16x8x16", 97.4, "Y"),
    ("8x16x16", 97.2, "X"),
    ("8x32x16", 99.5, "Y"),
    ("16x16x16", 96.1, "X"),
    ("16x32x16", 99.8, "Y"),
    ("32x16x16", 99.8, "X"),
    ("32x32x16", 96.8, "Z"),
    ("40x32x16", 99.5, "X"),
];

/// Table 4: one-byte all-to-all latency in milliseconds:
/// `(shape, TPS ms, AR ms)`.
pub const TABLE4_LATENCY_MS: &[(&str, f64, f64)] = &[
    ("8x8x8", 0.81, 0.52),
    ("8x8x16", 1.64, 1.25),
    ("16x16x16", 7.5, 4.7),
    ("8x32x16", 8.1, 12.4),
    ("32x32x16", 35.9, 65.2),
];

/// Figure 4's quantified claims about the direct strategies.
pub mod fig4 {
    /// DR on 8x32x16 (percent of peak) vs AR on the same partition.
    pub const DR_8X32X16: f64 = 86.0;
    /// AR on 8x32x16 as read in the Figure 4 discussion.
    pub const AR_8X32X16: f64 = 77.0;
    /// DR on 8x16x16.
    pub const DR_8X16X16: f64 = 67.0;
    /// AR on 8x16x16.
    pub const AR_8X16X16: f64 = 86.0;
    /// DR exceeds this on 2n×n×n partitions (X longest).
    pub const DR_2N_N_N_FLOOR: f64 = 90.0;
    /// Throttling gains only ~2–3 % over plain AR on 1024 nodes.
    pub const THROTTLE_GAIN_MAX: f64 = 3.0;
}

/// Figures 6 and 7's quantified claims about short messages.
pub mod short {
    /// On 512 nodes, VMesh ≈ 2× AR for very short messages.
    pub const VMESH_OVER_AR_512: f64 = 2.0;
    /// On 8×32×16, for 8-byte messages, VMesh ≈ 2× TPS.
    pub const VMESH_OVER_TPS_4096: f64 = 2.0;
    /// On 8×32×16, for 8-byte messages, VMesh ≈ 3× AR.
    pub const VMESH_OVER_AR_4096: f64 = 3.0;
    /// Measured direct/combining crossover band, bytes.
    pub const CROSSOVER_BYTES: (u64, u64) = (32, 64);
}

/// The headline: on 40×32×16, TPS lifts all-to-all from ~72 % to over
/// 99 % of peak.
pub mod headline {
    /// AR on the 20,480-node partition.
    pub const AR_40X32X16: f64 = 72.0;
    /// TPS on the same partition.
    pub const TPS_40X32X16: f64 = 99.5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::Partition;

    #[test]
    fn all_shapes_parse() {
        for (s, _) in TABLE1_AR_SYMMETRIC {
            let _: Partition = s.parse().unwrap();
        }
        for (s, _) in TABLE2_AR_ASYMMETRIC {
            let _: Partition = s.parse().unwrap();
        }
        for (s, _, _) in TABLE3_TPS {
            let _: Partition = s.parse().unwrap();
        }
        for (s, _, _) in TABLE4_LATENCY_MS {
            let _: Partition = s.parse().unwrap();
        }
    }

    #[test]
    fn table3_covers_all_paper_partitions() {
        assert_eq!(TABLE3_TPS.len(), 13);
        // Node counts match the paper's partition-size column.
        let sizes: Vec<u32> = TABLE3_TPS
            .iter()
            .map(|(s, _, _)| s.parse::<Partition>().unwrap().num_nodes())
            .collect();
        assert_eq!(
            sizes,
            vec![512, 1024, 1024, 1024, 2048, 2048, 2048, 4096, 4096, 8192, 8192, 16384, 20480]
        );
    }

    #[test]
    fn table1_shapes_are_symmetric_table2_not() {
        for (s, _) in TABLE1_AR_SYMMETRIC {
            assert!(s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
        for (s, _) in TABLE2_AR_ASYMMETRIC {
            assert!(!s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
    }
}
