//! Budgeted, cached simulation runner shared by all experiments.
//!
//! Several tables and figures evaluate the same (partition, strategy,
//! message size) points; the runner memoizes completed runs so the full
//! suite never repeats work. For large partitions it automatically samples
//! the all-to-all (uniform destination subsets, see
//! [`bgl_core::AaWorkload::coverage`]) so a run stays within a node-cycle
//! budget; every report records the coverage used.

use bgl_core::{peak_cycles_for, run_aa, AaReport, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{SimConfig, SimError};
use bgl_torus::Partition;
use parking_lot::Mutex;
use std::collections::HashMap;

/// How hard to push the simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small budgets for benches/CI: coarse percentages, seconds per
    /// experiment.
    Quick,
    /// Paper-shape partitions with node-cycle budgets sized for a full
    /// suite run of tens of minutes.
    Paper,
}

impl Scale {
    /// Node-cycle budget per run (nodes × simulated cycles).
    pub fn node_cycle_budget(self) -> f64 {
        match self {
            Scale::Quick => 8.0e6,
            Scale::Paper => 5.0e7,
        }
    }

    /// Minimum destinations per node when sampling.
    pub fn min_dests(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Paper => 64,
        }
    }
}

/// The memoizing runner.
pub struct Runner {
    /// Machine parameters used for every run.
    pub params: MachineParams,
    /// Budget scale.
    pub scale: Scale,
    /// Workload/schedule seed.
    pub seed: u64,
    cache: Mutex<HashMap<String, AaReport>>,
}

impl Runner {
    /// A runner at `scale` with BG/L parameters.
    pub fn new(scale: Scale) -> Runner {
        Runner { params: MachineParams::bgl(), scale, seed: 0xaa11, cache: Mutex::new(HashMap::new()) }
    }

    /// Pick the coverage that keeps `nodes × estimated cycles` within
    /// budget. The estimate inflates the payload-based peak by the wire
    /// overhead ratio, which matters for tiny messages (a 1-byte message
    /// rides a 64-byte packet).
    pub fn budget_coverage(&self, part: &Partition, m: u64) -> f64 {
        let p = part.num_nodes();
        let m = m.max(1);
        let full = peak_cycles_for(part, &AaWorkload::full(m), &self.params);
        let shapes = bgl_core::packetize(
            m,
            self.params.software_header_bytes,
            self.params.min_packet_bytes,
            &self.params,
        );
        let wire_bytes = bgl_core::total_chunks(&shapes) * self.params.chunk_bytes as u64;
        let wire_factor = (wire_bytes as f64 / m as f64).max(1.0);
        let budget = self.scale.node_cycle_budget();
        let mut cov = (budget / (p as f64 * full * wire_factor)).min(1.0);
        // Keep enough destinations for the sample to look like an AA.
        let floor = (self.scale.min_dests(), p.saturating_sub(1).max(1));
        let min_cov = (floor.0.min(floor.1) as f64) / floor.1 as f64;
        cov = cov.max(min_cov).min(1.0);
        cov
    }

    /// Run (or fetch) an all-to-all with automatic coverage.
    pub fn aa(&self, shape: &str, strategy: &StrategyKind, m: u64) -> Result<AaReport, SimError> {
        let part: Partition = shape.parse().expect("valid shape");
        let cov = self.budget_coverage(&part, m);
        self.aa_with(shape, strategy, m, cov, |_| {})
    }

    /// Run (or fetch) with explicit coverage and a config tweak. The tweak
    /// must be captured in `variant_of` keys by callers that use it with
    /// different closures — here it is keyed by the closure's observable
    /// effect on the default config, so pass a descriptive `shape` string
    /// when tweaking (ablations construct their own key suffix via
    /// [`Runner::aa_variant`]).
    pub fn aa_with(
        &self,
        shape: &str,
        strategy: &StrategyKind,
        m: u64,
        coverage: f64,
        tweak: impl Fn(&mut SimConfig),
    ) -> Result<AaReport, SimError> {
        self.aa_variant(shape, strategy, m, coverage, "", tweak)
    }

    /// Like [`Runner::aa_with`] but with an explicit cache-key suffix for
    /// configuration variants (ablations).
    pub fn aa_variant(
        &self,
        shape: &str,
        strategy: &StrategyKind,
        m: u64,
        coverage: f64,
        variant: &str,
        tweak: impl Fn(&mut SimConfig),
    ) -> Result<AaReport, SimError> {
        let key = format!("{shape}|{strategy:?}|{m}|{coverage:.6}|{variant}");
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(hit.clone());
        }
        let part: Partition = shape.parse().expect("valid shape");
        let mut workload = if coverage >= 1.0 {
            AaWorkload::full(m)
        } else {
            AaWorkload::sampled(m, coverage)
        };
        workload.seed = self.seed;
        let mut cfg = SimConfig::new(part);
        tweak(&mut cfg);
        let report = run_aa(part, &workload, strategy, &self.params, cfg)?;
        self.cache.lock().insert(key, report.clone());
        Ok(report)
    }

    /// A large-message size that packs into full 256-byte packets
    /// (m + h ≡ 0 mod 240), scaled down for `Quick` and for very large
    /// partitions (where destination sampling already bounds the run and a
    /// smaller per-pair message keeps wall-clock in budget; 912 B is still
    /// four full packets per destination — asymptotic for % of peak).
    pub fn large_m_for(&self, part: &Partition) -> u64 {
        match self.scale {
            Scale::Quick => 912,
            Scale::Paper => {
                if part.num_nodes() > 4096 {
                    912
                } else {
                    3792
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_coverage_full_for_small() {
        let r = Runner::new(Scale::Paper);
        let part: Partition = "8x8x8".parse().unwrap();
        assert_eq!(r.budget_coverage(&part, 3792), 1.0);
    }

    #[test]
    fn budget_coverage_samples_large() {
        let r = Runner::new(Scale::Paper);
        let part: Partition = "40x32x16".parse().unwrap();
        let cov = r.budget_coverage(&part, 3792);
        assert!(cov < 0.1, "{cov}");
        // Still at least the destination floor.
        let w = AaWorkload::sampled(3792, cov);
        assert!(w.dests_per_node(part.num_nodes()) >= 64);
    }

    #[test]
    fn cache_hits_return_identical_reports() {
        let r = Runner::new(Scale::Quick);
        let a = r.aa("4x4", &StrategyKind::AdaptiveRandomized, 240).unwrap();
        let b = r.aa("4x4", &StrategyKind::AdaptiveRandomized, 240).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(r.cache.lock().len(), 1);
    }

    #[test]
    fn variants_do_not_collide() {
        let r = Runner::new(Scale::Quick);
        let base = r
            .aa_variant("4x4", &StrategyKind::AdaptiveRandomized, 240, 1.0, "", |_| {})
            .unwrap();
        let tweaked = r
            .aa_variant("4x4", &StrategyKind::AdaptiveRandomized, 240, 1.0, "vc8", |c| {
                c.router.vc_fifo_chunks = 8
            })
            .unwrap();
        assert_eq!(r.cache.lock().len(), 2);
        // Shallow VC FIFOs cannot be faster.
        assert!(tweaked.cycles >= base.cycles);
    }

    #[test]
    fn quick_scale_is_cheap() {
        let r = Runner::new(Scale::Quick);
        let rep = r.aa("8x8x8", &StrategyKind::AdaptiveRandomized, 912).unwrap();
        // Budgeted coverage keeps the run small.
        assert!(rep.workload.coverage < 1.0);
    }
}
