//! Budgeted, cached, parallel simulation runner shared by all experiments.
//!
//! Several tables and figures evaluate the same (partition, strategy,
//! message size) points; the runner memoizes completed runs so the full
//! suite never repeats work. Runs are identified by a structured
//! [`RunKey`] (partition, strategy, message size, coverage in parts per
//! million, variant label) rather than a formatted string, so lookups
//! allocate nothing and cannot collide on formatting.
//!
//! Experiments declare their simulation points up front as [`RunPoint`]s;
//! [`Runner::run_points`] deduplicates them and executes the remainder
//! across a scoped thread pool ([`Runner::with_jobs`]). Each run is
//! independent and fully deterministic given its key, so results are
//! byte-identical regardless of the number of threads or completion
//! order.
//!
//! For large partitions the runner automatically samples the all-to-all
//! (uniform destination subsets, see [`bgl_core::AaWorkload::coverage`])
//! so a run stays within a node-cycle budget; every report records the
//! coverage used.

use bgl_core::{peak_cycles_for, run_aa, AaReport, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{
    EngineMode, FaultPlan, PerfConfig, ProgressConfig, SimConfig, SimError, TraceConfig,
};
use bgl_torus::Partition;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Coverage is stored in parts per million: f64 never enters the key.
pub const COVERAGE_PPM_FULL: u32 = 1_000_000;

/// Cache shard count (a power of two; shards cut lock contention when
/// many worker threads finish runs at once).
const SHARDS: usize = 16;

/// How hard to push the simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small budgets for benches/CI: coarse percentages, seconds per
    /// experiment.
    Quick,
    /// Paper-shape partitions with node-cycle budgets sized for a full
    /// suite run of tens of minutes.
    Paper,
}

impl Scale {
    /// Node-cycle budget per run (nodes × simulated cycles).
    pub fn node_cycle_budget(self) -> f64 {
        match self {
            Scale::Quick => 8.0e6,
            Scale::Paper => 5.0e7,
        }
    }

    /// Minimum destinations per node when sampling.
    pub fn min_dests(self) -> u32 {
        match self {
            Scale::Quick => 16,
            Scale::Paper => 64,
        }
    }
}

/// Structured identity of one simulation run. Hash/Eq-safe: coverage is
/// quantized to integer parts per million (the same quantized value is
/// used to build the workload, so the key exactly describes the run).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// The partition simulated.
    pub part: Partition,
    /// The all-to-all strategy.
    pub strategy: StrategyKind,
    /// Message size per destination, bytes.
    pub m: u64,
    /// Destination coverage in parts per million (1_000_000 = full AA).
    pub coverage_ppm: u32,
    /// Configuration-variant label ("" for the default config). Distinct
    /// config tweaks must carry distinct labels.
    pub variant: &'static str,
    /// Trace sampling interval in cycles, 0 = tracing off. Part of the
    /// key so traced and untraced runs never share a cache slot (their
    /// `NetStats` are identical by construction, but only the former
    /// carries an `AaReport::trace`).
    pub trace_interval: u64,
    /// Injected faults (empty = healthy run). Unlike engine mode or
    /// shard count, a fault plan *changes the result*, so it is part of
    /// the key: a faulty run and its healthy twin never share a cache
    /// slot.
    pub fault: FaultPlan,
}

impl RunKey {
    /// Key for a run at `coverage` with the default config.
    pub fn new(part: Partition, strategy: StrategyKind, m: u64, coverage: f64) -> RunKey {
        RunKey {
            part,
            strategy,
            m,
            coverage_ppm: RunKey::quantize(coverage),
            variant: "",
            trace_interval: 0,
            fault: FaultPlan::default(),
        }
    }

    /// Quantize a coverage fraction to parts per million.
    pub fn quantize(coverage: f64) -> u32 {
        let ppm = (coverage.clamp(0.0, 1.0) * COVERAGE_PPM_FULL as f64).round() as u32;
        // A budgeted coverage never rounds to zero destinations.
        ppm.max(1)
    }

    /// The coverage fraction this key runs at.
    pub fn coverage(&self) -> f64 {
        self.coverage_ppm as f64 / COVERAGE_PPM_FULL as f64
    }

    /// Whether this is a full (unsampled) all-to-all.
    pub fn is_full(&self) -> bool {
        self.coverage_ppm >= COVERAGE_PPM_FULL
    }
}

/// Intern a variant label as `&'static str` (deserialization support:
/// `RunKey::variant` borrows statically, so parsed labels are leaked into
/// a small process-lifetime pool, deduplicated by content — bounded by
/// the number of distinct variant labels ever parsed).
fn intern_variant(s: &str) -> &'static str {
    if s.is_empty() {
        return "";
    }
    static POOL: std::sync::OnceLock<Mutex<Vec<&'static str>>> = std::sync::OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("intern pool lock");
    if let Some(&existing) = pool.iter().find(|&&e| e == s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

impl serde::Serialize for RunKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("part".to_string(), self.part.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            ("m".to_string(), self.m.to_value()),
            ("coverage_ppm".to_string(), self.coverage_ppm.to_value()),
            ("variant".to_string(), self.variant.to_value()),
            ("trace_interval".to_string(), self.trace_interval.to_value()),
            ("fault".to_string(), self.fault.to_value()),
        ])
    }
}

impl serde::Deserialize for RunKey {
    fn from_value(v: &serde::Value) -> Result<RunKey, serde::Error> {
        Ok(RunKey {
            part: serde::de_field(v, "part")?,
            strategy: serde::de_field(v, "strategy")?,
            m: serde::de_field(v, "m")?,
            coverage_ppm: serde::de_field(v, "coverage_ppm")?,
            variant: intern_variant(&serde::de_field::<String>(v, "variant")?),
            trace_interval: serde::de_field(v, "trace_interval")?,
            // Keys stored before fault injection existed parse as healthy.
            fault: serde::de_field(v, "fault")?,
        })
    }
}

/// A shareable simulator-configuration tweak, as carried by a
/// [`RunPoint`] variant.
pub type SharedTweak = Arc<dyn Fn(&mut SimConfig) + Send + Sync>;

/// A declared simulation point: a [`RunKey`] plus the configuration
/// tweak the variant label stands for. Cheap to clone (the tweak is
/// shared), and `Send + Sync` so point sets can fan out across threads.
#[derive(Clone)]
pub struct RunPoint {
    /// The identity of the run.
    pub key: RunKey,
    tweak: Option<SharedTweak>,
}

impl RunPoint {
    /// A point with the default simulator configuration.
    pub fn new(part: Partition, strategy: StrategyKind, m: u64, coverage: f64) -> RunPoint {
        RunPoint {
            key: RunKey::new(part, strategy, m, coverage),
            tweak: None,
        }
    }

    /// Attach a configuration variant. `label` must uniquely describe
    /// `tweak` — it is the part of the cache key that distinguishes this
    /// point from the default config.
    pub fn variant(
        mut self,
        label: &'static str,
        tweak: impl Fn(&mut SimConfig) + Send + Sync + 'static,
    ) -> RunPoint {
        self.key.variant = label;
        self.tweak = Some(Arc::new(tweak));
        self
    }

    /// Enable time-series tracing for this point: record a `TraceSample`
    /// every `interval_cycles` cycles and surface the series as
    /// `AaReport::trace`. The interval is part of the cache key, so a
    /// traced point never aliases its untraced twin; `NetStats` is
    /// byte-identical either way.
    ///
    /// # Panics
    /// Panics if `interval_cycles` is zero.
    pub fn traced(mut self, interval_cycles: u64) -> RunPoint {
        assert!(interval_cycles > 0, "trace interval must be positive");
        self.key.trace_interval = interval_cycles;
        self
    }

    /// Inject `fault` into this point's run. The plan is part of the
    /// cache key ([`RunKey::fault`]), so a faulty point and its healthy
    /// twin are always distinct runs. The plan is validated against the
    /// partition when the run executes (`Engine::new` panics on an
    /// invalid plan — validate earlier for a friendly error).
    pub fn with_fault(mut self, fault: FaultPlan) -> RunPoint {
        self.key.fault = fault;
        self
    }

    fn apply(&self, cfg: &mut SimConfig) {
        if let Some(tweak) = &self.tweak {
            tweak(cfg);
        }
    }
}

impl std::fmt::Debug for RunPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunPoint")
            .field("key", &self.key)
            .field("tweak", &self.tweak.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// Wall-clock accounting of a profiling-enabled runner
/// ([`Runner::with_perf`]), aggregated across every worker thread of
/// [`Runner::run_points`] and every sequential `aa*` call. Queue wait is
/// the time a declared point sat behind other points before a worker
/// picked it up; execute time is the simulation call itself. Cache hits
/// cost neither.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunnerTiming {
    /// Points actually simulated (cache misses).
    pub points_executed: u64,
    /// Lookups answered straight from the memo cache.
    pub cache_hits: u64,
    /// Total seconds points spent queued behind other work (summed over
    /// points, so with `--jobs > 1` this can exceed wall time).
    pub queue_wait_secs: f64,
    /// Total seconds spent inside simulation runs (summed over points).
    pub execute_secs: f64,
}

/// The memoizing parallel runner.
pub struct Runner {
    /// Machine parameters used for every run.
    pub params: MachineParams,
    /// Budget scale.
    pub scale: Scale,
    /// Workload/schedule seed.
    pub seed: u64,
    /// Engine mode applied to every run before the point's own tweak
    /// (so a variant that pins a specific mode still wins).
    pub engine: EngineMode,
    /// Intra-run torus shard count applied to every run (see
    /// `SimConfig::shards`). Like [`engine`](Self::engine), results are
    /// byte-identical across values, so it is not part of the cache key.
    pub sim_shards: std::num::NonZeroUsize,
    jobs: usize,
    /// Host profiling: pass `SimConfig::perf` to every run (so reports
    /// carry `AaReport::perf`) and aggregate [`RunnerTiming`]. Results
    /// are byte-identical on or off, so — like `engine` and `sim_shards`
    /// — it is not part of the cache key.
    perf: bool,
    /// Opt-in stderr heartbeat (`SimConfig::progress`) for every run.
    /// Like `perf`, byte-identical results — not part of the cache key.
    progress: bool,
    timing: Mutex<RunnerTiming>,
    shards: [Mutex<HashMap<RunKey, Result<AaReport, SimError>>>; SHARDS],
}

impl Runner {
    /// A runner at `scale` with BG/L parameters, using every available
    /// core for [`Runner::run_points`].
    pub fn new(scale: Scale) -> Runner {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runner {
            params: MachineParams::bgl(),
            scale,
            seed: 0xaa11,
            engine: EngineMode::default(),
            sim_shards: std::num::NonZeroUsize::MIN,
            jobs,
            perf: false,
            progress: false,
            timing: Mutex::new(RunnerTiming::default()),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// Select the [`EngineMode`] for every run this runner executes.
    /// Results are byte-identical across modes (pinned by the engine
    /// equivalence suite), so the cache key does not include it — the
    /// mode only changes wall-clock.
    pub fn with_engine(mut self, engine: EngineMode) -> Runner {
        self.engine = engine;
        self
    }

    /// Select the intra-run torus shard count for every run this runner
    /// executes (`SimConfig::shards`). Orthogonal to
    /// [`with_jobs`](Self::with_jobs): jobs parallelize *across* runs,
    /// shards parallelize *within* one. Results are byte-identical across
    /// shard counts (pinned by the engine equivalence suite), so the
    /// cache key does not include it — sharding only changes wall-clock.
    pub fn with_shards(mut self, shards: std::num::NonZeroUsize) -> Runner {
        self.sim_shards = shards;
        self
    }

    /// Set the worker-thread count for [`Runner::run_points`] (clamped
    /// to at least 1). Results do not depend on this.
    pub fn with_jobs(mut self, jobs: usize) -> Runner {
        self.jobs = jobs.max(1);
        self
    }

    /// Enable host profiling for every run this runner executes: reports
    /// carry `AaReport::perf` and the runner aggregates a
    /// [`RunnerTiming`] across all workers (read it with
    /// [`Runner::timing`]). Results are byte-identical on or off, so the
    /// cache key does not include it.
    pub fn with_perf(mut self, perf: bool) -> Runner {
        self.perf = perf;
        self
    }

    /// Whether host profiling is on (see [`Runner::with_perf`]).
    pub fn perf_enabled(&self) -> bool {
        self.perf
    }

    /// Enable the rate-limited stderr progress heartbeat
    /// (`SimConfig::progress`) for every run this runner executes. Purely
    /// observational: results are byte-identical on or off.
    pub fn with_progress(mut self, progress: bool) -> Runner {
        self.progress = progress;
        self
    }

    /// Snapshot of the aggregated wall-clock accounting. All zeros
    /// unless [`Runner::with_perf`] was enabled.
    pub fn timing(&self) -> RunnerTiming {
        *self.timing.lock().expect("timing lock")
    }

    /// The worker-thread count used by [`Runner::run_points`].
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Pick the coverage that keeps `nodes × estimated cycles` within
    /// budget. The estimate inflates the payload-based peak by the wire
    /// overhead ratio, which matters for tiny messages (a 1-byte message
    /// rides a 64-byte packet).
    pub fn budget_coverage(&self, part: &Partition, m: u64) -> f64 {
        let p = part.num_nodes();
        let m = m.max(1);
        let full = peak_cycles_for(part, &AaWorkload::full(m), &self.params);
        let shapes = bgl_core::packetize(
            m,
            self.params.software_header_bytes,
            self.params.min_packet_bytes,
            &self.params,
        );
        let wire_bytes = bgl_core::total_chunks(&shapes) * self.params.chunk_bytes as u64;
        let wire_factor = (wire_bytes as f64 / m as f64).max(1.0);
        let budget = self.scale.node_cycle_budget();
        let mut cov = (budget / (p as f64 * full * wire_factor)).min(1.0);
        // Keep enough destinations for the sample to look like an AA.
        let floor = (self.scale.min_dests(), p.saturating_sub(1).max(1));
        let min_cov = (floor.0.min(floor.1) as f64) / floor.1 as f64;
        cov = cov.max(min_cov).min(1.0);
        cov
    }

    /// Declare a point with automatic (budgeted) coverage.
    pub fn point(&self, shape: &str, strategy: &StrategyKind, m: u64) -> RunPoint {
        let part: Partition = shape.parse().expect("valid shape");
        let cov = self.budget_coverage(&part, m);
        RunPoint::new(part, strategy.clone(), m, cov)
    }

    /// Run (or fetch) an all-to-all with automatic coverage.
    pub fn aa(&self, shape: &str, strategy: &StrategyKind, m: u64) -> Result<AaReport, SimError> {
        self.report(&self.point(shape, strategy, m))
    }

    /// Run (or fetch) with explicit coverage and a config tweak. Callers
    /// that pass a real tweak must use [`Runner::aa_variant`] with a
    /// distinct label instead — an unlabeled tweak shares the default
    /// config's cache slot.
    pub fn aa_with(
        &self,
        shape: &str,
        strategy: &StrategyKind,
        m: u64,
        coverage: f64,
        tweak: impl Fn(&mut SimConfig),
    ) -> Result<AaReport, SimError> {
        self.aa_variant(shape, strategy, m, coverage, "", tweak)
    }

    /// Like [`Runner::aa_with`] but with an explicit variant label that
    /// keys the configuration tweak (ablations).
    pub fn aa_variant(
        &self,
        shape: &str,
        strategy: &StrategyKind,
        m: u64,
        coverage: f64,
        variant: &'static str,
        tweak: impl Fn(&mut SimConfig),
    ) -> Result<AaReport, SimError> {
        let part: Partition = shape.parse().expect("valid shape");
        let key = RunKey {
            part,
            strategy: strategy.clone(),
            m,
            coverage_ppm: RunKey::quantize(coverage),
            variant,
            trace_interval: 0,
            fault: FaultPlan::default(),
        };
        self.run_keyed(&key, &tweak)
    }

    /// Run (or fetch) a declared point.
    pub fn report(&self, point: &RunPoint) -> Result<AaReport, SimError> {
        self.run_keyed(&point.key, &|cfg| point.apply(cfg))
    }

    /// Execute a point set: deduplicate by key, drop what the cache
    /// already holds, and run the rest across `jobs` worker threads.
    /// Results land in the cache (including errors, so a failing
    /// configuration is never re-simulated); fetch them afterwards with
    /// [`Runner::report`] or the `aa*` methods. Thread count affects
    /// wall-clock only — every run is deterministic given its key.
    pub fn run_points(&self, points: &[RunPoint]) {
        let mut seen = HashSet::new();
        let todo: Vec<&RunPoint> = points
            .iter()
            .filter(|p| seen.insert(p.key.clone()) && self.lookup(&p.key).is_none())
            .collect();
        if todo.is_empty() {
            return;
        }
        // Queue wait is measured from when the whole batch was enqueued
        // (here) to when a worker picks each point up, so it sums the time
        // points spent waiting behind other points across all workers.
        let enqueued = self.perf.then(Instant::now);
        let note_pickup = |enqueued: Option<Instant>| {
            if let Some(t0) = enqueued {
                self.timing.lock().expect("timing lock").queue_wait_secs +=
                    t0.elapsed().as_secs_f64();
            }
        };
        let jobs = self.jobs.min(todo.len()).max(1);
        if jobs == 1 {
            for p in todo {
                note_pickup(enqueued);
                let _ = self.report(p);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    match todo.get(i) {
                        Some(p) => {
                            note_pickup(enqueued);
                            let _ = self.report(p);
                        }
                        None => break,
                    }
                });
            }
        });
    }

    /// How many distinct runs the cache holds (completed or failed).
    pub fn cached_runs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").len())
            .sum()
    }

    /// A large-message size that packs into full 256-byte packets
    /// (m + h ≡ 0 mod 240), scaled down for `Quick` and for very large
    /// partitions (where destination sampling already bounds the run and a
    /// smaller per-pair message keeps wall-clock in budget; 912 B is still
    /// four full packets per destination — asymptotic for % of peak).
    pub fn large_m_for(&self, part: &Partition) -> u64 {
        match self.scale {
            Scale::Quick => 912,
            Scale::Paper => {
                if part.num_nodes() > 4096 {
                    912
                } else {
                    3792
                }
            }
        }
    }

    fn shard(&self, key: &RunKey) -> &Mutex<HashMap<RunKey, Result<AaReport, SimError>>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn lookup(&self, key: &RunKey) -> Option<Result<AaReport, SimError>> {
        self.shard(key)
            .lock()
            .expect("cache lock")
            .get(key)
            .cloned()
    }

    fn run_keyed(
        &self,
        key: &RunKey,
        tweak: &dyn Fn(&mut SimConfig),
    ) -> Result<AaReport, SimError> {
        if let Some(hit) = self.lookup(key) {
            if self.perf {
                self.timing.lock().expect("timing lock").cache_hits += 1;
            }
            return hit;
        }
        let t0 = self.perf.then(Instant::now);
        let result = self.execute(key, tweak);
        if let Some(t0) = t0 {
            let mut timing = self.timing.lock().expect("timing lock");
            timing.points_executed += 1;
            timing.execute_secs += t0.elapsed().as_secs_f64();
        }
        self.shard(key)
            .lock()
            .expect("cache lock")
            .insert(key.clone(), result.clone());
        result
    }

    /// One deterministic run: the workload is rebuilt from the key (the
    /// quantized coverage, not the caller's f64) and the runner's fixed
    /// seed, so identical keys produce identical reports on any thread.
    fn execute(&self, key: &RunKey, tweak: &dyn Fn(&mut SimConfig)) -> Result<AaReport, SimError> {
        let mut workload = if key.is_full() {
            AaWorkload::full(key.m)
        } else {
            AaWorkload::sampled(key.m, key.coverage())
        };
        workload.seed = self.seed;
        let mut cfg = SimConfig::new(key.part);
        cfg.engine = self.engine;
        cfg.shards = self.sim_shards;
        cfg.perf = self.perf.then(PerfConfig::default);
        cfg.progress = self.progress.then(ProgressConfig::default);
        tweak(&mut cfg);
        // The key's trace interval and fault plan win over any tweak:
        // the key is the identity of the run, so what it says must be
        // what executes.
        if key.trace_interval > 0 {
            cfg.trace = Some(TraceConfig::every(key.trace_interval));
        }
        if !key.fault.is_empty() {
            cfg.fault = key.fault.clone();
        }
        run_aa(key.part, &workload, &key.strategy, &self.params, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_core::Pacer;

    #[test]
    fn budget_coverage_full_for_small() {
        let r = Runner::new(Scale::Paper);
        let part: Partition = "8x8x8".parse().unwrap();
        assert_eq!(r.budget_coverage(&part, 3792), 1.0);
    }

    #[test]
    fn budget_coverage_samples_large() {
        let r = Runner::new(Scale::Paper);
        let part: Partition = "40x32x16".parse().unwrap();
        let cov = r.budget_coverage(&part, 3792);
        assert!(cov < 0.1, "{cov}");
        // Still at least the destination floor.
        let w = AaWorkload::sampled(3792, cov);
        assert!(w.dests_per_node(part.num_nodes()) >= 64);
    }

    #[test]
    fn cache_hits_return_identical_reports() {
        let r = Runner::new(Scale::Quick);
        let a = r.aa("4x4", &StrategyKind::ar(), 240).unwrap();
        let b = r.aa("4x4", &StrategyKind::ar(), 240).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(r.cached_runs(), 1);
    }

    #[test]
    fn variants_do_not_collide() {
        let r = Runner::new(Scale::Quick);
        let base = r
            .aa_variant("4x4", &StrategyKind::ar(), 240, 1.0, "", |_| {})
            .unwrap();
        let tweaked = r
            .aa_variant("4x4", &StrategyKind::ar(), 240, 1.0, "vc8", |c| {
                c.router.vc_fifo_chunks = 8
            })
            .unwrap();
        assert_eq!(r.cached_runs(), 2);
        // Each label re-fetches its own cached result.
        let base2 = r
            .aa_variant("4x4", &StrategyKind::ar(), 240, 1.0, "", |_| {})
            .unwrap();
        let tweaked2 = r
            .aa_variant("4x4", &StrategyKind::ar(), 240, 1.0, "vc8", |c| {
                c.router.vc_fifo_chunks = 8
            })
            .unwrap();
        assert_eq!(base.cycles, base2.cycles);
        assert_eq!(tweaked.cycles, tweaked2.cycles);
        assert_ne!(base.cycles, tweaked.cycles, "vc8 tweak must change the run");
        assert_eq!(r.cached_runs(), 2);
    }

    #[test]
    fn quick_scale_is_cheap() {
        let r = Runner::new(Scale::Quick);
        let rep = r.aa("8x8x8", &StrategyKind::ar(), 912).unwrap();
        // Budgeted coverage keeps the run small.
        assert!(rep.workload.coverage < 1.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(256))]

        /// `quantize` → `coverage` → `quantize` is a fixed point: the
        /// fraction a key reports re-keys to the same key, so cache
        /// lookups through a report's coverage can never alias or miss.
        #[test]
        fn quantize_coverage_round_trips(ppm in 1u32..=COVERAGE_PPM_FULL) {
            let part: Partition = "4x4".parse().unwrap();
            let coverage = ppm as f64 / COVERAGE_PPM_FULL as f64;
            let key = RunKey::new(part, StrategyKind::ar(), 240, coverage);
            proptest::prop_assert_eq!(key.coverage_ppm, ppm);
            let rekeyed =
                RunKey::new(part, StrategyKind::ar(), 240, key.coverage());
            proptest::prop_assert_eq!(&rekeyed, &key);
        }

        /// Arbitrary (even denormal-ish or out-of-range) fractions
        /// quantize into 1..=PPM_FULL and stabilize after one round.
        #[test]
        fn quantize_is_idempotent_for_raw_fractions(bits in proptest::arbitrary::any::<u64>()) {
            let raw = (bits as f64 / u64::MAX as f64) * 1.5 - 0.25; // spans [-0.25, 1.25]
            let ppm = RunKey::quantize(raw);
            proptest::prop_assert!((1..=COVERAGE_PPM_FULL).contains(&ppm));
            let again = RunKey::quantize(ppm as f64 / COVERAGE_PPM_FULL as f64);
            proptest::prop_assert_eq!(again, ppm);
        }

        /// Parse what we print: random keys survive JSON serialization
        /// exactly, including the interned variant label and strategies
        /// with payload (the golden-snapshot tier keys its fingerprints
        /// by serialized `RunKey`, so this is a load-bearing identity).
        #[test]
        fn runkey_serde_round_trips(
            shape_i in 0usize..4,
            strat_i in 0usize..9,
            variant_i in 0usize..3,
            m in 1u64..100_000,
            ppm in 1u32..=COVERAGE_PPM_FULL,
            interval in 0u64..5000,
            fault_i in 0usize..3,
        ) {
            let shapes = ["4x4", "8x4x4", "8x1x1", "3x3x2"];
            let strategies = [
                // The legacy wire forms (bare names, ThrottledAdaptive,
                // TPS's `credit` field) plus every pacer attachment.
                StrategyKind::ar(),
                StrategyKind::dr(),
                StrategyKind::throttled(1.25),
                StrategyKind::tps(),
                StrategyKind::Auto,
                StrategyKind::tps().with_pacer(Pacer::credit(12, 3)),
                StrategyKind::tps().with_pacer(Pacer::rate(0.75)),
                StrategyKind::vmesh().with_pacer(Pacer::credit(4, 2)),
                StrategyKind::xyz().with_pacer(Pacer::rate(1.5)),
            ];
            let faults = [
                FaultPlan::default(),
                FaultPlan {
                    links: vec![bgl_sim::LinkFault {
                        node: 3,
                        dir: bgl_torus::Direction::from_index(1),
                        fail_at: 100,
                        recover_at: Some(900),
                    }],
                    nodes: vec![],
                },
                FaultPlan {
                    links: vec![],
                    nodes: vec![bgl_sim::NodeFault::dead(7)],
                },
            ];
            let key = RunKey {
                part: shapes[shape_i].parse().unwrap(),
                strategy: strategies[strat_i].clone(),
                m,
                coverage_ppm: ppm,
                variant: ["", "invariants", "vc8"][variant_i],
                trace_interval: interval,
                fault: faults[fault_i].clone(),
            };
            let json = serde_json::to_string(&key).expect("serializes");
            let back: RunKey = serde_json::from_str(&json).expect("parses");
            proptest::prop_assert_eq!(back, key);
        }
    }

    #[test]
    fn faulty_and_healthy_runs_never_share_a_cache_slot() {
        let r = Runner::new(Scale::Quick);
        let healthy = r.point("4x4", &StrategyKind::ar(), 240);
        let faulty = healthy.clone().with_fault(FaultPlan {
            links: vec![bgl_sim::LinkFault::dead(
                0,
                bgl_torus::Direction::from_index(0),
            )],
            nodes: vec![],
        });
        assert_ne!(healthy.key, faulty.key);
        let h = r.report(&healthy).expect("healthy run completes");
        let f = r.report(&faulty).expect("AR routes around one dead link");
        assert_eq!(r.cached_runs(), 2, "distinct cache slots");
        assert_eq!(h.stats.dropped_by_fault, 0);
        // The plan is static-dead from cycle 0: nothing is ever in
        // flight on the link, so nothing drops — but the link counters
        // must differ (traffic detoured around it).
        assert_ne!(h.stats, f.stats, "the fault must change the run");
        // Re-fetching each key is a pure cache hit onto its own slot.
        let h2 = r.report(&healthy).unwrap();
        let f2 = r.report(&faulty).unwrap();
        assert_eq!(h.stats, h2.stats);
        assert_eq!(f.stats, f2.stats);
        assert_eq!(r.cached_runs(), 2);
    }

    #[test]
    fn interned_variants_deduplicate() {
        let a = intern_variant("some-label");
        let b = intern_variant("some-label");
        assert!(std::ptr::eq(a, b), "same label must intern to one str");
        assert_eq!(intern_variant(""), "");
    }

    #[test]
    fn keys_quantize_coverage_to_ppm() {
        let part: Partition = "4x4".parse().unwrap();
        let a = RunKey::new(part, StrategyKind::ar(), 240, 0.2500004);
        let b = RunKey::new(part, StrategyKind::ar(), 240, 0.2499996);
        // Sub-ppm noise maps to the same key — and the same workload.
        assert_eq!(a, b);
        assert_eq!(a.coverage_ppm, 250_000);
        assert!(!a.is_full());
        assert!(RunKey::new(part, StrategyKind::Auto, 240, 1.0).is_full());
    }

    #[test]
    fn run_points_dedups_and_fills_cache() {
        let r = Runner::new(Scale::Quick).with_jobs(2);
        let p1 = r.point("4x4", &StrategyKind::ar(), 240);
        let p2 = r.point("4x4", &StrategyKind::ar(), 240);
        let p3 = r.point("4x4", &StrategyKind::dr(), 240);
        r.run_points(&[p1.clone(), p2, p3]);
        assert_eq!(r.cached_runs(), 2);
        // The sequential fetch is now a pure cache hit.
        let warm = r.report(&p1).unwrap();
        let direct = r.aa("4x4", &StrategyKind::ar(), 240).unwrap();
        assert_eq!(warm.cycles, direct.cycles);
        assert_eq!(r.cached_runs(), 2);
    }

    #[test]
    fn perf_timing_counts_executions_and_cache_hits() {
        let r = Runner::new(Scale::Quick).with_perf(true);
        let p = r.point("4x4", &StrategyKind::ar(), 240);
        let first = r.report(&p).expect("runs");
        assert!(first.perf.is_some(), "profile must ride the report");
        let _ = r.report(&p).expect("cached");
        let t = r.timing();
        assert_eq!(t.points_executed, 1);
        assert_eq!(t.cache_hits, 1);
        assert!(t.execute_secs > 0.0);
    }

    #[test]
    fn perf_off_is_free_and_profile_free() {
        let r = Runner::new(Scale::Quick);
        assert!(!r.perf_enabled());
        let report = r.aa("4x4", &StrategyKind::ar(), 240).expect("runs");
        assert!(report.perf.is_none(), "no profile unless asked");
        assert_eq!(r.timing(), RunnerTiming::default());
    }

    #[test]
    fn perf_does_not_change_results() {
        let plain = Runner::new(Scale::Quick);
        let profiled = Runner::new(Scale::Quick).with_perf(true).with_jobs(2);
        let strategies = [StrategyKind::ar(), StrategyKind::tps()];
        let pts: Vec<RunPoint> = strategies
            .iter()
            .map(|s| profiled.point("4x4", s, 240))
            .collect();
        profiled.run_points(&pts);
        for s in &strategies {
            let a = plain.aa("4x4", s, 240).unwrap();
            let b = profiled.aa("4x4", s, 240).unwrap();
            assert_eq!(a.cycles, b.cycles, "{}", s.name());
            assert_eq!(a.stats, b.stats, "{}", s.name());
        }
        let t = profiled.timing();
        assert_eq!(t.points_executed, 2);
        assert!(t.queue_wait_secs >= 0.0);
    }

    #[test]
    fn parallel_and_serial_results_match() {
        let strategies = [StrategyKind::ar(), StrategyKind::dr(), StrategyKind::xyz()];
        let serial = Runner::new(Scale::Quick).with_jobs(1);
        let parallel = Runner::new(Scale::Quick).with_jobs(4);
        for r in [&serial, &parallel] {
            let pts: Vec<RunPoint> = strategies.iter().map(|s| r.point("4x4", s, 240)).collect();
            r.run_points(&pts);
        }
        for s in &strategies {
            let a = serial.aa("4x4", s, 240).unwrap();
            let b = parallel.aa("4x4", s, 240).unwrap();
            assert_eq!(a.cycles, b.cycles, "{}", s.name());
            assert_eq!(a.stats, b.stats, "{}", s.name());
        }
    }

    #[test]
    fn errors_are_cached_too() {
        let r = Runner::new(Scale::Quick);
        let point = r
            .point("4x4", &StrategyKind::ar(), 240)
            .variant("deadlock", |c| {
                c.router.bubble_slack_chunks = 0;
                c.router.vc_fifo_chunks = 32;
                c.watchdog_cycles = 50_000;
            });
        let first = r.report(&point);
        let second = r.report(&point);
        assert_eq!(first, second);
        assert_eq!(r.cached_runs(), 1);
    }
}
