//! `bglsim` — sweep driver for exploratory use.
//!
//! ```text
//! bglsim sweep --shape 8x8x8 --strategies ar,dr,tps --sizes 64,240,912 [--coverage 0.25] [--jobs N] [--csv|--json]
//!              [--pacer none|rate:F|credit:W,E] [--credit W,E]
//!              [--trace-interval CYCLES] [--trace-out FILE.json|FILE.csv] [--report]
//!              [--engine full-scan|active-set|event] [--shards N]
//!              [--fault link:X,Y,Z,DIR[:@FAIL[-RECOVER]]] [--fault node:RANK[:@FAIL[-RECOVER]]]
//! bglsim fit   --shape 8x8x8
//! bglsim pattern --shape 4x4x4 --pattern transpose:8|shift:3|random:8|plane:z --m 480 [--engine MODE] [--shards N] [--fault SPEC]
//! bglsim validate [--tier quick|full] [--jobs N] [--bless] [--out FILE.json] [--engine MODE] [--shards N]
//! bglsim profile --shape 8x8x8 --strategy ar --m 240 [--coverage F] [--engine MODE] [--shards N] [--json|--csv] [--out FILE]
//! ```
//!
//! `--engine` selects the simulator scheduling core
//! ([`EngineMode`](bgl_sim::EngineMode)): the `full-scan` reference, the
//! default `active-set`, or the `event`-driven skip-ahead engine. Every
//! mode produces byte-identical results; the flag only changes
//! wall-clock. An unknown mode exits with status 2.
//!
//! `--shards N` splits each simulated torus into `N` rank slabs stepped
//! on `N` threads (`SimConfig::shards`). Orthogonal to `--jobs`, which
//! parallelizes *across* sweep points: use `--shards` when one big run
//! dominates, `--jobs` when many small runs do. Results are
//! byte-identical for every `N`; `--shards 0` exits with status 2.
//!
//! Pacing: `--pacer` overrides every swept strategy's injection pacing —
//! `none` strips it, `rate:F` throttles injection to `F×` the bisection-
//! derived peak rate, `credit:W,E` bounds each intermediate's unacked
//! window at `W` packets with acknowledgements every `E` (the `--credit
//! W,E` shorthand is equivalent). `--pacer` and `--credit` together, a
//! malformed spec, or pacing `auto` exit with status 2.
//!
//! Fault injection: `--fault` (repeatable, or several `;`-separated
//! specs in one flag) kills links mid-run — `link:X,Y,Z,DIR` one
//! directed link at coordinate (X,Y,Z) with DIR in `x+ x- y+ y- z+ z-`,
//! `node:RANK` every link of one node. An optional `:@FAIL[-RECOVER]`
//! suffix schedules the outage window in cycles; without it the link is
//! dead from cycle 0 forever. Adaptive strategies route around the
//! faults; deterministic ones report the unreachable pairs. The plan is
//! part of the run's cache key, so faulty and healthy runs never alias.
//! A malformed spec, an out-of-range coordinate or rank, a mesh-edge
//! link, a duplicate fault, or a recovery at or before its failure
//! exits with status 2.
//!
//! Sweep points run across `--jobs` worker threads (default: all
//! cores); results are identical for any thread count. `--json` emits
//! the full [`AaReport`](bgl_core::AaReport) per point.
//!
//! Tracing: `--trace-out` / `--report` / `--trace-interval` enable the
//! simulator's time-series tracer (default interval 1024 cycles).
//! `--trace-out` exports the traced reports as JSON, or one trace as
//! RFC-4180 CSV when the path ends in `.csv`; `--report` prints the
//! human-readable run report (utilization timeline, phase boundaries,
//! FIFO highlights, hottest links) per point.
//!
//! Profiling: `--perf` (on `sweep` and `validate`) collects the host-side
//! performance profile of every run — results stay byte-identical; the
//! profile rides `--json` output per report and a runner timing summary
//! (points executed, execute seconds, queue wait, cache hits) goes to
//! stderr. `profile` runs a single point with profiling on and renders
//! the human-readable report (per-phase/per-shard wall-clock breakdown,
//! event-engine skip histogram); `--json` emits the full report, `--csv`
//! the profile as RFC-4180 `metric,value` rows. `--progress` (also on
//! `sweep` and `validate`) prints a rate-limited stderr heartbeat for
//! long runs. All profile times are *host* seconds, distinct from the
//! simulated cycles/ms in the results themselves.
//!
//! `validate` runs the paper-conformance suite (DESIGN.md §7 targets as
//! machine-checked assertions, plus the golden `NetStats` fingerprints):
//! it renders a PASS/FAIL table and exits 1 if any check fails. The
//! `quick` tier is CI-sized; `full` uses paper-scale shapes. `--bless`
//! rewrites the committed golden fingerprints from the measured runs.
//!
//! Malformed input never panics: every parse failure prints a one-line
//! error to stderr and exits with status 2. Unknown flags are rejected.

use bgl_core::*;
use bgl_harness::conformance::{run_validation, Tier};
use bgl_harness::runner::{RunPoint, Runner, Scale};
use bgl_model::MachineParams;
use bgl_sim::{EngineMode, FaultPlan, LinkFault, NodeFault, SimConfig};
use bgl_torus::{Coord, Dim, Direction, Partition, Sign};
use std::collections::HashMap;

/// Print a one-line error and exit with the conventional usage status.
fn fail(msg: &str) -> ! {
    eprintln!("bglsim: {msg}");
    std::process::exit(2);
}

/// Value flags that may repeat on the command line; repeats accumulate
/// into one `;`-joined value (every other flag is last-wins).
const REPEAT_FLAGS: [&str; 1] = ["fault"];

/// Parse `--flag value` / `--flag` pairs against the declared flag sets.
/// Anything not listed — including bare positionals — is an error, as is
/// a value flag without a following value.
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> HashMap<String, String> {
    let mut map: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            fail(&format!("unexpected argument {:?}", args[i]));
        };
        if bool_flags.contains(&key) {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        } else if value_flags.contains(&key) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    match map.get_mut(key) {
                        Some(prev) if REPEAT_FLAGS.contains(&key) => {
                            prev.push(';');
                            prev.push_str(v);
                        }
                        _ => {
                            map.insert(key.to_string(), v.clone());
                        }
                    }
                    i += 2;
                }
                _ => fail(&format!("--{key} needs a value")),
            }
        } else {
            fail(&format!("unknown flag --{key}"));
        }
    }
    map
}

fn parse_shape(s: &str) -> Partition {
    s.parse()
        .unwrap_or_else(|e| fail(&format!("invalid shape {s:?}: {e}")))
}

/// Resolve `--engine full-scan|active-set|event` (default: active-set).
fn parse_engine(flags: &HashMap<String, String>) -> EngineMode {
    flags.get("engine").map_or_else(EngineMode::default, |s| {
        s.parse().unwrap_or_else(|e: String| fail(&e))
    })
}

/// Resolve `--shards N` (default 1): intra-run torus sharding, run on N
/// threads when N > 1. Results are byte-identical for every N; zero or a
/// non-number exits with status 2.
fn parse_shards(flags: &HashMap<String, String>) -> std::num::NonZeroUsize {
    flags
        .get("shards")
        .map_or(std::num::NonZeroUsize::MIN, |s| {
            s.parse::<usize>()
                .ok()
                .and_then(std::num::NonZeroUsize::new)
                .unwrap_or_else(|| fail(&format!("--shards needs a positive integer, got {s:?}")))
        })
}

/// Parse a fault direction token: `x+ x- y+ y- z+ z-`.
fn parse_fault_dir(s: &str, spec: &str) -> Direction {
    let dim = match s.as_bytes().first() {
        Some(b'x') | Some(b'X') => Dim::X,
        Some(b'y') | Some(b'Y') => Dim::Y,
        Some(b'z') | Some(b'Z') => Dim::Z,
        _ => fail(&format!(
            "--fault {spec:?}: direction must be x+|x-|y+|y-|z+|z-, got {s:?}"
        )),
    };
    let sign = match &s[1..] {
        "+" => Sign::Plus,
        "-" => Sign::Minus,
        _ => fail(&format!(
            "--fault {spec:?}: direction must be x+|x-|y+|y-|z+|z-, got {s:?}"
        )),
    };
    Direction { dim, sign }
}

/// Parse the optional `@FAIL[-RECOVER]` window suffix of a fault spec.
/// Absent = statically dead from cycle 0, never recovering.
fn parse_fault_window(window: Option<&str>, spec: &str) -> (u64, Option<u64>) {
    let Some(w) = window else {
        return (0, None);
    };
    let Some(w) = w.strip_prefix('@') else {
        fail(&format!(
            "--fault {spec:?}: schedule must be @FAIL or @FAIL-RECOVER, got {w:?}"
        ));
    };
    let cycle = |s: &str| -> u64 {
        s.parse().unwrap_or_else(|_| {
            fail(&format!(
                "--fault {spec:?}: schedule cycles must be numeric, got {s:?}"
            ))
        })
    };
    match w.split_once('-') {
        Some((f, r)) => (cycle(f), Some(cycle(r))),
        None => (cycle(w), None),
    }
}

/// Parse the repeatable `--fault` flag into a validated [`FaultPlan`].
///
/// Grammar (specs separated by `;` or by repeating the flag):
///   `link:X,Y,Z,DIR[:@FAIL[-RECOVER]]` — one directed link at coordinate
///   (X,Y,Z), DIR in `x+ x- y+ y- z+ z-`;
///   `node:RANK[:@FAIL[-RECOVER]]` — every link of one node.
/// No schedule means dead from cycle 0 forever. Any malformed spec, an
/// out-of-range coordinate or rank, a mesh-edge link, a duplicate, or a
/// recovery at or before its failure exits with status 2.
fn parse_fault(flags: &HashMap<String, String>, part: &Partition) -> FaultPlan {
    let mut plan = FaultPlan::default();
    let Some(specs) = flags.get("fault") else {
        return plan;
    };
    for spec in specs.split(';') {
        let spec = spec.trim();
        let Some((kind, rest)) = spec.split_once(':') else {
            fail(&format!(
                "--fault must be link:X,Y,Z,DIR[:@FAIL[-RECOVER]] or \
                 node:RANK[:@FAIL[-RECOVER]], got {spec:?}"
            ));
        };
        let (body, window) = match rest.split_once(':') {
            Some((b, w)) => (b, Some(w)),
            None => (rest, None),
        };
        let (fail_at, recover_at) = parse_fault_window(window, spec);
        match kind {
            "link" => {
                let fields: Vec<&str> = body.split(',').collect();
                let [x, y, z, d] = fields[..] else {
                    fail(&format!(
                        "--fault link needs X,Y,Z,DIR (4 fields), got {body:?}"
                    ));
                };
                let coord = |s: &str| -> u16 {
                    s.parse().unwrap_or_else(|_| {
                        fail(&format!(
                            "--fault {spec:?}: coordinates must be numeric, got {s:?}"
                        ))
                    })
                };
                let c = Coord::new(coord(x), coord(y), coord(z));
                if !part.contains(c) {
                    fail(&format!(
                        "--fault {spec:?}: coordinate {c} outside partition {part}"
                    ));
                }
                plan.links.push(LinkFault {
                    node: part.rank_of(c),
                    dir: parse_fault_dir(d, spec),
                    fail_at,
                    recover_at,
                });
            }
            "node" => {
                let rank = body.parse().unwrap_or_else(|_| {
                    fail(&format!(
                        "--fault {spec:?}: node rank must be numeric, got {body:?}"
                    ))
                });
                plan.nodes.push(NodeFault {
                    rank,
                    fail_at,
                    recover_at,
                });
            }
            other => fail(&format!("--fault kind must be link or node, got {other:?}")),
        }
    }
    if let Err(e) = plan.validate(part) {
        fail(&format!("--fault: {e}"));
    }
    plan
}

fn strategy_by_name(name: &str) -> StrategyKind {
    match name.trim().to_ascii_lowercase().as_str() {
        "ar" => StrategyKind::ar(),
        "dr" => StrategyKind::dr(),
        "mpi" => StrategyKind::mpi(),
        "throttle" | "thr" => StrategyKind::throttled(1.0),
        "tps" => StrategyKind::tps(),
        "vmesh" | "vm" => StrategyKind::vmesh(),
        "xyz" => StrategyKind::xyz(),
        "auto" => StrategyKind::Auto,
        other => fail(&format!(
            "unknown strategy {other:?} (ar|dr|mpi|thr|tps|vmesh|xyz|auto)"
        )),
    }
}

/// Parse `--pacer none|rate:<factor>|credit:<window>,<every>`.
fn parse_pacer(spec: &str) -> Pacer {
    let s = spec.trim();
    if s.eq_ignore_ascii_case("none") {
        return Pacer::Unpaced;
    }
    if let Some(f) = s.strip_prefix("rate:") {
        let factor = f
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|x| *x > 0.0 && x.is_finite())
            .unwrap_or_else(|| fail(&format!("--pacer rate: needs a positive factor, got {f:?}")));
        return Pacer::rate(factor);
    }
    if let Some(c) = s.strip_prefix("credit:") {
        return parse_credit(c);
    }
    fail(&format!(
        "--pacer must be none, rate:<factor> or credit:<window>,<every>, got {spec:?}"
    ))
}

/// Parse the `--credit <window>,<every>` shorthand.
fn parse_credit(spec: &str) -> Pacer {
    let (w, e) = spec.split_once(',').unwrap_or_else(|| {
        fail(&format!(
            "credit pacing needs <window>,<every>, got {spec:?}"
        ))
    });
    let window = w
        .trim()
        .parse::<u32>()
        .ok()
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            fail(&format!(
                "credit window must be a positive integer, got {w:?}"
            ))
        });
    let every = e
        .trim()
        .parse::<u32>()
        .ok()
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            fail(&format!(
                "credit quantum must be a positive integer, got {e:?}"
            ))
        });
    if every > window {
        fail(&format!(
            "credit quantum {every} must not exceed the window {window} \
             (the receiver would never owe an acknowledgement)"
        ));
    }
    Pacer::credit(window, every)
}

/// Resolve the sweep's pacer flags: `--pacer` and `--credit` conflict,
/// and `auto` picks its own pacing so an explicit pacer is an error.
fn apply_pacer_flags(
    flags: &HashMap<String, String>,
    strategies: Vec<StrategyKind>,
) -> Vec<StrategyKind> {
    let pacer = match (flags.get("pacer"), flags.get("credit")) {
        (Some(_), Some(_)) => fail("--pacer and --credit conflict; pass exactly one"),
        (Some(p), None) => parse_pacer(p),
        (None, Some(c)) => parse_credit(c),
        (None, None) => return strategies,
    };
    strategies
        .into_iter()
        .map(|s| {
            if matches!(s, StrategyKind::Auto) {
                fail("--pacer/--credit cannot apply to strategy \"auto\"; name a strategy");
            }
            s.with_pacer(pacer)
        })
        .collect()
}

fn cmd_sweep(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("8x8x8");
    let part = parse_shape(shape);
    let strategies: Vec<StrategyKind> = flags
        .get("strategies")
        .map(String::as_str)
        .unwrap_or("ar,tps")
        .split(',')
        .map(strategy_by_name)
        .collect();
    let strategies = apply_pacer_flags(flags, strategies);
    // Strategy × shape compatibility is knowable before any simulation:
    // reject e.g. TPS on a 4-D torus here with exit 2, not mid-sweep.
    for s in &strategies {
        if let Err(e) = s.check_dims(&part) {
            fail(&e.to_string());
        }
    }
    let sizes: Vec<u64> = flags
        .get("sizes")
        .map(String::as_str)
        .unwrap_or("64,240,912")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("--sizes needs numeric bytes, got {s:?}")))
        })
        .collect();
    let coverage: f64 = flags.get("coverage").map_or(1.0, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("--coverage needs a fraction, got {s:?}")))
    });
    if !(0.0..=1.0).contains(&coverage) {
        fail(&format!("--coverage must be within 0..=1, got {coverage}"));
    }
    let csv = flags.contains_key("csv");
    let json = flags.contains_key("json");
    let report = flags.contains_key("report");
    let trace_out = flags.get("trace-out").cloned();
    let trace_interval: u64 = flags.get("trace-interval").map_or(1024, |s| {
        s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            fail(&format!(
                "--trace-interval needs a positive cycle count, got {s:?}"
            ))
        })
    });
    // --trace-out and --report both imply tracing; --trace-interval alone
    // also enables it (the trace then rides the --json output).
    let tracing = trace_out.is_some() || report || flags.contains_key("trace-interval");
    let fault = parse_fault(flags, &part);
    let mut runner = Runner::new(Scale::Paper)
        .with_engine(parse_engine(flags))
        .with_shards(parse_shards(flags))
        .with_perf(flags.contains_key("perf"))
        .with_progress(flags.contains_key("progress"));
    if let Some(n) = flags.get("jobs") {
        let jobs = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| fail(&format!("--jobs needs a positive integer, got {n:?}")));
        runner = runner.with_jobs(jobs);
    }
    let points: Vec<RunPoint> = sizes
        .iter()
        .flat_map(|&m| {
            let fault = fault.clone();
            strategies.iter().map(move |s| {
                let mut p = RunPoint::new(part, s.clone(), m, coverage);
                if !fault.is_empty() {
                    p = p.with_fault(fault.clone());
                }
                if tracing {
                    p = p.traced(trace_interval);
                }
                if report {
                    // The hottest-links table needs per-link counters.
                    p = p.variant("detailed-links", |c| c.detailed_link_stats = true);
                }
                p
            })
        })
        .collect();
    runner.run_points(&points);
    print_perf_summary(&runner);
    if let Some(path) = &trace_out {
        write_traces(path, &points, &runner);
    }
    if json {
        let reports: Vec<AaReport> = points
            .iter()
            .filter_map(|p| runner.report(p).ok())
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("serialize")
        );
        return;
    }
    if csv {
        println!("shape,strategy,m_bytes,coverage,cycles,ms,percent_of_peak");
    } else {
        println!("sweep on {part} (coverage {coverage}):");
    }
    for point in &points {
        let m = point.key.m;
        match runner.report(point) {
            Ok(r) => {
                let ms = r.time_secs * 1e3 / r.workload.coverage;
                if csv {
                    println!(
                        "{shape},{},{m},{coverage},{},{ms:.4},{:.2}",
                        r.strategy.name(),
                        r.cycles,
                        r.percent_of_peak
                    );
                } else {
                    println!(
                        "  m={m:<7} {:12} {:7.1}% of peak  {ms:9.4} ms",
                        r.strategy.name(),
                        r.percent_of_peak
                    );
                }
            }
            Err(e) => println!("  m={m:<7} {:12} ERROR {e}", point.key.strategy.name()),
        }
    }
    if report {
        for point in &points {
            if let Ok(r) = runner.report(point) {
                println!();
                print!("{}", bgl_harness::render_run_report(&r));
            }
        }
    }
}

/// With `--perf`, one stderr line of runner-level host timing: points
/// executed vs served from cache, execute seconds, and queue wait
/// (summed across workers, so it can exceed wall-clock under `--jobs`).
fn print_perf_summary(runner: &Runner) {
    if !runner.perf_enabled() {
        return;
    }
    let t = runner.timing();
    eprintln!(
        "bglsim: perf: {} point(s) executed in {:.3}s host time \
         (queue wait {:.3}s), {} cache hit(s)",
        t.points_executed, t.execute_secs, t.queue_wait_secs, t.cache_hits,
    );
}

/// Write traced runs to `path`: RFC-4180 CSV for a `.csv` path (exactly
/// one point — CSV has no framing for several series), JSON (the full
/// reports, traces included) otherwise.
fn write_traces(path: &str, points: &[RunPoint], runner: &Runner) {
    let reports: Vec<AaReport> = points
        .iter()
        .filter_map(|p| runner.report(p).ok())
        .collect();
    let body = if path.ends_with(".csv") {
        match &reports[..] {
            [one] => one
                .trace
                .as_ref()
                .unwrap_or_else(|| fail("--trace-out: run recorded no trace"))
                .to_csv(),
            _ => fail(&format!(
                "--trace-out {path:?}: CSV export needs exactly one point \
                 (one strategy, one size); got {}",
                reports.len()
            )),
        }
    } else {
        serde_json::to_string_pretty(&reports).expect("serialize traces")
    };
    std::fs::write(path, body)
        .unwrap_or_else(|e| fail(&format!("--trace-out: cannot write {path:?}: {e}")));
    eprintln!("bglsim: wrote {} traced run(s) to {path}", reports.len());
}

fn cmd_fit(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("8x8x8");
    let part = parse_shape(shape);
    let params = MachineParams::bgl();
    let fit = fit_ptp_params(&part, &params);
    println!("ping-pong fit on {part} (Equation 1, T = α + m·β):");
    println!("  fitted α  : {:.2} cycles", fit.alpha_cycles);
    println!(
        "  fitted β  : {:.3} ns/B   (configured {:.3} ns/B)",
        fit.beta_ns_per_byte, params.beta_ns_per_byte
    );
    println!("  r²        : {:.6}", fit.r_squared);
    for (m, t) in &fit.samples {
        println!("    m={m:<7} {t} cycles");
    }
}

fn cmd_pattern(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("4x4x4");
    let part = parse_shape(shape);
    let params = MachineParams::bgl();
    let m: u64 = flags.get("m").map_or(480, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("--m needs numeric bytes, got {s:?}")))
    });
    let spec = flags
        .get("pattern")
        .map(String::as_str)
        .unwrap_or("transpose:8");
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    let numeric = |what: &str| -> u32 {
        arg.parse()
            .unwrap_or_else(|_| fail(&format!("{kind}:{what} needs a number, got {arg:?}")))
    };
    let pattern = match kind {
        "a2a" => Pattern::AllToAll,
        "shift" => Pattern::Shift {
            offset: numeric("offset"),
        },
        "transpose" => Pattern::Transpose {
            rows: numeric("rows"),
        },
        "random" => Pattern::RandomPairs {
            degree: numeric("degree"),
        },
        "plane" => Pattern::PlaneAllToAll {
            fixed: match arg {
                "x" => Dim::X,
                "y" => Dim::Y,
                "z" => Dim::Z,
                _ => fail(&format!("plane pattern needs plane:x|y|z, got {arg:?}")),
            },
        },
        other => fail(&format!(
            "unknown pattern {other:?} (a2a|shift|transpose|random|plane)"
        )),
    };
    let mut cfg = SimConfig::new(part);
    cfg.engine = parse_engine(flags);
    cfg.shards = parse_shards(flags);
    cfg.fault = parse_fault(flags, &part);
    match run_pattern(part, &pattern, m, &params, cfg, 7) {
        Ok(rep) => {
            println!("{pattern:?} on {part}, m={m} B/pair:");
            println!("  pairs            : {}", rep.pairs);
            println!("  completion       : {} cycles", rep.cycles);
            println!("  generalized peak : {:.0} cycles", rep.peak_cycles);
            println!("  percent of peak  : {:.1} %", rep.percent_of_peak);
        }
        Err(e) => fail(&format!("pattern run failed: {e}")),
    }
}

fn cmd_validate(flags: &HashMap<String, String>) {
    let tier = flags.get("tier").map_or(Tier::Quick, |s| {
        Tier::parse(s).unwrap_or_else(|| fail(&format!("--tier must be quick or full, got {s:?}")))
    });
    let mut runner = Runner::new(tier.scale())
        .with_engine(parse_engine(flags))
        .with_shards(parse_shards(flags))
        .with_perf(flags.contains_key("perf"))
        .with_progress(flags.contains_key("progress"));
    if let Some(n) = flags.get("jobs") {
        let jobs = n
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| fail(&format!("--jobs needs a positive integer, got {n:?}")));
        runner = runner.with_jobs(jobs);
    }
    let report = run_validation(&runner, tier, flags.contains_key("bless"));
    print_perf_summary(&runner);
    print!("{}", report.render());
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("--out: cannot write {path:?}: {e}")));
        eprintln!("bglsim: wrote check results to {path}");
    }
    if report.failures() > 0 {
        std::process::exit(1);
    }
}

/// `bglsim profile`: run one point with profiling on and render the
/// host-side report ([`bgl_harness::render_perf_report`]); `--json` emits
/// the full report, `--csv` the profile as `metric,value` rows.
fn cmd_profile(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("8x8x8");
    let part = parse_shape(shape);
    let strategy = strategy_by_name(flags.get("strategy").map(String::as_str).unwrap_or("ar"));
    if let Err(e) = strategy.check_dims(&part) {
        fail(&e.to_string());
    }
    let m: u64 = flags.get("m").map_or(240, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("--m needs numeric bytes, got {s:?}")))
    });
    let coverage: f64 = flags.get("coverage").map_or(1.0, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("--coverage needs a fraction, got {s:?}")))
    });
    if !(0.0..=1.0).contains(&coverage) {
        fail(&format!("--coverage must be within 0..=1, got {coverage}"));
    }
    if flags.contains_key("json") && flags.contains_key("csv") {
        fail("--json and --csv conflict; pass at most one");
    }
    let runner = Runner::new(Scale::Paper)
        .with_engine(parse_engine(flags))
        .with_shards(parse_shards(flags))
        .with_perf(true)
        .with_progress(flags.contains_key("progress"));
    let point = RunPoint::new(part, strategy, m, coverage);
    let report = runner
        .report(&point)
        .unwrap_or_else(|e| fail(&format!("profile run failed: {e}")));
    let body = if flags.contains_key("json") {
        serde_json::to_string_pretty(&report).expect("serialize")
    } else if flags.contains_key("csv") {
        report.perf.as_ref().expect("profiling was on").to_csv()
    } else {
        bgl_harness::render_perf_report(&report)
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &body)
                .unwrap_or_else(|e| fail(&format!("--out: cannot write {path:?}: {e}")));
            eprintln!("bglsim: wrote profile to {path}");
        }
        None => print!("{body}"),
    }
    print_perf_summary(&runner);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "sweep" => cmd_sweep(&parse_flags(
            rest,
            &[
                "shape",
                "strategies",
                "sizes",
                "coverage",
                "jobs",
                "pacer",
                "credit",
                "trace-interval",
                "trace-out",
                "engine",
                "shards",
                "fault",
            ],
            &["csv", "json", "report", "perf", "progress"],
        )),
        "fit" => cmd_fit(&parse_flags(rest, &["shape"], &[])),
        "pattern" => cmd_pattern(&parse_flags(
            rest,
            &["shape", "pattern", "m", "engine", "shards", "fault"],
            &[],
        )),
        "validate" => cmd_validate(&parse_flags(
            rest,
            &["tier", "jobs", "out", "engine", "shards"],
            &["bless", "perf", "progress"],
        )),
        "profile" => cmd_profile(&parse_flags(
            rest,
            &[
                "shape", "strategy", "m", "coverage", "engine", "shards", "out",
            ],
            &["json", "csv", "progress"],
        )),
        _ => {
            eprintln!("usage: bglsim sweep|fit|pattern|validate|profile [--flags]");
            eprintln!("  sweep   --shape 8x8x8 --strategies ar,dr,tps,vmesh,xyz --sizes 64,912 [--coverage 0.25] [--jobs N] [--csv|--json]");
            eprintln!("          [--pacer none|rate:F|credit:W,E] [--credit W,E]");
            eprintln!(
                "          [--trace-interval CYCLES] [--trace-out FILE.json|FILE.csv] [--report]"
            );
            eprintln!("          [--engine full-scan|active-set|event] [--shards N] [--perf] [--progress]");
            eprintln!("          [--fault link:X,Y,Z,DIR[:@FAIL[-RECOVER]]] [--fault node:RANK[:@FAIL[-RECOVER]]]");
            eprintln!("  fit     --shape 8x8x8");
            eprintln!("  pattern --shape 4x4x4 --pattern a2a|shift:3|transpose:8|random:8|plane:z --m 480 [--engine MODE] [--shards N] [--fault SPEC]");
            eprintln!("  validate [--tier quick|full] [--jobs N] [--bless] [--out FILE.json] [--engine MODE] [--shards N] [--perf] [--progress]");
            eprintln!("  profile --shape 8x8x8 --strategy ar --m 240 [--coverage F] [--engine MODE] [--shards N] [--json|--csv] [--out FILE]");
            std::process::exit(2);
        }
    }
}
