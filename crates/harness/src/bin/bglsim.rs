//! `bglsim` — sweep driver for exploratory use.
//!
//! ```text
//! bglsim sweep --shape 8x8x8 --strategies ar,dr,tps --sizes 64,240,912 [--coverage 0.25] [--jobs N] [--csv|--json]
//! bglsim fit   --shape 8x8x8
//! bglsim pattern --shape 4x4x4 --pattern transpose:8|shift:3|random:8|plane:z --m 480
//! ```
//!
//! Sweep points run across `--jobs` worker threads (default: all
//! cores); results are identical for any thread count. `--json` emits
//! the full [`AaReport`](bgl_core::AaReport) per point.

use bgl_core::*;
use bgl_harness::runner::{RunPoint, Runner, Scale};
use bgl_model::MachineParams;
use bgl_sim::SimConfig;
use bgl_torus::{Dim, Partition, VmeshLayout};
use std::collections::HashMap;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let val = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match val {
                Some(v) => {
                    map.insert(key.to_string(), v.clone());
                    i += 2;
                }
                None => {
                    map.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    map
}

fn strategy_by_name(name: &str) -> StrategyKind {
    match name.trim().to_ascii_lowercase().as_str() {
        "ar" => StrategyKind::AdaptiveRandomized,
        "dr" => StrategyKind::DeterministicRouted,
        "mpi" => StrategyKind::MpiBaseline,
        "throttle" | "thr" => StrategyKind::ThrottledAdaptive { factor: 1.0 },
        "tps" => StrategyKind::TwoPhaseSchedule { linear: None, credit: None },
        "vmesh" | "vm" => StrategyKind::VirtualMesh { layout: VmeshLayout::Auto },
        "xyz" => StrategyKind::XyzRouting,
        "auto" => StrategyKind::Auto,
        other => panic!("unknown strategy {other:?}"),
    }
}

fn cmd_sweep(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("8x8x8");
    let part: Partition = shape.parse().expect("valid shape");
    let strategies: Vec<StrategyKind> = flags
        .get("strategies")
        .map(String::as_str)
        .unwrap_or("ar,tps")
        .split(',')
        .map(strategy_by_name)
        .collect();
    let sizes: Vec<u64> = flags
        .get("sizes")
        .map(String::as_str)
        .unwrap_or("64,240,912")
        .split(',')
        .map(|s| s.trim().parse().expect("numeric size"))
        .collect();
    let coverage: f64 = flags.get("coverage").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let csv = flags.contains_key("csv");
    let json = flags.contains_key("json");
    let mut runner = Runner::new(Scale::Paper);
    if let Some(n) = flags.get("jobs") {
        runner = runner.with_jobs(n.parse().expect("--jobs needs a positive integer"));
    }
    let points: Vec<RunPoint> = sizes
        .iter()
        .flat_map(|&m| {
            strategies.iter().map(move |s| RunPoint::new(part, s.clone(), m, coverage))
        })
        .collect();
    runner.run_points(&points);
    if json {
        let reports: Vec<AaReport> =
            points.iter().filter_map(|p| runner.report(p).ok()).collect();
        println!("{}", serde_json::to_string_pretty(&reports).expect("serialize"));
        return;
    }
    if csv {
        println!("shape,strategy,m_bytes,coverage,cycles,ms,percent_of_peak");
    } else {
        println!("sweep on {part} (coverage {coverage}):");
    }
    for point in &points {
        let m = point.key.m;
        match runner.report(point) {
            Ok(r) => {
                let ms = r.time_secs * 1e3 / r.workload.coverage;
                if csv {
                    println!(
                        "{shape},{},{m},{coverage},{},{ms:.4},{:.2}",
                        r.strategy.name(),
                        r.cycles,
                        r.percent_of_peak
                    );
                } else {
                    println!(
                        "  m={m:<7} {:12} {:7.1}% of peak  {ms:9.4} ms",
                        r.strategy.name(),
                        r.percent_of_peak
                    );
                }
            }
            Err(e) => println!("  m={m:<7} {:12} ERROR {e}", point.key.strategy.name()),
        }
    }
}

fn cmd_fit(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("8x8x8");
    let part: Partition = shape.parse().expect("valid shape");
    let params = MachineParams::bgl();
    let fit = fit_ptp_params(&part, &params);
    println!("ping-pong fit on {part} (Equation 1, T = α + m·β):");
    println!("  fitted α  : {:.2} cycles", fit.alpha_cycles);
    println!(
        "  fitted β  : {:.3} ns/B   (configured {:.3} ns/B)",
        fit.beta_ns_per_byte, params.beta_ns_per_byte
    );
    println!("  r²        : {:.6}", fit.r_squared);
    for (m, t) in &fit.samples {
        println!("    m={m:<7} {t} cycles");
    }
}

fn cmd_pattern(flags: &HashMap<String, String>) {
    let shape = flags.get("shape").map(String::as_str).unwrap_or("4x4x4");
    let part: Partition = shape.parse().expect("valid shape");
    let params = MachineParams::bgl();
    let m: u64 = flags.get("m").and_then(|s| s.parse().ok()).unwrap_or(480);
    let spec = flags.get("pattern").map(String::as_str).unwrap_or("transpose:8");
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    let pattern = match kind {
        "a2a" => Pattern::AllToAll,
        "shift" => Pattern::Shift { offset: arg.parse().expect("shift offset") },
        "transpose" => Pattern::Transpose { rows: arg.parse().expect("transpose rows") },
        "random" => Pattern::RandomPairs { degree: arg.parse().expect("random degree") },
        "plane" => Pattern::PlaneAllToAll {
            fixed: match arg {
                "x" => Dim::X,
                "y" => Dim::Y,
                "z" => Dim::Z,
                _ => panic!("plane:x|y|z"),
            },
        },
        other => panic!("unknown pattern {other:?}"),
    };
    let rep = run_pattern(part, &pattern, m, &params, SimConfig::new(part), 7)
        .expect("pattern completes");
    println!("{pattern:?} on {part}, m={m} B/pair:");
    println!("  pairs            : {}", rep.pairs);
    println!("  completion       : {} cycles", rep.cycles);
    println!("  generalized peak : {:.0} cycles", rep.peak_cycles);
    println!("  percent of peak  : {:.1} %", rep.percent_of_peak);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    match cmd {
        "sweep" => cmd_sweep(&flags),
        "fit" => cmd_fit(&flags),
        "pattern" => cmd_pattern(&flags),
        _ => {
            eprintln!("usage: bglsim sweep|fit|pattern [--flags]");
            eprintln!("  sweep   --shape 8x8x8 --strategies ar,dr,tps,vmesh,xyz --sizes 64,912 [--coverage 0.25] [--jobs N] [--csv|--json]");
            eprintln!("  fit     --shape 8x8x8");
            eprintln!("  pattern --shape 4x4x4 --pattern a2a|shift:3|transpose:8|random:8|plane:z --m 480");
            std::process::exit(2);
        }
    }
}
