//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list
//! repro <id>... [--scale quick|paper] [--jobs N] [--shards N] [--json] [--out DIR]
//!               [--engine full-scan|active-set|event] [--perf] [--progress]
//! repro all     [--scale quick|paper] [--jobs N] [--shards N] [--json] [--out DIR]
//!               [--engine full-scan|active-set|event] [--perf] [--progress]
//! ```
//!
//! All experiments' simulation points are executed as one deduplicated
//! batch across `--jobs` worker threads (default: all cores); results
//! are identical for any thread count. `--json` replaces the text
//! tables on stdout with a machine-readable JSON array. With `--out`,
//! each report is written as `<id>.txt` and `<id>.csv` plus a combined
//! `results.json`. `--engine` picks the simulator scheduling core
//! ([`EngineMode`](bgl_sim::EngineMode)); every mode produces identical
//! results, so the flag only changes wall-clock. `--shards` splits each
//! individual simulation across N threads (orthogonal to `--jobs`, which
//! parallelizes *across* simulations); results are byte-identical for
//! any shard count. `--perf` collects host-side profiles (results stay
//! byte-identical) and prints a runner timing summary to stderr;
//! `--progress` adds a rate-limited stderr heartbeat to each run.

use bgl_harness::{experiments, run_suite, Runner, Scale};
use bgl_sim::EngineMode;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        eprintln!(
            "usage: repro <id>...|all|list [--scale quick|paper] [--jobs N] [--shards N] [--json] \
             [--out DIR] [--engine full-scan|active-set|event] [--perf] [--progress]"
        );
        eprintln!("ids: {}", experiments::ALL_IDS.join(", "));
        std::process::exit(2);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Paper;
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut engine = EngineMode::default();
    let mut shards = std::num::NonZeroUsize::MIN;
    let mut perf = false;
    let mut progress = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let v = it.next().unwrap_or_default();
                engine = v.parse().unwrap_or_else(|e: String| fail(&e));
            }
            "--shards" => {
                let v = it.next().unwrap_or_default();
                shards = v
                    .parse::<usize>()
                    .ok()
                    .and_then(std::num::NonZeroUsize::new)
                    .unwrap_or_else(|| {
                        fail(&format!("--shards needs a positive integer, got {v:?}"))
                    });
            }
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match v.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => fail(&format!("unknown scale {other:?} (quick|paper)")),
                };
            }
            "--jobs" => {
                let v = it.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => fail(&format!("--jobs needs a positive integer, got {v:?}")),
                }
            }
            "--json" => json = true,
            "--perf" => perf = true,
            "--progress" => progress = true,
            "--out" => match it.next() {
                Some(dir) if !dir.is_empty() && !dir.starts_with("--") => {
                    out = Some(PathBuf::from(dir));
                }
                _ => fail("--out needs a directory"),
            },
            "list" => {
                for id in experiments::ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    let mut runner = Runner::new(scale)
        .with_engine(engine)
        .with_shards(shards)
        .with_perf(perf)
        .with_progress(progress);
    if let Some(n) = jobs {
        runner = runner.with_jobs(n);
    }
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let t0 = std::time::Instant::now();
    let reports = run_suite(&runner, &id_refs);
    if perf {
        let t = runner.timing();
        eprintln!(
            "repro: perf: {} point(s) executed in {:.3}s host time \
             (queue wait {:.3}s), {} cache hit(s)",
            t.points_executed, t.execute_secs, t.queue_wait_secs, t.cache_hits,
        );
    }
    eprintln!(
        "[{} experiments, {} simulation runs, {} jobs, {:.1?}]",
        reports.len(),
        runner.cached_runs(),
        runner.jobs(),
        t0.elapsed()
    );
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("serialize")
        );
    } else {
        for rep in &reports {
            println!("{}\n", rep.to_text());
        }
    }
    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            fail(&format!("cannot create output dir {}: {e}", dir.display()));
        }
        let write = |name: String, body: String| {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                fail(&format!("cannot write {}: {e}", path.display()));
            }
        };
        for rep in &reports {
            write(format!("{}.txt", rep.id), rep.to_text());
            write(format!("{}.csv", rep.id), rep.to_csv());
        }
        let json = serde_json::to_string_pretty(&reports).expect("serialize");
        write("results.json".to_string(), json);
        eprintln!("wrote {} reports to {}", reports.len(), dir.display());
    }
}
