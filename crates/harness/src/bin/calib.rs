//! Scratch calibration binary kept as a handy one-off runner for a single
//! (shape, strategy, m, coverage) point.
//!
//! ```text
//! calib <shape> <AR|DR|TPS|VM|THR|MPI> <m_bytes> <coverage>
//! ```

use bgl_core::*;
use bgl_model::MachineParams;
use bgl_sim::SimConfig;
use bgl_torus::{Partition, ALL_DIMS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shape = args.first().cloned().unwrap_or_else(|| "8x8x8".into());
    let strat = args.get(1).cloned().unwrap_or_else(|| "AR".into());
    let m: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(912);
    let cov: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let part: Partition = shape.parse().expect("valid shape");
    let w = if cov >= 1.0 { AaWorkload::full(m) } else { AaWorkload::sampled(m, cov) };
    let strategy = match strat.as_str() {
        "AR" => StrategyKind::AdaptiveRandomized,
        "DR" => StrategyKind::DeterministicRouted,
        "TPS" => StrategyKind::TwoPhaseSchedule { linear: None, credit: None },
        "VM" => StrategyKind::VirtualMesh { layout: bgl_torus::VmeshLayout::Auto },
        "THR" => StrategyKind::ThrottledAdaptive { factor: 1.0 },
        "MPI" => StrategyKind::MpiBaseline,
        other => panic!("unknown strategy {other}"),
    };
    let t0 = std::time::Instant::now();
    match run_aa(part, &w, &strategy, &MachineParams::bgl(), SimConfig::new(part)) {
        Ok(r) => {
            let utils: Vec<String> = ALL_DIMS
                .iter()
                .map(|&d| format!("{}={:.2}", d, r.stats.dim_utilization(&part, d)))
                .collect();
            println!(
                "{shape} {} m={m} cov={cov}: {:.1}% of peak, {} cycles, {} [{:.1?}]",
                r.strategy.name(),
                r.percent_of_peak,
                r.cycles,
                utils.join(" "),
                t0.elapsed()
            );
        }
        Err(e) => println!("{shape} {strat}: ERROR {e}"),
    }
}
