//! Scratch calibration binary kept as a handy one-off runner for a
//! single (shape, strategies, m, coverage) point set.
//!
//! ```text
//! calib <shape> <AR|DR|TPS|VM|THR|MPI>[,<...>] <m_bytes> <coverage> [--jobs N] [--json]
//! ```
//!
//! Several strategies (comma-separated) run concurrently across
//! `--jobs` worker threads; results are identical for any thread
//! count. `--json` emits the full [`AaReport`](bgl_core::AaReport)
//! per strategy.

use bgl_core::*;
use bgl_harness::runner::{RunPoint, Runner, Scale};
use bgl_torus::{Partition, ALL_DIMS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let shape = positional.first().map(|s| s.as_str()).unwrap_or("8x8x8").to_string();
    let strats = positional.get(1).map(|s| s.as_str()).unwrap_or("AR").to_string();
    let m: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(912);
    let cov: f64 = positional.get(3).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let json = args.iter().any(|a| a == "--json");
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--jobs needs a positive integer"));
    let part: Partition = shape.parse().expect("valid shape");
    let strategies: Vec<StrategyKind> = strats
        .split(',')
        .map(|s| match s.trim() {
            "AR" => StrategyKind::AdaptiveRandomized,
            "DR" => StrategyKind::DeterministicRouted,
            "TPS" => StrategyKind::TwoPhaseSchedule { linear: None, credit: None },
            "VM" => StrategyKind::VirtualMesh { layout: bgl_torus::VmeshLayout::Auto },
            "THR" => StrategyKind::ThrottledAdaptive { factor: 1.0 },
            "MPI" => StrategyKind::MpiBaseline,
            other => panic!("unknown strategy {other}"),
        })
        .collect();
    let mut runner = Runner::new(Scale::Paper);
    if let Some(n) = jobs {
        runner = runner.with_jobs(n);
    }
    let points: Vec<RunPoint> =
        strategies.iter().map(|s| RunPoint::new(part, s.clone(), m, cov)).collect();
    let t0 = std::time::Instant::now();
    runner.run_points(&points);
    let elapsed = t0.elapsed();
    if json {
        let reports: Vec<AaReport> =
            points.iter().filter_map(|p| runner.report(p).ok()).collect();
        println!("{}", serde_json::to_string_pretty(&reports).expect("serialize"));
        return;
    }
    for point in &points {
        match runner.report(point) {
            Ok(r) => {
                let utils: Vec<String> = ALL_DIMS
                    .iter()
                    .map(|&d| format!("{}={:.2}", d, r.stats.dim_utilization(&part, d)))
                    .collect();
                println!(
                    "{shape} {} m={m} cov={cov}: {:.1}% of peak, {} cycles, {} [{:.1?}]",
                    r.strategy.name(),
                    r.percent_of_peak,
                    r.cycles,
                    utils.join(" "),
                    elapsed
                );
            }
            Err(e) => println!("{shape} {}: ERROR {e}", point.key.strategy.name()),
        }
    }
}
