//! Scratch calibration binary kept as a handy one-off runner for a
//! single (shape, strategies, m, coverage) point set.
//!
//! ```text
//! calib <shape> <AR|DR|TPS|VM|THR|MPI>[,<...>] <m_bytes> <coverage> [--jobs N] [--shards N]
//!       [--json] [--engine full-scan|active-set|event] [--perf] [--progress]
//! ```
//!
//! Several strategies (comma-separated) run concurrently across
//! `--jobs` worker threads; results are identical for any thread
//! count. `--shards` splits each individual simulation across N
//! threads (orthogonal to `--jobs`) without changing any output.
//! `--json` emits the full [`AaReport`](bgl_core::AaReport)
//! per strategy. `--perf` collects host-side profiles (results stay
//! byte-identical; the profile rides `--json` output) and prints a
//! runner timing summary to stderr; `--progress` adds a rate-limited
//! stderr heartbeat to each run.
//!
//! Malformed input never panics: every parse failure prints a one-line
//! error to stderr and exits with status 2. Unknown flags are rejected.

use bgl_core::*;
use bgl_harness::runner::{RunPoint, Runner, Scale};
use bgl_sim::EngineMode;
use bgl_torus::Partition;

fn fail(msg: &str) -> ! {
    eprintln!("calib: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut json = false;
    let mut jobs: Option<usize> = None;
    let mut engine = EngineMode::default();
    let mut shards = std::num::NonZeroUsize::MIN;
    let mut perf = false;
    let mut progress = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--perf" => perf = true,
            "--progress" => progress = true,
            "--engine" => {
                let v = it.next().unwrap_or_default();
                engine = v.parse().unwrap_or_else(|e: String| fail(&e));
            }
            "--shards" => {
                let v = it.next().unwrap_or_default();
                shards = v
                    .parse::<usize>()
                    .ok()
                    .and_then(std::num::NonZeroUsize::new)
                    .unwrap_or_else(|| {
                        fail(&format!("--shards needs a positive integer, got {v:?}"))
                    });
            }
            "--jobs" => {
                let v = it.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => fail(&format!("--jobs needs a positive integer, got {v:?}")),
                }
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() > 4 {
        fail(&format!("unexpected argument {:?}", positional[4]));
    }
    let shape = positional.first().map(String::as_str).unwrap_or("8x8x8");
    let strats = positional.get(1).map(String::as_str).unwrap_or("AR");
    let m: u64 = positional.get(2).map_or(912, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("m_bytes needs a number, got {s:?}")))
    });
    let cov: f64 = positional.get(3).map_or(1.0, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("coverage needs a fraction, got {s:?}")))
    });
    if !(0.0..=1.0).contains(&cov) {
        fail(&format!("coverage must be within 0..=1, got {cov}"));
    }
    let part: Partition = shape
        .parse()
        .unwrap_or_else(|e| fail(&format!("invalid shape {shape:?}: {e}")));
    let strategies: Vec<StrategyKind> = strats
        .split(',')
        .map(|s| match s.trim() {
            "AR" => StrategyKind::ar(),
            "DR" => StrategyKind::dr(),
            "TPS" => StrategyKind::tps(),
            "VM" => StrategyKind::vmesh_with(bgl_torus::VmeshLayout::Auto),
            "THR" => StrategyKind::throttled(1.0),
            "MPI" => StrategyKind::mpi(),
            other => fail(&format!(
                "unknown strategy {other:?} (AR|DR|TPS|VM|THR|MPI)"
            )),
        })
        .collect();
    for s in &strategies {
        if let Err(e) = s.check_dims(&part) {
            fail(&e.to_string());
        }
    }
    let mut runner = Runner::new(Scale::Paper)
        .with_engine(engine)
        .with_shards(shards)
        .with_perf(perf)
        .with_progress(progress);
    if let Some(n) = jobs {
        runner = runner.with_jobs(n);
    }
    let points: Vec<RunPoint> = strategies
        .iter()
        .map(|s| RunPoint::new(part, s.clone(), m, cov))
        .collect();
    let t0 = std::time::Instant::now();
    runner.run_points(&points);
    let elapsed = t0.elapsed();
    if perf {
        let t = runner.timing();
        eprintln!(
            "calib: perf: {} point(s) executed in {:.3}s host time \
             (queue wait {:.3}s), {} cache hit(s)",
            t.points_executed, t.execute_secs, t.queue_wait_secs, t.cache_hits,
        );
    }
    if json {
        let reports: Vec<AaReport> = points
            .iter()
            .filter_map(|p| runner.report(p).ok())
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("serialize")
        );
        return;
    }
    for point in &points {
        match runner.report(point) {
            Ok(r) => {
                let utils: Vec<String> = part
                    .dims()
                    .map(|d| format!("{}={:.2}", d, r.stats.dim_utilization(&part, d)))
                    .collect();
                println!(
                    "{shape} {} m={m} cov={cov}: {:.1}% of peak, {} cycles, {} [{:.1?}]",
                    r.strategy.name(),
                    r.percent_of_peak,
                    r.cycles,
                    utils.join(" "),
                    elapsed
                );
            }
            Err(e) => println!("{shape} {}: ERROR {e}", point.key.strategy.name()),
        }
    }
}
