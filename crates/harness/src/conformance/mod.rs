//! Paper-conformance suite: DESIGN.md §7's validation targets as
//! machine-checked assertions over a deterministic fixture grid.
//!
//! Every target family from §7 — AR efficiency bands, DR's
//! dimension-order asymmetry, throttling's small delta, TPS's asymmetric
//! win and midplane caveat plus the Table-4 latency-crossover direction,
//! and the VMesh short-message crossover — is encoded as a set of
//! [`CheckResult`]s: a structured PASS/FAIL with the measured shape next
//! to the expected one, never a bare boolean. A sixth family re-runs a
//! slice of the grid under the reference full-scan engine with the
//! invariant oracle enabled and asserts `NetStats` equality, and a
//! golden-snapshot family ([`golden`]) pins fingerprints of a small
//! fixed grid against a committed file (refresh with `--bless`).
//!
//! Two tiers share the same family code with tier-specific shapes and
//! thresholds:
//!
//! * [`Tier::Quick`] — the CI tier: small partitions, seconds-scale,
//!   thresholds calibrated against the committed quick-scale results in
//!   EXPERIMENTS.md. Quick scale inverts a few paper orderings (sampled
//!   runs underestimate asymptotic efficiency), so quick checks assert
//!   the orderings that are stable at that scale.
//! * [`Tier::Full`] — paper-scale shapes (16×8×8 DR orientation sweep,
//!   the 8×32×16 VMesh>TPS>AR ordering), minutes-scale; run on a
//!   schedule, not per PR.
//!
//! Driven by `bglsim validate [--tier quick|full] [--jobs N] [--bless]`,
//! which renders the report and exits nonzero on any FAIL.
//!
//! Every simulation point in the fixture grid runs with
//! [`SimConfig::check_invariants`](bgl_sim::SimConfig::check_invariants)
//! enabled, so a conformance pass is also an end-to-end certification
//! that the simulator conserves packets, bytes, hops and credits on
//! every configuration the suite touches.

pub mod families;
pub mod golden;

use crate::runner::{Runner, Scale};

/// Which slice of the fixture grid to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// CI tier: small shapes, seconds, quick-scale thresholds.
    Quick,
    /// Paper-scale shapes and thresholds; minutes, scheduled runs.
    Full,
}

impl Tier {
    /// Parse a `--tier` argument.
    pub fn parse(s: &str) -> Option<Tier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "quick" => Some(Tier::Quick),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// The runner scale this tier budgets at.
    pub fn scale(self) -> Scale {
        match self {
            Tier::Quick => Scale::Quick,
            Tier::Full => Scale::Paper,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }
}

/// One machine-checked conformance assertion: which §7 family it belongs
/// to, what it asserts, and the measured-vs-expected shape rendered for
/// the report (and for diagnosing a FAIL without re-running anything).
#[derive(Debug, Clone, serde::Serialize)]
pub struct CheckResult {
    /// Family id, e.g. `"F2 dr-orientation"`.
    pub family: &'static str,
    /// What the check asserts, in words.
    pub name: String,
    /// Did the measured shape match the expected one?
    pub passed: bool,
    /// The measured values, formatted.
    pub measured: String,
    /// The expected shape, formatted.
    pub expected: String,
}

impl CheckResult {
    /// Build a result (small constructor so family code stays terse).
    pub fn new(
        family: &'static str,
        name: impl Into<String>,
        passed: bool,
        measured: impl Into<String>,
        expected: impl Into<String>,
    ) -> CheckResult {
        CheckResult {
            family,
            name: name.into(),
            passed,
            measured: measured.into(),
            expected: expected.into(),
        }
    }
}

/// The full validation outcome for one tier.
#[derive(Debug)]
pub struct ValidationReport {
    /// Tier the suite ran at.
    pub tier: Tier,
    /// Every check, in family order.
    pub results: Vec<CheckResult>,
}

impl ValidationReport {
    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.passed).count()
    }

    /// The machine-readable form: tier, per-check results, and the
    /// summary counts. `bglsim validate --out FILE` writes this so CI can
    /// archive the full check table alongside the rendered log.
    pub fn to_json(&self) -> String {
        let doc = serde_json::Value::Object(vec![
            (
                "tier".to_string(),
                serde_json::Value::Str(self.tier.name().to_string()),
            ),
            (
                "checks".to_string(),
                serde_json::Value::U64(self.results.len() as u64),
            ),
            (
                "failures".to_string(),
                serde_json::Value::U64(self.failures() as u64),
            ),
            (
                "results".to_string(),
                serde::Serialize::to_value(&self.results),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("serialize validation report")
    }

    /// Render the aligned PASS/FAIL table plus a summary line.
    pub fn render(&self) -> String {
        let headers = ["result", "family", "check", "measured", "expected"];
        let rows: Vec<[String; 5]> = self
            .results
            .iter()
            .map(|r| {
                [
                    if r.passed { "PASS" } else { "FAIL" }.to_string(),
                    r.family.to_string(),
                    r.name.clone(),
                    r.measured.clone(),
                    r.expected.clone(),
                ]
            })
            .collect();
        let mut width = headers.map(str::len);
        for row in &rows {
            for (w, cell) in width.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!(
            "== paper conformance — tier {}, DESIGN.md §7 ==\n",
            self.tier.name()
        );
        let fmt_row = |cells: [&str; 5]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}", w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(headers));
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row([&row[0], &row[1], &row[2], &row[3], &row[4]]));
            out.push('\n');
        }
        let failed = self.failures();
        out.push_str(&format!(
            "{} checks: {} passed, {} failed\n",
            rows.len(),
            rows.len() - failed,
            failed
        ));
        out
    }
}

/// Run the whole suite at `tier` on `runner`: gather every family's
/// simulation points plus the golden grid, execute them as one
/// deduplicated parallel batch, then evaluate the families. With
/// `bless`, the golden fingerprint file is rewritten from the measured
/// runs instead of compared.
pub fn run_validation(runner: &Runner, tier: Tier, bless: bool) -> ValidationReport {
    let mut points = families::points(runner, tier);
    points.extend(golden::points());
    runner.run_points(&points);
    let mut results = families::evaluate(runner, tier);
    results.extend(golden::evaluate(runner, bless));
    ValidationReport { tier, results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parses_and_maps_to_scale() {
        assert_eq!(Tier::parse("quick"), Some(Tier::Quick));
        assert_eq!(Tier::parse(" Full "), Some(Tier::Full));
        assert_eq!(Tier::parse("paper"), None);
        assert_eq!(Tier::Quick.scale(), Scale::Quick);
        assert_eq!(Tier::Full.scale(), Scale::Paper);
    }

    #[test]
    fn report_renders_and_counts_failures() {
        let rep = ValidationReport {
            tier: Tier::Quick,
            results: vec![
                CheckResult::new("F1 x", "a holds", true, "1.0", "≥ 0.5"),
                CheckResult::new("F2 y", "b holds", false, "0.2", "≥ 0.5"),
            ],
        };
        assert_eq!(rep.failures(), 1);
        let text = rep.render();
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("2 checks: 1 passed, 1 failed"), "{text}");
        assert!(text.starts_with("== paper conformance — tier quick"));
    }
}
