//! The five DESIGN.md §7 validation-target families, plus the
//! engine-mode/oracle equivalence family, the shard-count equivalence
//! family, and the fault-injection family, as tier-parameterized checks.
//!
//! All thresholds assert *shape* — orderings, bands, crossover
//! directions — not absolute paper numbers: the quick tier is calibrated
//! against the committed quick-scale results in EXPERIMENTS.md, the full
//! tier against the paper-scale runs and spot checks recorded there.
//! Floors carry a few points of slack below the committed measurements so
//! the suite flags real regressions, not formatting noise; orderings are
//! asserted exactly (the simulator is deterministic).
//!
//! Every point runs with the simulator's invariant oracle enabled
//! (`SimConfig::check_invariants`), so each PASS also certifies packet,
//! byte, hop and credit conservation on that configuration.

use super::{CheckResult, Tier};
use crate::runner::{RunPoint, Runner};
use bgl_core::{Pacer, StrategyKind};
use bgl_sim::{EngineMode, FaultPlan, LinkFault, SimError};
use bgl_torus::{Dim, Direction, Partition, Sign};

/// Variant label for the invariant-checked runs the grid is made of.
pub const INVARIANTS: &str = "invariants";
/// Variant label for the reference-engine twin of a grid point.
pub const INVARIANTS_FULL_SCAN: &str = "invariants-fullscan";
/// Variant label for the event-driven-engine twin of a grid point.
pub const INVARIANTS_EVENT: &str = "invariants-event";
/// Variant label for the slab-sharded twin of a grid point
/// (`SimConfig::shards` = 4, oracle still on — the oracle additionally
/// checks per-cell credit conservation against the sharded structure).
pub const INVARIANTS_SHARDED: &str = "invariants-shards4";

fn ar() -> StrategyKind {
    StrategyKind::ar()
}
fn dr() -> StrategyKind {
    StrategyKind::dr()
}
fn thr() -> StrategyKind {
    StrategyKind::throttled(1.0)
}
fn tps() -> StrategyKind {
    StrategyKind::tps()
}
fn vmesh() -> StrategyKind {
    StrategyKind::vmesh()
}

/// VMesh with the stop-and-wait credit window that keeps a full-coverage
/// exchange live on the paper's 4096-node 8x32x16: each phase-1 row
/// message there is two packets, so any window ≥ 2 never closes and the
/// unpaced burst of 127 concurrent row messages per node wedges the
/// dynamic-VC FIFOs (~390 k frozen packets). A window of one packet per
/// intermediate serializes each row hand-off behind its ack and the
/// exchange completes — still ~3× faster than TPS at 8 B.
fn vmesh_paced() -> StrategyKind {
    StrategyKind::vmesh().with_pacer(Pacer::credit(1, 1))
}

/// A budgeted point with the invariant oracle enabled.
pub fn checked(runner: &Runner, shape: &str, strategy: &StrategyKind, m: u64) -> RunPoint {
    runner
        .point(shape, strategy, m)
        .variant(INVARIANTS, |c| c.check_invariants = true)
}

/// An invariant-checked point pinned at full coverage. VMesh combining
/// ignores destination sampling (a combined message carries data for the
/// receiver's whole column), so its runs are full-exchange regardless of
/// the budgeted coverage — pinning 1.0 makes the recorded coverage, and
/// therefore the extrapolated latency, honest.
pub fn checked_full_cov(shape: &str, strategy: &StrategyKind, m: u64) -> RunPoint {
    let part: Partition = shape.parse().expect("valid shape");
    RunPoint::new(part, strategy.clone(), m, 1.0).variant(INVARIANTS, |c| c.check_invariants = true)
}

/// The same point under the reference full-scan engine (oracle still on).
pub fn checked_full_scan(
    runner: &Runner,
    shape: &str,
    strategy: &StrategyKind,
    m: u64,
) -> RunPoint {
    runner
        .point(shape, strategy, m)
        .variant(INVARIANTS_FULL_SCAN, |c| {
            c.check_invariants = true;
            c.engine = EngineMode::FullScan;
        })
}

/// The same point under the event-driven engine (oracle still on).
pub fn checked_event(runner: &Runner, shape: &str, strategy: &StrategyKind, m: u64) -> RunPoint {
    runner
        .point(shape, strategy, m)
        .variant(INVARIANTS_EVENT, |c| {
            c.check_invariants = true;
            c.engine = EngineMode::EventDriven;
        })
}

/// The same point with the torus split into four rank slabs
/// (`SimConfig::shards`), oracle still on. The oracle forces the sharded
/// structure onto one thread, so this certifies the staged-arrival drain
/// order, the packet-id fix-up, and the deferred credit releases — not
/// thread scheduling.
pub fn checked_sharded(runner: &Runner, shape: &str, strategy: &StrategyKind, m: u64) -> RunPoint {
    runner
        .point(shape, strategy, m)
        .variant(INVARIANTS_SHARDED, |c| {
            c.check_invariants = true;
            c.shards = std::num::NonZeroUsize::new(4).expect("nonzero");
        })
}

/// The F8 fault grid: one small shape at full coverage, identical at
/// both tiers (like the golden grid — fault semantics do not scale).
const F8_SHAPE: &str = "4x4x4";
/// Message size of every F8 point.
const F8_M: u64 = 240;

/// The statically dead directed link every F8 degraded-mode point
/// shares: dead from cycle 0, never recovering.
fn f8_dead_link() -> FaultPlan {
    FaultPlan {
        links: vec![LinkFault::dead(
            0,
            Direction {
                dim: Dim::X,
                sign: Sign::Plus,
            },
        )],
        nodes: vec![],
    }
}

/// The same link scheduled dead only at a cycle no run reaches: the
/// degraded-mode arbitration code runs, the result must not move.
fn f8_noop_plan() -> FaultPlan {
    FaultPlan {
        links: f8_dead_link()
            .links
            .into_iter()
            .map(|l| LinkFault {
                fail_at: 1 << 40,
                recover_at: None,
                ..l
            })
            .collect(),
        nodes: vec![],
    }
}

/// Mid-run outages inside the ~620-cycle healthy F8 run: one link fails
/// and recovers while traffic is heavy, a second fails and stays dead.
fn f8_midrun_plan() -> FaultPlan {
    FaultPlan {
        links: vec![
            LinkFault {
                node: 0,
                dir: Direction {
                    dim: Dim::X,
                    sign: Sign::Plus,
                },
                fail_at: 200,
                recover_at: Some(400),
            },
            LinkFault {
                node: 21,
                dir: Direction {
                    dim: Dim::Y,
                    sign: Sign::Minus,
                },
                fail_at: 250,
                recover_at: None,
            },
        ],
        nodes: vec![],
    }
}

/// Engine-mode and shard twins of the dead-link AR point (oracle on in
/// every one). The baseline runs the default active-set engine.
fn f8_twins() -> Vec<(&'static str, RunPoint)> {
    let part: Partition = F8_SHAPE.parse().expect("valid shape");
    vec![
        (
            "full-scan",
            RunPoint::new(part, ar(), F8_M, 1.0)
                .variant(INVARIANTS_FULL_SCAN, |c| {
                    c.check_invariants = true;
                    c.engine = EngineMode::FullScan;
                })
                .with_fault(f8_dead_link()),
        ),
        (
            "event",
            RunPoint::new(part, ar(), F8_M, 1.0)
                .variant(INVARIANTS_EVENT, |c| {
                    c.check_invariants = true;
                    c.engine = EngineMode::EventDriven;
                })
                .with_fault(f8_dead_link()),
        ),
        (
            "shards4",
            RunPoint::new(part, ar(), F8_M, 1.0)
                .variant(INVARIANTS_SHARDED, |c| {
                    c.check_invariants = true;
                    c.shards = std::num::NonZeroUsize::new(4).expect("nonzero");
                })
                .with_fault(f8_dead_link()),
        ),
    ]
}

/// The F9 n-dimensional grid: AR and DR on a 2-D torus and a 5-D
/// mixed-extent shape (k = 2 included), identical at both tiers.
const F9_SHAPES: [&str; 2] = ["8x8", "4x4x4x4x2"];
/// Message size of every F9 point.
const F9_M: u64 = 64;

/// The engine-mode × shard-count combinations every F9 (shape, strategy)
/// pair runs under, each with a distinct cache-key variant label and the
/// invariant oracle on. The full-scan single-shard combination is the
/// reference the other five must match byte-for-byte.
fn f9_variants() -> [(&'static str, EngineMode, usize); 6] {
    [
        (INVARIANTS_FULL_SCAN, EngineMode::FullScan, 1),
        (INVARIANTS, EngineMode::ActiveSet, 1),
        (INVARIANTS_EVENT, EngineMode::EventDriven, 1),
        ("invariants-fullscan-shards4", EngineMode::FullScan, 4),
        ("invariants-activeset-shards4", EngineMode::ActiveSet, 4),
        ("invariants-event-shards4", EngineMode::EventDriven, 4),
    ]
}

/// One F9 point: full coverage, oracle on, pinned engine mode and shard
/// count.
fn f9_point(
    shape: &str,
    strategy: &StrategyKind,
    label: &'static str,
    engine: EngineMode,
    shards: usize,
) -> RunPoint {
    let part: Partition = shape.parse().expect("valid shape");
    RunPoint::new(part, strategy.clone(), F9_M, 1.0).variant(label, move |c| {
        c.check_invariants = true;
        c.engine = engine;
        c.shards = std::num::NonZeroUsize::new(shards).expect("nonzero");
    })
}

/// Every F9 simulation point.
fn f9_points() -> Vec<RunPoint> {
    let mut pts = Vec::new();
    for shape in F9_SHAPES {
        for s in [ar(), dr()] {
            for (label, engine, shards) in f9_variants() {
                pts.push(f9_point(shape, &s, label, engine, shards));
            }
        }
    }
    pts
}

/// Every F8 simulation point (the fault plan rides the cache key, so
/// none of these alias the healthy grid).
fn fault_points() -> Vec<RunPoint> {
    let mut pts = vec![
        checked_full_cov(F8_SHAPE, &ar(), F8_M),
        checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_noop_plan()),
        checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_dead_link()),
        checked_full_cov(F8_SHAPE, &dr(), F8_M).with_fault(f8_dead_link()),
        checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_midrun_plan()),
    ];
    pts.extend(f8_twins().into_iter().map(|(_, p)| p));
    pts
}

/// The tier-specific fixture grid, named by what each slot is for.
struct Grid {
    /// §7.1 symmetric ladder (efficiency must rise with dimensionality).
    sym_ladder: [&'static str; 3],
    /// §7.1/§7.3 asymmetric reference shape (AR band, throttle delta).
    asym: &'static str,
    /// §7.2 orientation sweep: longest dimension X, then Y, then Z.
    dr_orient: [&'static str; 3],
    /// §7.2 symmetric shape where DR must trail AR.
    dr_sym: &'static str,
    /// §7.4 midplane (CPU-forwarding-bound TPS) vs a TPS-friendly shape.
    tps_mid: &'static str,
    tps_good: &'static str,
    /// §7.4 Table-4 latency pair: small symmetric, larger asymmetric.
    lat_pair: [&'static str; 2],
    /// §7.5 VMesh-vs-AR crossover shape and the two probe sizes.
    vm_shape: &'static str,
    vm_small: u64,
    vm_large: u64,
    /// §7.5 three-strategy short-message shape (Figure 7). VMesh runs at
    /// full coverage here.
    vm_tri: &'static str,
    /// §7.5 full-tier only: the paper's 4096-node Figure-7 shape. VMesh
    /// runs full-coverage under the stop-and-wait credit window (see
    /// [`vmesh_paced`]); AR and TPS run budget-sampled.
    vm_tri_4096: Option<&'static str>,
}

/// The tier grids.
///
/// The full tier checks the Figure-7 three-way ordering on both the
/// 1024-node 8x16x8 (everything full-speed) and the paper's 4096-node
/// 8x32x16, where the full-coverage VMesh exchange needs the credit
/// pacer to stay live — an earlier revision of this suite documented the
/// unpaced stall (~390 k frozen packets) as a known limitation; the
/// flow-control layer closed it (EXPERIMENTS.md §Flow control & pacing
/// has the before/after).
fn grid(tier: Tier) -> Grid {
    match tier {
        Tier::Quick => Grid {
            sym_ladder: ["8x1x1", "8x8", "8x8x8"],
            asym: "8x4x4",
            dr_orient: ["8x4x4", "4x8x4", "4x4x8"],
            dr_sym: "4x4x4",
            tps_mid: "8x8x8",
            tps_good: "8x8x4M",
            lat_pair: ["8x8x8", "8x8x16"],
            vm_shape: "4x4x4",
            vm_small: 8,
            vm_large: 256,
            vm_tri: "4x8x4",
            vm_tri_4096: None,
        },
        Tier::Full => Grid {
            sym_ladder: ["8x1x1", "8x8", "8x8x8"],
            asym: "8x4x4",
            dr_orient: ["16x8x8", "8x16x8", "8x8x16"],
            dr_sym: "8x8x8",
            tps_mid: "8x8x8",
            tps_good: "16x8x8",
            lat_pair: ["8x8x8", "8x8x16"],
            vm_shape: "8x8x8",
            vm_small: 8,
            vm_large: 256,
            vm_tri: "8x16x8",
            vm_tri_4096: Some("8x32x16"),
        },
    }
}

/// The engine-equivalence slice: every strategy class once, on shapes
/// cheap enough to double-run under the full-scan reference engine.
fn equivalence_grid(runner: &Runner) -> Vec<(&'static str, StrategyKind, u64)> {
    let m = |shape: &str| runner.large_m_for(&shape.parse::<Partition>().expect("valid shape"));
    vec![
        ("8x4x4", ar(), m("8x4x4")),
        ("4x4x8", dr(), m("4x4x8")),
        ("8x8x8", tps(), m("8x8x8")),
        ("4x4x4", vmesh(), 8),
    ]
}

fn large_m(runner: &Runner, shape: &str) -> u64 {
    runner.large_m_for(&shape.parse::<Partition>().expect("valid shape"))
}

/// Every simulation point the families need, for one batched
/// [`Runner::run_points`] call.
pub fn points(runner: &Runner, tier: Tier) -> Vec<RunPoint> {
    let g = grid(tier);
    let mut pts = Vec::new();
    // F1: AR on the symmetric ladder and the asymmetric reference.
    for shape in g.sym_ladder {
        pts.push(checked(runner, shape, &ar(), large_m(runner, shape)));
    }
    pts.push(checked(runner, g.asym, &ar(), 912));
    // F2: DR orientation sweep + the symmetric DR-vs-AR pair.
    for shape in g.dr_orient {
        pts.push(checked(runner, shape, &dr(), 912));
        pts.push(checked(runner, shape, &ar(), 912));
    }
    pts.push(checked(runner, g.dr_sym, &dr(), large_m(runner, g.dr_sym)));
    // F3: throttled twin of the asymmetric reference.
    pts.push(checked(runner, g.asym, &thr(), 912));
    // F4: TPS midplane caveat + Table-4 latency pairs.
    pts.push(checked(
        runner,
        g.tps_mid,
        &tps(),
        large_m(runner, g.tps_mid),
    ));
    pts.push(checked(
        runner,
        g.tps_good,
        &tps(),
        large_m(runner, g.tps_good),
    ));
    for shape in g.lat_pair {
        pts.push(checked(runner, shape, &tps(), 1));
        pts.push(checked(runner, shape, &ar(), 1));
    }
    // F5: VMesh crossover probes + the three-strategy short-message shape.
    // VMesh points are pinned at full coverage (see `checked_full_cov`).
    for m in [g.vm_small, g.vm_large] {
        pts.push(checked_full_cov(g.vm_shape, &vmesh(), m));
        pts.push(checked(runner, g.vm_shape, &ar(), m));
    }
    pts.push(checked_full_cov(g.vm_tri, &vmesh(), g.vm_small));
    for s in [ar(), tps()] {
        pts.push(checked(runner, g.vm_tri, &s, g.vm_small));
    }
    if let Some(shape) = g.vm_tri_4096 {
        pts.push(checked_full_cov(shape, &vmesh_paced(), g.vm_small));
        pts.push(checked(runner, shape, &ar(), g.vm_small));
        pts.push(checked(runner, shape, &tps(), g.vm_small));
    }
    // F6: active-set, full-scan, and event-driven twins of the
    // equivalence slice. F7: the slab-sharded twin of the same slice.
    for (shape, strategy, m) in equivalence_grid(runner) {
        pts.push(checked(runner, shape, &strategy, m));
        pts.push(checked_full_scan(runner, shape, &strategy, m));
        pts.push(checked_event(runner, shape, &strategy, m));
        pts.push(checked_sharded(runner, shape, &strategy, m));
    }
    // F8: fault injection — healthy/noop twins, degraded-mode AR vs DR
    // on a dead link, a mid-run fail→recover window, and engine/shard
    // twins under the same fault plan.
    pts.extend(fault_points());
    // F9: the n-dimensional generalization — AR and DR on a 2-D torus
    // and a 5-D mixed-extent shape, across every engine mode × shard
    // count combination.
    pts.extend(f9_points());
    pts
}

/// Fetch helpers: percent of peak and coverage-extrapolated latency for
/// a grid point; `NAN` for a failed run, which fails every comparison it
/// enters (a crashed fixture must surface as FAIL, not as a panic).
struct Fetch<'a> {
    runner: &'a Runner,
}

impl Fetch<'_> {
    fn pct(&self, shape: &str, strategy: &StrategyKind, m: u64) -> f64 {
        self.runner
            .report(&checked(self.runner, shape, strategy, m))
            .map(|r| r.percent_of_peak)
            .unwrap_or(f64::NAN)
    }

    fn ms(&self, shape: &str, strategy: &StrategyKind, m: u64) -> f64 {
        self.runner
            .report(&checked(self.runner, shape, strategy, m))
            .map(|r| r.time_secs * 1e3 / r.workload.coverage)
            .unwrap_or(f64::NAN)
    }

    /// Latency of a full-coverage (VMesh) grid point — no extrapolation.
    fn ms_full(&self, shape: &str, strategy: &StrategyKind, m: u64) -> f64 {
        self.runner
            .report(&checked_full_cov(shape, strategy, m))
            .map(|r| r.time_secs * 1e3)
            .unwrap_or(f64::NAN)
    }
}

fn p1(x: f64) -> String {
    format!("{x:.1}")
}

/// Evaluate every family against the (cached) grid runs.
pub fn evaluate(runner: &Runner, tier: Tier) -> Vec<CheckResult> {
    let g = grid(tier);
    let f = Fetch { runner };
    let mut out = Vec::new();

    // ---- F1: AR efficiency (§7.1) -------------------------------------
    let fam = "F1 ar-efficiency";
    let ladder: Vec<f64> = g
        .sym_ladder
        .iter()
        .map(|s| f.pct(s, &ar(), large_m(runner, s)))
        .collect();
    out.push(CheckResult::new(
        fam,
        format!(
            "symmetric ladder {} < {} < {}",
            g.sym_ladder[0], g.sym_ladder[1], g.sym_ladder[2]
        ),
        ladder[0] < ladder[1] && ladder[1] < ladder[2],
        format!("{} < {} < {}", p1(ladder[0]), p1(ladder[1]), p1(ladder[2])),
        "strictly increasing with dimensionality",
    ));
    let floor_cube = match tier {
        Tier::Quick => 85.0,
        Tier::Full => 93.0,
    };
    out.push(CheckResult::new(
        fam,
        format!("AR near peak on {}", g.sym_ladder[2]),
        ladder[2] >= floor_cube,
        p1(ladder[2]),
        format!("≥ {floor_cube} % of peak"),
    ));
    let asym_ar = f.pct(g.asym, &ar(), 912);
    out.push(CheckResult::new(
        fam,
        format!("AR asymmetric band on {}", g.asym),
        (70.0..=92.0).contains(&asym_ar),
        p1(asym_ar),
        "within 70–92 % of peak",
    ));

    // ---- F2: DR dimension-order asymmetry (§7.2) ----------------------
    let fam = "F2 dr-orientation";
    let dro: Vec<f64> = g.dr_orient.iter().map(|s| f.pct(s, &dr(), 912)).collect();
    out.push(CheckResult::new(
        fam,
        format!(
            "orientation order {} > {} ≥ {}",
            g.dr_orient[0], g.dr_orient[1], g.dr_orient[2]
        ),
        dro[0] > dro[1] && dro[1] >= dro[2] - 1.0,
        format!("{} > {} ≥ {}", p1(dro[0]), p1(dro[1]), p1(dro[2])),
        "best when X is longest, worst when Z is",
    ));
    out.push(CheckResult::new(
        fam,
        format!("X-longest beats Z-longest by a gap on {}", g.dr_orient[0]),
        dro[0] - dro[2] >= 5.0,
        format!("gap {}", p1(dro[0] - dro[2])),
        "≥ 5 points",
    ));
    if tier == Tier::Full {
        // Paper-scale spot checks: DR rides the schedule while unshaped
        // AR tree-saturates on the elongated torus.
        let ar_x = f.pct(g.dr_orient[0], &ar(), 912);
        out.push(CheckResult::new(
            fam,
            format!("DR beats collapsed AR on {}", g.dr_orient[0]),
            dro[0] > ar_x,
            format!("DR {} vs AR {}", p1(dro[0]), p1(ar_x)),
            "DR > AR when X is the longest dimension",
        ));
    }
    let sym_dr = f.pct(g.dr_sym, &dr(), large_m(runner, g.dr_sym));
    let sym_ar = f.pct(g.dr_sym, &ar(), large_m(runner, g.dr_sym));
    out.push(CheckResult::new(
        fam,
        format!("DR trails AR on symmetric {}", g.dr_sym),
        sym_dr < sym_ar,
        format!("DR {} vs AR {}", p1(sym_dr), p1(sym_ar)),
        "DR < AR on symmetric tori",
    ));

    // ---- F3: throttling delta (§7.3) ----------------------------------
    let fam = "F3 throttle-delta";
    let thr_pct = f.pct(g.asym, &thr(), 912);
    let delta = thr_pct - asym_ar;
    out.push(CheckResult::new(
        fam,
        format!("bisection throttle ≈ AR on {}", g.asym),
        delta.abs() <= 5.0,
        format!(
            "throttled {} vs AR {} (Δ {:+.1})",
            p1(thr_pct),
            p1(asym_ar),
            delta
        ),
        "|Δ| ≤ 5 points where AR holds up",
    ));

    // ---- F4: TPS (§7.4) -----------------------------------------------
    let fam = "F4 tps";
    let tps_mid = f.pct(g.tps_mid, &tps(), large_m(runner, g.tps_mid));
    let tps_good = f.pct(g.tps_good, &tps(), large_m(runner, g.tps_good));
    out.push(CheckResult::new(
        fam,
        format!("midplane {} CPU-bound vs {}", g.tps_mid, g.tps_good),
        tps_mid < tps_good,
        format!("{} vs {}", p1(tps_mid), p1(tps_good)),
        "TPS noticeably lower on the symmetric midplane",
    ));
    let mid_ar = f.pct(g.tps_mid, &ar(), large_m(runner, g.tps_mid));
    out.push(CheckResult::new(
        fam,
        format!("TPS trails AR on the {} midplane", g.tps_mid),
        tps_mid < mid_ar,
        format!("TPS {} vs AR {}", p1(tps_mid), p1(mid_ar)),
        "direct beats forwarding on symmetric tori",
    ));
    if tier == Tier::Full {
        out.push(CheckResult::new(
            fam,
            format!("TPS rescues the {} collapse", g.tps_good),
            tps_good >= 75.0 && tps_good > f.pct(g.tps_good, &ar(), large_m(runner, g.tps_good)),
            format!(
                "TPS {} vs AR {}",
                p1(tps_good),
                p1(f.pct(g.tps_good, &ar(), large_m(runner, g.tps_good)))
            ),
            "TPS ≥ 75 % and above AR on the elongated torus",
        ));
    }
    let ratio: Vec<f64> = g
        .lat_pair
        .iter()
        .map(|s| f.ms(s, &tps(), 1) / f.ms(s, &ar(), 1))
        .collect();
    out.push(CheckResult::new(
        fam,
        format!("1-byte latency: TPS pays forwarding on {}", g.lat_pair[0]),
        ratio[0] > 1.1,
        format!("TPS/AR = {:.2}", ratio[0]),
        "ratio > 1.1 on the small partition",
    ));
    out.push(CheckResult::new(
        fam,
        format!(
            "Table-4 crossover direction {} → {}",
            g.lat_pair[0], g.lat_pair[1]
        ),
        ratio[1] < ratio[0] - 0.2,
        format!("TPS/AR {:.2} → {:.2}", ratio[0], ratio[1]),
        "ratio falls toward the larger asymmetric partition",
    ));

    // ---- F5: VMesh short-message crossover (§7.5) ---------------------
    let fam = "F5 vmesh-crossover";
    let gain_small =
        f.ms(g.vm_shape, &ar(), g.vm_small) / f.ms_full(g.vm_shape, &vmesh(), g.vm_small);
    let gain_large =
        f.ms(g.vm_shape, &ar(), g.vm_large) / f.ms_full(g.vm_shape, &vmesh(), g.vm_large);
    out.push(CheckResult::new(
        fam,
        format!("VMesh wins at {} B on {}", g.vm_small, g.vm_shape),
        gain_small >= 1.3,
        format!("AR/VMesh time = {gain_small:.2}"),
        "≥ 1.3× (paper: ≈2× for very short messages)",
    ));
    out.push(CheckResult::new(
        fam,
        format!("direct wins at {} B on {}", g.vm_large, g.vm_shape),
        gain_large <= 1.0,
        format!("AR/VMesh time = {gain_large:.2}"),
        "≤ 1.0× (crossover sits below 256 B)",
    ));
    let tri_vm = f.ms_full(g.vm_tri, &vmesh(), g.vm_small);
    let tri_ar = f.ms(g.vm_tri, &ar(), g.vm_small);
    let tri_tps = f.ms(g.vm_tri, &tps(), g.vm_small);
    // TPS's forwarding overhead amortizes only at the paper's 4096-node
    // scale, so "VMesh fastest" is the stable assertion on this shape;
    // the full three-way ordering (VMesh < TPS < AR) is asserted on the
    // 4096-node shape below.
    out.push(CheckResult::new(
        fam,
        format!("{} B ordering on {}", g.vm_small, g.vm_tri),
        tri_vm < tri_ar && tri_vm < tri_tps,
        format!("VMesh {tri_vm:.3} ms, TPS {tri_tps:.3} ms, AR {tri_ar:.3} ms"),
        "VMesh fastest",
    ));
    if let Some(shape) = g.vm_tri_4096 {
        let big_vm = f.ms_full(shape, &vmesh_paced(), g.vm_small);
        let big_ar = f.ms(shape, &ar(), g.vm_small);
        let big_tps = f.ms(shape, &tps(), g.vm_small);
        out.push(CheckResult::new(
            fam,
            format!("{} B Figure-7 ordering on {}", g.vm_small, shape),
            big_vm < big_tps && big_tps < big_ar,
            format!("VMesh {big_vm:.3} ms, TPS {big_tps:.3} ms, AR {big_ar:.3} ms"),
            "VMesh (credit-paced, full coverage) < TPS < AR at 4096 nodes",
        ));
    }

    // ---- F6: engine-mode/oracle equivalence ---------------------------
    let fam = "F6 engine-equivalence";
    for (shape, strategy, m) in equivalence_grid(runner) {
        let reference = runner.report(&checked_full_scan(runner, shape, &strategy, m));
        let twins = [
            (
                "active-set",
                runner.report(&checked(runner, shape, &strategy, m)),
            ),
            (
                "event",
                runner.report(&checked_event(runner, shape, &strategy, m)),
            ),
        ];
        for (label, twin) in &twins {
            let (passed, measured) = match (twin, &reference) {
                (Ok(a), Ok(r)) if a.stats == r.stats => (true, "identical NetStats".to_string()),
                (Ok(a), Ok(r)) => (
                    false,
                    format!("diverged: {} vs {} cycles", a.cycles, r.cycles),
                ),
                (a, r) => (
                    false,
                    format!("run failed: {:?} / {:?}", a.is_ok(), r.is_ok()),
                ),
            };
            out.push(CheckResult::new(
                fam,
                format!("{} {} m={m} {label}", shape, strategy.name()),
                passed,
                measured,
                "every engine mode == full-scan under the oracle",
            ));
        }
    }

    // ---- F7: shard-count equivalence ----------------------------------
    // Splitting the torus into rank slabs (`SimConfig::shards`) must be
    // observationally invisible: the 4-shard oracle-checked twin of each
    // equivalence point produces the exact NetStats of its unsharded
    // oracle-checked twin.
    let fam = "F7 shard-equivalence";
    for (shape, strategy, m) in equivalence_grid(runner) {
        let unsharded = runner.report(&checked(runner, shape, &strategy, m));
        let sharded = runner.report(&checked_sharded(runner, shape, &strategy, m));
        let (passed, measured) = match (&sharded, &unsharded) {
            (Ok(a), Ok(r)) if a.stats == r.stats => (true, "identical NetStats".to_string()),
            (Ok(a), Ok(r)) => (
                false,
                format!("diverged: {} vs {} cycles", a.cycles, r.cycles),
            ),
            (a, r) => (
                false,
                format!("run failed: {:?} / {:?}", a.is_ok(), r.is_ok()),
            ),
        };
        out.push(CheckResult::new(
            fam,
            format!("{} {} m={m} shards=4", shape, strategy.name()),
            passed,
            measured,
            "sharded run == unsharded run under the oracle",
        ));
    }

    // ---- F8: fault injection ------------------------------------------
    // Degraded-mode routing, oracle on for every point: a fault plan is
    // part of the run's cache key, so none of these share a slot with
    // the healthy grid.
    let fam = "F8 fault-injection";
    let healthy = runner.report(&checked_full_cov(F8_SHAPE, &ar(), F8_M));
    let nooped = runner.report(&checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_noop_plan()));
    let (passed, measured) = match (&healthy, &nooped) {
        (Ok(h), Ok(n)) if h.stats == n.stats => (true, "identical NetStats".to_string()),
        (Ok(h), Ok(n)) => (
            false,
            format!("diverged: {} vs {} cycles", h.cycles, n.cycles),
        ),
        (h, n) => (
            false,
            format!("run failed: {:?} / {:?}", h.is_ok(), n.is_ok()),
        ),
    };
    out.push(CheckResult::new(
        fam,
        format!("{F8_SHAPE} AR noop fault plan is byte-invisible"),
        passed,
        measured,
        "fault scheduled past completion == healthy run",
    ));

    let ar_dead =
        runner.report(&checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_dead_link()));
    let (passed, measured) = match (&ar_dead, &healthy) {
        (Ok(d), Ok(h))
            if d.stats.dropped_by_fault == 0
                && d.stats.packets_delivered == h.stats.packets_delivered =>
        {
            (
                true,
                format!("{} packets delivered, 0 dropped", d.stats.packets_delivered),
            )
        }
        (Ok(d), Ok(_)) => (
            false,
            format!(
                "{} delivered, {} dropped",
                d.stats.packets_delivered, d.stats.dropped_by_fault
            ),
        ),
        (d, h) => (
            false,
            format!("run failed: {:?} / {:?}", d.is_ok(), h.is_ok()),
        ),
    };
    out.push(CheckResult::new(
        fam,
        format!("{F8_SHAPE} AR routes around a statically dead link"),
        passed,
        measured,
        "full delivery, nothing dropped (never in flight on a dead link)",
    ));

    let dr_dead =
        runner.report(&checked_full_cov(F8_SHAPE, &dr(), F8_M).with_fault(f8_dead_link()));
    let (passed, measured) = match &dr_dead {
        Err(SimError::Unreachable {
            cycle: 0,
            blocked_packets,
            faults,
        }) if !faults.is_empty() => (
            true,
            format!("Unreachable at cycle 0, {blocked_packets} packets blocked"),
        ),
        Err(e) => (false, format!("wrong error: {e}")),
        Ok(r) => (false, format!("completed in {} cycles", r.cycles)),
    };
    out.push(CheckResult::new(
        fam,
        format!("{F8_SHAPE} DR reports the dead link as unreachable"),
        passed,
        measured,
        "instant Unreachable with a per-fault breakdown",
    ));

    let midrun =
        runner.report(&checked_full_cov(F8_SHAPE, &ar(), F8_M).with_fault(f8_midrun_plan()));
    let (passed, measured) = match &midrun {
        Ok(r)
            if r.stats.packets_injected == r.stats.packets_delivered + r.stats.dropped_by_fault =>
        {
            (
                true,
                format!(
                    "{} delivered + {} dropped == {} injected",
                    r.stats.packets_delivered, r.stats.dropped_by_fault, r.stats.packets_injected
                ),
            )
        }
        Ok(r) => (
            false,
            format!(
                "{} delivered + {} dropped != {} injected",
                r.stats.packets_delivered, r.stats.dropped_by_fault, r.stats.packets_injected
            ),
        ),
        Err(e) => (false, format!("run failed: {e}")),
    };
    out.push(CheckResult::new(
        fam,
        format!("{F8_SHAPE} AR survives a mid-run fail→recover window"),
        passed,
        measured,
        "oracle green; delivered + dropped_by_fault telescopes to injected",
    ));

    for (label, twin) in f8_twins() {
        let got = runner.report(&twin);
        let (passed, measured) = match (&got, &ar_dead) {
            (Ok(a), Ok(r)) if a.stats == r.stats => (true, "identical NetStats".to_string()),
            (Ok(a), Ok(r)) => (
                false,
                format!("diverged: {} vs {} cycles", a.cycles, r.cycles),
            ),
            (a, r) => (
                false,
                format!("run failed: {:?} / {:?}", a.is_ok(), r.is_ok()),
            ),
        };
        out.push(CheckResult::new(
            fam,
            format!("{F8_SHAPE} AR dead-link twin {label}"),
            passed,
            measured,
            "every engine mode and shard count == baseline under the fault",
        ));
    }

    // ---- F9: n-dimensional generalization -----------------------------
    // The topology layer generalized from a hard-coded 3-D torus to
    // k-ary n-dimensional shapes; this family pins both halves of that
    // contract: (a) 3-D behavior did not move a byte — the committed
    // golden fingerprint still reproduces — and (b) the generalized
    // machinery is genuinely n-dimensional: full oracle-checked AR and DR
    // exchanges on a 2-D torus and a 5-D mixed-extent shape, identical
    // across every engine mode and shard count.
    let fam = "F9 ndim-generalization";
    {
        let part: Partition = "4x4x1".parse().expect("valid shape");
        let point = RunPoint::new(part, ar(), 240, 1.0);
        let got = runner
            .report(&point)
            .ok()
            .map(|r| format!("{:016x}", super::golden::fingerprint(&r.stats)));
        let want = super::golden::committed_fingerprint(&point.key);
        let (passed, measured) = match (&got, &want) {
            (Some(g), Some(w)) if g == w => (true, g.clone()),
            (Some(g), Some(w)) => (false, format!("{g}, committed {w}")),
            (Some(g), None) => (false, format!("{g}, no committed entry")),
            (None, _) => (false, "run failed".to_string()),
        };
        out.push(CheckResult::new(
            fam,
            "4x4x1 AR reproduces the committed 3-D fingerprint",
            passed,
            measured,
            "n-dim refactor leaves 3-D behavior byte-identical",
        ));
    }
    for shape in F9_SHAPES {
        let part: Partition = shape.parse().expect("valid shape");
        let p = part.num_nodes() as u64;
        let want_payload = p * (p - 1) * F9_M;
        for s in [ar(), dr()] {
            let reference = runner.report(&f9_point(
                shape,
                &s,
                INVARIANTS_FULL_SCAN,
                EngineMode::FullScan,
                1,
            ));
            let (passed, measured) = match &reference {
                Ok(r) if r.stats.payload_bytes_delivered == want_payload => {
                    (true, format!("{want_payload} B delivered"))
                }
                Ok(r) => (
                    false,
                    format!(
                        "{} B delivered, want {want_payload}",
                        r.stats.payload_bytes_delivered
                    ),
                ),
                Err(e) => (false, format!("run failed: {e}")),
            };
            out.push(CheckResult::new(
                fam,
                format!("{shape} {} full exchange, oracle on", s.name()),
                passed,
                measured,
                "complete all-to-all payload under the invariant oracle",
            ));
            for (label, engine, shards) in f9_variants() {
                if matches!(engine, EngineMode::FullScan) && shards == 1 {
                    continue; // the reference itself
                }
                let twin = runner.report(&f9_point(shape, &s, label, engine, shards));
                let (passed, measured) = match (&twin, &reference) {
                    (Ok(a), Ok(r)) if a.stats == r.stats => {
                        (true, "identical NetStats".to_string())
                    }
                    (Ok(a), Ok(r)) => (
                        false,
                        format!("diverged: {} vs {} cycles", a.cycles, r.cycles),
                    ),
                    (a, r) => (
                        false,
                        format!("run failed: {:?} / {:?}", a.is_ok(), r.is_ok()),
                    ),
                };
                out.push(CheckResult::new(
                    fam,
                    format!("{shape} {} {label}", s.name()),
                    passed,
                    measured,
                    "engine mode × shard count == full-scan reference",
                ));
            }
        }
    }

    out
}
