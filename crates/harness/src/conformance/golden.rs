//! Golden-snapshot tier: committed `NetStats` fingerprints for a small
//! pinned grid.
//!
//! The families in [`super::families`] assert *shape*; this tier pins
//! *bits*. Every run in the golden grid is fully deterministic, so its
//! complete `NetStats` — cycle counts, latency histogram, per-dimension
//! link counters — serializes to the same JSON on every machine and
//! thread count, and a 64-bit FNV-1a fingerprint of that JSON detects
//! any behavioral drift in the simulator or the strategy stack.
//!
//! Fingerprints live in `crates/harness/golden/netstats.json`, keyed by
//! the serialized [`RunKey`] (the proptest suite pins that the key's
//! serde round-trips exactly, so the file's identity is stable). After
//! an intentional behavior change, refresh with
//! `bglsim validate --bless` and commit the diff — the review of that
//! diff is the point of the tier.

use super::CheckResult;
use crate::runner::{RunKey, RunPoint, Runner};
use bgl_core::{Pacer, StrategyKind};
use bgl_sim::{FaultPlan, LinkFault, NetStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// The committed fingerprint file (crate-relative, so the binary and the
/// tests resolve the same path from any working directory).
pub const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/netstats.json");

/// The pinned grid: one point per strategy class, small shapes at full
/// coverage so the tier costs seconds and is identical at both tiers.
fn grid() -> Vec<RunPoint> {
    let pt = |shape: &str, strategy: StrategyKind, m: u64| {
        RunPoint::new(shape.parse().expect("valid shape"), strategy, m, 1.0)
    };
    vec![
        pt("4x4x1", StrategyKind::ar(), 240),
        pt("4x2x2", StrategyKind::dr(), 240),
        pt("8x1x1", StrategyKind::tps(), 64),
        pt("4x4x4", StrategyKind::vmesh(), 8),
        pt("4x4x1", StrategyKind::throttled(1.0), 240),
        pt("3x3x2", StrategyKind::xyz(), 64),
        // Paced points pin the flow-control layer itself: a credit
        // window on each forwarding class (TPS acks every other packet,
        // VMesh stop-and-wait as on the 8x32x16), so drift in the
        // ledger or ack path moves these fingerprints even when the
        // unpaced grid is untouched. TPS needs a 3-D shape here — on a
        // line partition it never forwards, so the ledger stays idle
        // and the paced fingerprint would collapse into the unpaced one.
        pt(
            "4x2x2",
            StrategyKind::tps().with_pacer(Pacer::credit(4, 2)),
            64,
        ),
        pt(
            "4x4x4",
            StrategyKind::vmesh().with_pacer(Pacer::credit(1, 1)),
            8,
        ),
        // Fault injection: AR around one statically dead link pins the
        // degraded-mode arbitration, detour replanning, and suppressed
        // return-bounce bit-for-bit (the plan rides the RunKey, so this
        // never aliases the healthy 4x4x1 AR point above).
        pt("4x4x1", StrategyKind::ar(), 240).with_fault(FaultPlan {
            links: vec![LinkFault::dead(0, bgl_torus::Direction::from_index(0))],
            nodes: vec![],
        }),
        // n-dimensional pins: a true 2-D torus (4 ports per node) and a
        // 4-D torus (8 ports), so the generalized topology layer has
        // golden coverage beyond the historical 3-D grid. Appended after
        // the legacy points — their committed fingerprints must never
        // move when entries are added here.
        pt("8x8", StrategyKind::ar(), 240),
        pt("4x4x4x4", StrategyKind::ar(), 64),
    ]
}

/// 64-bit FNV-1a over the canonical JSON serialization of the stats.
pub fn fingerprint(stats: &NetStats) -> u64 {
    let json = serde_json::to_string(stats).expect("NetStats serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One committed fingerprint, keyed by the structured run identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    key: RunKey,
    /// Hex `NetStats` fingerprint (string: JSON readers need not carry
    /// u64 precision).
    fingerprint: String,
}

fn hex(fp: u64) -> String {
    format!("{fp:016x}")
}

fn label(key: &RunKey) -> String {
    // `name()` already folds the rate window in ("AR-throttled"); spell
    // out credit windows so the paced and unpaced rows stay tellable
    // apart in the rendered table.
    let pacer = match key.strategy.pacer() {
        Pacer::CreditWindow { credit } => {
            format!(" credit:{},{}", credit.window_packets, credit.credit_every)
        }
        _ => String::new(),
    };
    let fault = if key.fault.is_empty() {
        String::new()
    } else {
        format!(
            " fault:{}",
            key.fault.links.len() + key.fault.nodes.len() * 12
        )
    };
    format!(
        "{} {}{}{} m={}",
        key.part,
        key.strategy.name(),
        pacer,
        fault,
        key.m
    )
}

fn load(path: &Path) -> Result<HashMap<RunKey, String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let entries: Vec<GoldenEntry> =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    Ok(entries
        .into_iter()
        .map(|e| (e.key, e.fingerprint))
        .collect())
}

/// The golden grid's simulation points (for the batched run).
pub fn points() -> Vec<RunPoint> {
    grid()
}

/// The committed fingerprint (hex) for `key`, if the golden file holds
/// one. The F9 family uses this to pin that the n-dimensional topology
/// refactor reproduces the stored 3-D fingerprints byte-for-byte.
pub fn committed_fingerprint(key: &RunKey) -> Option<String> {
    load(Path::new(GOLDEN_PATH)).ok()?.remove(key)
}

/// Compare the measured grid against the committed file — or, with
/// `bless`, rewrite the file from the measured runs.
pub fn evaluate(runner: &Runner, bless: bool) -> Vec<CheckResult> {
    evaluate_at(runner, bless, Path::new(GOLDEN_PATH))
}

fn evaluate_at(runner: &Runner, bless: bool, path: &Path) -> Vec<CheckResult> {
    const FAM: &str = "G golden-snapshot";
    let measured: Vec<(RunKey, Option<u64>)> = grid()
        .iter()
        .map(|p| {
            (
                p.key.clone(),
                runner.report(p).ok().map(|r| fingerprint(&r.stats)),
            )
        })
        .collect();

    if bless {
        let entries: Vec<GoldenEntry> = measured
            .iter()
            .filter_map(|(key, fp)| {
                fp.map(|fp| GoldenEntry {
                    key: key.clone(),
                    fingerprint: hex(fp),
                })
            })
            .collect();
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                return vec![CheckResult::new(
                    FAM,
                    "bless golden file",
                    false,
                    format!("cannot create {}: {e}", dir.display()),
                    "writable golden directory",
                )];
            }
        }
        let body = serde_json::to_string_pretty(&entries).expect("entries serialize");
        return match std::fs::write(path, body + "\n") {
            Ok(()) => measured
                .iter()
                .map(|(key, fp)| {
                    CheckResult::new(
                        FAM,
                        label(key),
                        fp.is_some(),
                        fp.map(hex).unwrap_or_else(|| "run failed".into()),
                        "(blessed)",
                    )
                })
                .collect(),
            Err(e) => vec![CheckResult::new(
                FAM,
                "bless golden file",
                false,
                format!("cannot write {}: {e}", path.display()),
                "writable golden file",
            )],
        };
    }

    let golden = match load(path) {
        Ok(map) => map,
        Err(e) => {
            return vec![CheckResult::new(
                FAM,
                "load golden file",
                false,
                e,
                "committed fingerprints (regenerate with --bless)",
            )]
        }
    };
    measured
        .iter()
        .map(|(key, fp)| {
            let want = golden.get(key);
            let got = fp.map(hex);
            let (passed, measured, expected) = match (&got, want) {
                (Some(g), Some(w)) => (g == w, g.clone(), w.clone()),
                (Some(g), None) => (false, g.clone(), "missing entry (--bless)".into()),
                (None, w) => (
                    false,
                    "run failed".into(),
                    w.cloned().unwrap_or_else(|| "missing entry".into()),
                ),
            };
            CheckResult::new(FAM, label(key), passed, measured, expected)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, Scale};

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = NetStats {
            completion_cycle: 100,
            packets_delivered: 7,
            ..NetStats::default()
        };
        let mut b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b.packets_delivered = 8;
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn golden_entries_round_trip_through_json() {
        let entries: Vec<GoldenEntry> = grid()
            .iter()
            .map(|p| GoldenEntry {
                key: p.key.clone(),
                fingerprint: hex(0xdead_beef_0123_4567),
            })
            .collect();
        let json = serde_json::to_string_pretty(&entries).unwrap();
        let back: Vec<GoldenEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }

    /// Bless-then-verify on a temp file: blessing writes every grid
    /// entry and an immediate re-evaluation passes bit-for-bit.
    #[test]
    fn bless_then_verify_round_trips() {
        let runner = Runner::new(Scale::Quick);
        runner.run_points(&points());
        let dir = std::env::temp_dir().join("bgl-golden-test");
        let path = dir.join("netstats.json");
        let blessed = evaluate_at(&runner, true, &path);
        assert!(blessed.iter().all(|r| r.passed), "{blessed:?}");
        let verified = evaluate_at(&runner, false, &path);
        assert_eq!(verified.len(), grid().len());
        assert!(verified.iter().all(|r| r.passed), "{verified:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A missing golden file is a structured FAIL, not a panic.
    #[test]
    fn missing_golden_file_fails_cleanly() {
        let runner = Runner::new(Scale::Quick);
        runner.run_points(&points());
        let res = evaluate_at(&runner, false, Path::new("/nonexistent/golden.json"));
        assert_eq!(res.len(), 1);
        assert!(!res[0].passed);
        assert!(res[0].expected.contains("--bless"));
    }
}
