//! Human-readable run reports from a traced simulation.
//!
//! [`render_run_report`] turns an [`AaReport`] that carries a
//! [`Trace`](bgl_sim::Trace) into the `bglsim --report` text: a
//! per-interval utilization timeline, phase boundaries for the indirect
//! strategies, FIFO-occupancy highlights and (when detailed link stats
//! were collected) the [`NetStats::hottest_links`] top-k table. This is
//! the tooling face of the paper's Section 4 diagnosis: on an asymmetric
//! torus the timeline makes the Y/Z VC-FIFO ramp of adaptive routing
//! visible, while TPS's timeline stays flat.

use bgl_core::AaReport;
use bgl_sim::{NetStats, TraceSample};
use bgl_torus::{Dim, Partition};
use std::fmt::Write as _;

/// Width of the utilization bar, characters at 100 %.
const BAR_WIDTH: usize = 24;

/// Render the full report. Works without a trace (header, aggregates and
/// hottest-links only) but shines with one.
pub fn render_run_report(report: &AaReport) -> String {
    let mut out = String::new();
    let part = report.partition;
    let _ = writeln!(
        out,
        "run report: {} on {part}, m={} B/dest, coverage {:.4}",
        report.strategy.name(),
        report.workload.m_bytes,
        report.workload.coverage,
    );
    let _ = writeln!(
        out,
        "  completion {} cycles ({:.3} ms), {:.1} % of peak, {:.1} MB/s per node",
        report.cycles,
        report.time_secs * 1e3,
        report.percent_of_peak,
        report.per_node_bandwidth / 1e6,
    );
    let s = &report.stats;
    let _ = writeln!(
        out,
        "  injected {} delivered {} packets, reception stalls {}, bubble fraction {:.3}",
        s.packets_injected,
        s.packets_delivered,
        s.reception_stall_events,
        s.bubble_fraction(),
    );
    if s.dropped_by_fault > 0 {
        let _ = writeln!(
            out,
            "  fault injection: {} packets dropped in flight by link faults \
             (delivered + dropped == injected)",
            s.dropped_by_fault,
        );
    }
    let util: Vec<String> = part
        .dims()
        .map(|d| format!("{d} {:.1}%", 100.0 * s.dim_utilization(&part, d)))
        .collect();
    let _ = writeln!(out, "  link utilization: {}", util.join("  "));

    match &report.trace {
        Some(trace) => {
            out.push('\n');
            render_timeline(&mut out, trace, &part);
            render_phases(&mut out, trace);
            render_fifo_highlights(&mut out, trace);
        }
        None => {
            let _ = writeln!(out, "\n(no trace recorded — rerun with --trace-interval)");
        }
    }
    render_hottest_links(&mut out, s, &part);
    out
}

/// The per-interval timeline: one row per sample, a bar for the busiest
/// dimension's window utilization plus the numbers that tell the
/// head-of-line-blocking story (per-dim dynamic-VC max occupancy, HOL
/// heads, in-flight packets).
fn render_timeline(out: &mut String, trace: &bgl_sim::Trace, part: &Partition) {
    let _ = writeln!(
        out,
        "timeline ({} samples, every {} cycles; bar = busiest dim's link utilization):",
        trace.samples.len(),
        trace.interval_cycles,
    );
    let dim_names: Vec<&str> = Dim::all(part.ndims()).map(|d| d.name()).collect();
    let _ = writeln!(
        out,
        "  {:>10}  {:<bw$}  {:>5}  dynVC max {}  {:>6}  {:>8}",
        "cycle",
        "util",
        "busy%",
        dim_names.join("/"),
        "HOL",
        "inflight",
        bw = BAR_WIDTH,
    );
    let mut prev_cycle = 0u64;
    for sample in &trace.samples {
        let window = sample.cycle.saturating_sub(prev_cycle).max(1);
        prev_cycle = sample.cycle;
        let util = window_utilization(sample, part, window);
        let busiest = util.into_iter().fold(0.0f64, f64::max);
        let filled = ((busiest * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
        let bar: String = "#".repeat(filled) + &"-".repeat(BAR_WIDTH - filled);
        let occ: Vec<String> = sample
            .dyn_vc_occupancy
            .iter()
            .map(|o| format!("{:>4}", o.max_chunks))
            .collect();
        let _ = writeln!(
            out,
            "  {:>10}  {bar}  {:>5.1}  {}  {:>6}  {:>8}",
            sample.cycle,
            100.0 * busiest,
            occ.join("/"),
            sample.hol_blocked_heads,
            sample.packets_in_flight,
        );
    }
    if trace.truncated {
        let _ = writeln!(out, "  … sample cap reached; series truncated");
    }
}

/// Per-dimension link utilization over one sample's window.
fn window_utilization(sample: &TraceSample, part: &Partition, window: u64) -> Vec<f64> {
    let mut util = vec![0.0f64; part.ndims()];
    for d in part.dims() {
        let links = part.directed_links(d);
        if links > 0 {
            util[d.index()] =
                sample.link_busy_delta[d.index()] as f64 / (links as f64 * window as f64);
        }
    }
    util
}

/// Phase boundaries, if any packet ever carried a phase kind (TPS, VMesh
/// and XYZ tag phase-1/phase-2 packets through `PacketMeta::kind`).
fn render_phases(out: &mut String, trace: &bgl_sim::Trace) {
    let spans: Vec<String> = [1u8, 2]
        .into_iter()
        .filter_map(|k| {
            trace
                .phase_span(k)
                .map(|(a, b)| format!("phase {k} in flight over cycles {a}..{b}"))
        })
        .collect();
    if !spans.is_empty() {
        let _ = writeln!(out, "phases: {}", spans.join("; "));
    }
}

/// The "where did packets pile up" headline numbers.
fn render_fifo_highlights(out: &mut String, trace: &bgl_sim::Trace) {
    let peak = trace.peak_dyn_occupancy();
    let peak_bubble = trace
        .samples
        .iter()
        .flat_map(|s| s.bubble_vc_occupancy.iter().map(|o| o.max_chunks))
        .max()
        .unwrap_or(0);
    let peak_recv = trace
        .samples
        .iter()
        .map(|s| s.reception_occupancy.max_chunks)
        .max()
        .unwrap_or(0);
    let peak_hol = trace
        .samples
        .iter()
        .map(|s| s.hol_blocked_heads)
        .max()
        .unwrap_or(0);
    let peaks: Vec<String> = peak.iter().map(|p| p.to_string()).collect();
    let names: Vec<&str> = Dim::all(peak.len()).map(|d| d.name()).collect();
    let _ = writeln!(
        out,
        "FIFO highlights: peak dynamic-VC occupancy {} = {} chunks, \
         peak bubble-VC {} chunks, peak reception {} chunks, peak HOL-blocked heads {}",
        names.join("/"),
        peaks.join("/"),
        peak_bubble,
        peak_recv,
        peak_hol,
    );
}

/// Top-k busiest directed links (needs `detailed_link_stats`; `--report`
/// turns it on).
fn render_hottest_links(out: &mut String, stats: &NetStats, part: &Partition) {
    let hot = stats.hottest_links(part.ports(), 8);
    if hot.is_empty() {
        return;
    }
    let _ = writeln!(out, "hottest links (node, direction, utilization):");
    for (node, dir, util) in hot {
        let _ = writeln!(out, "  node {node:>6}  {dir:<3}  {:>5.1} %", 100.0 * util);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_core::{AaRun, AaWorkload, StrategyKind};
    use bgl_sim::TraceConfig;

    fn traced_report() -> AaReport {
        let part: Partition = "4x4".parse().unwrap();
        AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .sim(|c| {
                c.trace = Some(TraceConfig::every(200));
                c.detailed_link_stats = true;
            })
            .run()
            .unwrap()
    }

    #[test]
    fn report_renders_all_sections() {
        let report = traced_report();
        assert!(report.trace.is_some(), "trace must be recorded");
        let text = render_run_report(&report);
        assert!(text.contains("run report: AR on 4x4"), "{text}");
        assert!(text.contains("timeline ("), "{text}");
        assert!(text.contains("FIFO highlights:"), "{text}");
        assert!(text.contains("hottest links"), "{text}");
    }

    #[test]
    fn report_without_trace_suggests_flag() {
        let part: Partition = "4x4".parse().unwrap();
        let report = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .run()
            .unwrap();
        let text = render_run_report(&report);
        assert!(text.contains("no trace recorded"), "{text}");
    }

    #[test]
    fn tps_report_shows_phase_spans() {
        let part: Partition = "4x2x2".parse().unwrap();
        let report = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::tps())
            .sim(|c| c.trace = Some(TraceConfig::every(100)))
            .run()
            .unwrap();
        let text = render_run_report(&report);
        assert!(text.contains("phases: phase 1 in flight"), "{text}");
    }

    #[test]
    fn timeline_bar_is_bounded() {
        let report = traced_report();
        let text = render_run_report(&report);
        for line in text.lines() {
            let hashes = line.chars().filter(|&c| c == '#').count();
            assert!(hashes <= BAR_WIDTH, "{line}");
        }
    }
}
