//! Direct all-to-all strategies (Section 3): every source sends straight to
//! every destination. Covers the production-MPI-like baseline, the paper's
//! low-overhead randomized adaptive scheme (**AR**), deterministic
//! dimension-order routing (**DR**) and bisection-paced throttling.
//!
//! Injection pacing is no longer a program concern: rate-window
//! throttling is enforced by the engine from `SimConfig::flow` (see
//! [`bgl_sim::flow`]), which strategies populate from their
//! [`Pacer`](crate::Pacer). Under a credit-window pacer the program
//! reserves a credit per packet toward its destination and the receiver
//! acknowledges via small credit packets, bounding per-receiver memory.

use crate::workload::{destination_schedule, packetize, AaWorkload, PacketShape};
use bgl_model::MachineParams;
use bgl_sim::{NodeApi, NodeProgram, Packet, PacketMeta, PollHint, RoutingMode, SendSpec};
use bgl_torus::Partition;

/// Payload packet kind.
const KIND_DATA: u8 = 0;
/// Credit-acknowledgement packet kind (credit-window pacing only).
const KIND_CREDIT: u8 = 1;

/// Tuning of a direct strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectConfig {
    /// Adaptive (AR/MPI/throttled) or deterministic (DR) routing.
    pub routing: RoutingMode,
    /// Per-destination startup α in CPU cycles (charged on the first packet
    /// of each message). The AR runtime pays 450; the MPI stack more.
    pub alpha_cpu_cycles: f64,
    /// Packets sent per destination before moving on (overrides the
    /// workload value when set).
    pub packets_per_visit: Option<u32>,
}

impl DirectConfig {
    /// The paper's AR scheme: randomized order, adaptive routing, low α.
    pub fn ar(params: &MachineParams) -> DirectConfig {
        DirectConfig {
            routing: RoutingMode::Adaptive,
            alpha_cpu_cycles: params.alpha_direct_cycles,
            packets_per_visit: None,
        }
    }

    /// DR: same schedule but deterministic dimension-order routing on the
    /// bubble VC.
    pub fn dr(params: &MachineParams) -> DirectConfig {
        DirectConfig {
            routing: RoutingMode::Deterministic,
            ..DirectConfig::ar(params)
        }
    }

    /// Production-MPI-like baseline: adaptive, but with the MPI message
    /// machinery's higher per-destination overhead and the usual 2-packet
    /// tuning.
    pub fn mpi(params: &MachineParams) -> DirectConfig {
        DirectConfig {
            alpha_cpu_cycles: params.alpha_message_cycles,
            packets_per_visit: Some(2),
            ..DirectConfig::ar(params)
        }
    }
}

/// Per-node program implementing a direct all-to-all.
pub struct DirectProgram {
    rank: u32,
    schedule: Vec<u32>,
    shapes: Vec<PacketShape>,
    routing: RoutingMode,
    longest_first: bool,
    alpha_sim_cycles: f64,
    packets_per_visit: u32,
    // Iteration state: visit-major, destination-minor, packet within visit.
    visit: u32,
    n_visits: u32,
    idx: usize,
    in_visit: u32,
    done: bool,
}

impl DirectProgram {
    /// Build the program for `rank` on `part` under `workload`/`cfg`.
    pub fn new(
        rank: u32,
        part: &Partition,
        workload: &AaWorkload,
        cfg: &DirectConfig,
        params: &MachineParams,
    ) -> DirectProgram {
        let p = part.num_nodes();
        let dests = workload.dests_per_node(p);
        let schedule = destination_schedule(rank, p, dests, workload.seed);
        let shapes = packetize(
            workload.m_bytes,
            params.software_header_bytes,
            params.min_packet_bytes,
            params,
        );
        let k = cfg
            .packets_per_visit
            .unwrap_or(workload.packets_per_visit)
            .max(1);
        let n_visits = (shapes.len() as u32).div_ceil(k);
        let done = schedule.is_empty();
        DirectProgram {
            rank,
            schedule,
            shapes,
            routing: cfg.routing,
            // Hardware-faithful default: BG/L's adaptive routing has no
            // longest-dimension preference — that is exactly why asymmetric
            // tori degrade (Section 3.2). The hint-bit-style shaping is
            // available as an extension (see RouterConfig) and the
            // ablation suite shows it mitigates the collapse.
            longest_first: false,
            alpha_sim_cycles: cfg.alpha_cpu_cycles / params.cpu_cycles_per_sim_cycle(),
            packets_per_visit: k,
            visit: 0,
            n_visits,
            idx: 0,
            in_visit: 0,
            done,
        }
    }

    /// Total packets this node will inject.
    pub fn total_packets(&self) -> u64 {
        self.schedule.len() as u64 * self.shapes.len() as u64
    }

    fn current_packet_index(&self) -> Option<usize> {
        let i = (self.visit * self.packets_per_visit + self.in_visit) as usize;
        (i < self.shapes.len()).then_some(i)
    }

    fn advance(&mut self) {
        self.in_visit += 1;
        let exhausted_visit =
            self.in_visit >= self.packets_per_visit || self.current_packet_index().is_none();
        if exhausted_visit {
            self.in_visit = 0;
            self.idx += 1;
            if self.idx >= self.schedule.len() {
                self.idx = 0;
                self.visit += 1;
                if self.visit >= self.n_visits {
                    self.done = true;
                }
            }
        }
    }
}

impl NodeProgram for DirectProgram {
    /// Declines only while credit-blocked, and the credit ack arrives as
    /// a delivered packet — so sleeping until the next delivery is exact.
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if self.done {
            return None;
        }
        let pkt_i = self.current_packet_index()?;
        let dst = self.schedule[self.idx];
        // Under credit-window pacing the destination is the bounded
        // "intermediate": reserve a credit or retry once acks return.
        if !api.try_acquire_credit(dst) {
            return None;
        }
        let shape = self.shapes[pkt_i];
        let alpha = if pkt_i == 0 {
            self.alpha_sim_cycles
        } else {
            0.0
        };
        let spec = SendSpec {
            dst_rank: dst,
            chunks: shape.chunks,
            payload_bytes: shape.payload,
            routing: self.routing,
            class: 0,
            meta: PacketMeta {
                kind: KIND_DATA,
                a: 0,
                b: 0,
            },
            longest_first: self.longest_first,
            cpu_cost_cycles: alpha,
        };
        self.advance();
        Some(spec)
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        match pkt.meta.kind {
            KIND_DATA => {
                if let Some(n) = api.credit_receipt(pkt.src_rank) {
                    api.send(SendSpec {
                        dst_rank: pkt.src_rank,
                        chunks: 1,
                        payload_bytes: 0,
                        routing: self.routing,
                        class: 0,
                        meta: PacketMeta {
                            kind: KIND_CREDIT,
                            a: self.rank,
                            b: n,
                        },
                        longest_first: false,
                        cpu_cost_cycles: 0.0,
                    });
                }
            }
            KIND_CREDIT => api.apply_credit(pkt.meta.a, pkt.meta.b),
            other => panic!("direct program received unknown packet kind {other}"),
        }
    }

    fn is_complete(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_sim::{FlowLedger, FlowSpec};
    use std::collections::HashMap;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    fn drain_schedule(mut prog: DirectProgram, part: &Partition) -> Vec<SendSpec> {
        // Pull everything through a fake API.
        let mut out = Vec::new();
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, part, &mut q);
        while let Some(s) = prog.next_send(&mut api) {
            out.push(s);
            assert!(out.len() < 1_000_000, "program never completes");
        }
        assert!(prog.is_complete());
        out
    }

    #[test]
    fn sends_m_bytes_to_every_destination() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(500);
        let prog = DirectProgram::new(0, &part, &w, &DirectConfig::ar(&params()), &params());
        let sends = drain_schedule(prog, &part);
        let mut per_dest: HashMap<u32, u64> = HashMap::new();
        for s in &sends {
            *per_dest.entry(s.dst_rank).or_default() += s.payload_bytes as u64;
        }
        assert_eq!(per_dest.len(), 15);
        for (&d, &bytes) in &per_dest {
            assert_ne!(d, 0);
            assert_eq!(bytes, 500, "destination {d}");
        }
    }

    #[test]
    fn alpha_charged_once_per_destination() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(1000); // several packets per destination
        let prog = DirectProgram::new(3, &part, &w, &DirectConfig::ar(&params()), &params());
        let sends = drain_schedule(prog, &part);
        let charged: usize = sends.iter().filter(|s| s.cpu_cost_cycles > 0.0).count();
        assert_eq!(charged, 15);
    }

    #[test]
    fn packets_per_visit_interleaves_destinations() {
        let part: Partition = "8x1x1".parse().unwrap();
        let w = AaWorkload::full(1000); // 5 packets per message
        let mut cfg = DirectConfig::ar(&params());
        cfg.packets_per_visit = Some(1);
        let prog = DirectProgram::new(0, &part, &w, &cfg, &params());
        let sends = drain_schedule(prog, &part);
        // With k=1: first 7 sends go to 7 distinct destinations.
        let first: std::collections::HashSet<u32> = sends[..7].iter().map(|s| s.dst_rank).collect();
        assert_eq!(first.len(), 7);
        // 5 rounds × 7 destinations.
        assert_eq!(sends.len(), 35);
    }

    #[test]
    fn dr_uses_deterministic_routing() {
        let part: Partition = "8x1x1".parse().unwrap();
        let w = AaWorkload::full(100);
        let prog = DirectProgram::new(0, &part, &w, &DirectConfig::dr(&params()), &params());
        let sends = drain_schedule(prog, &part);
        assert!(sends
            .iter()
            .all(|s| s.routing == RoutingMode::Deterministic));
    }

    #[test]
    fn mpi_baseline_pays_more_alpha() {
        let p = params();
        let ar = DirectConfig::ar(&p);
        let mpi = DirectConfig::mpi(&p);
        assert!(mpi.alpha_cpu_cycles > ar.alpha_cpu_cycles);
        assert_eq!(mpi.packets_per_visit, Some(2));
    }

    #[test]
    fn credit_window_blocks_until_ack_returns() {
        let part: Partition = "8x1x1".parse().unwrap();
        let w = AaWorkload::full(1000); // 5 packets per destination
        let mut cfg = DirectConfig::ar(&params());
        cfg.packets_per_visit = Some(u32::MAX); // whole message per visit
        let mut prog = DirectProgram::new(0, &part, &w, &cfg, &params());
        let mut ledger = FlowLedger::new(FlowSpec::Credit {
            window_packets: 2,
            credit_every: 1,
        });
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, &part, &mut q).with_flow(&mut ledger);
        // Two packets to the first destination fit the window; the third
        // must block.
        let first = prog.next_send(&mut api).expect("first send");
        assert!(prog.next_send(&mut api).is_some());
        assert!(prog.next_send(&mut api).is_none(), "window of 2 must close");
        assert!(!prog.is_complete());
        // A credit ack from that destination reopens the window.
        let credit = Packet {
            id: 0,
            src_rank: first.dst_rank,
            dst: part.coord_of(0),
            chunks: 1,
            payload_bytes: 0,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(first.dst_rank),
                part.coord_of(0),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: 0,
            meta: PacketMeta {
                kind: KIND_CREDIT,
                a: first.dst_rank,
                b: 1,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        prog.on_packet(&mut api, &credit);
        assert!(
            prog.next_send(&mut api).is_some(),
            "credit must reopen the window"
        );
    }

    #[test]
    fn receiver_acks_every_quantum() {
        let part: Partition = "8x1x1".parse().unwrap();
        let w = AaWorkload::full(240);
        let mut prog = DirectProgram::new(1, &part, &w, &DirectConfig::ar(&params()), &params());
        let mut ledger = FlowLedger::new(FlowSpec::Credit {
            window_packets: 4,
            credit_every: 2,
        });
        let mut q = std::collections::VecDeque::new();
        let data = Packet {
            id: 0,
            src_rank: 5,
            dst: part.coord_of(1),
            chunks: 8,
            payload_bytes: 240,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(5),
                part.coord_of(1),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: 0,
            meta: PacketMeta {
                kind: KIND_DATA,
                a: 0,
                b: 0,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        {
            let mut api =
                NodeApi::new(1, part.coord_of(1), 0, &part, &mut q).with_flow(&mut ledger);
            prog.on_packet(&mut api, &data);
            assert_eq!(api.queued(), 0, "no ack before the quantum fills");
            prog.on_packet(&mut api, &data);
        }
        assert_eq!(q.len(), 1, "second receipt triggers the ack");
        let ack = &q[0];
        assert_eq!(ack.dst_rank, 5);
        assert_eq!(ack.meta.kind, KIND_CREDIT);
        assert_eq!(ack.meta.a, 1);
        assert_eq!(ack.meta.b, 2);
    }

    #[test]
    fn sampled_coverage_reduces_schedule() {
        let part: Partition = "16x16".parse().unwrap();
        let w = AaWorkload::sampled(100, 0.25);
        let prog = DirectProgram::new(0, &part, &w, &DirectConfig::ar(&params()), &params());
        assert_eq!(prog.schedule.len(), 64);
    }
}
