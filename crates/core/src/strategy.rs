//! Strategy selection and the all-to-all runner: build per-node programs,
//! configure the simulator, run, and report percent-of-peak.

use crate::direct::{DirectConfig, DirectProgram};
use crate::flow::{CreditConfig, Pacer};
use crate::tps::{tps_inj_class_masks, TpsConfig, TpsProgram};
use crate::vmesh::{VmeshConfig, VmeshProgram};
use crate::workload::AaWorkload;
use bgl_model::MachineParams;
use bgl_sim::{Engine, NetStats, NodeProgram, SimConfig, SimError};
use bgl_torus::{AaLoadAnalysis, Dim, Partition, VmeshLayout};

/// The all-to-all strategies of the paper (plus automatic selection).
///
/// Every concrete strategy carries a [`Pacer`] describing its injection
/// flow control; construct the common combinations through
/// [`StrategyKind::ar`], [`StrategyKind::throttled`],
/// [`StrategyKind::tps`] and friends, and attach a pacer to any strategy
/// with [`StrategyKind::with_pacer`].
///
/// `Eq`/`Hash` are implemented manually (the pacer's rate factor is
/// hashed by bit pattern) so a strategy can key caches and deduplicated
/// run sets; a NaN factor is not meaningful and must not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyKind {
    /// Production-MPI-like randomized direct baseline.
    MpiBaseline {
        /// Injection flow control.
        pacer: Pacer,
    },
    /// The paper's low-overhead randomized adaptive direct scheme (AR).
    /// With [`Pacer::RateWindow`] this is the historical
    /// "ThrottledAdaptive" strategy: injection paced at `factor ×` the
    /// bisection-peak rate.
    AdaptiveRandomized {
        /// Injection flow control.
        pacer: Pacer,
    },
    /// Deterministic dimension-order direct scheme (DR).
    DeterministicRouted {
        /// Injection flow control.
        pacer: Pacer,
    },
    /// Two Phase Schedule (Section 4.1). A [`Pacer::CreditWindow`]
    /// bounds per-intermediate memory (the paper's future-work credit
    /// flow control).
    TwoPhaseSchedule {
        /// Phase-1 dimension (`None` = automatic).
        linear: Option<Dim>,
        /// Injection flow control.
        pacer: Pacer,
    },
    /// Virtual-mesh message combining (Section 4.2). A
    /// [`Pacer::CreditWindow`] bounds phase-1 reception memory, which is
    /// what lets full-coverage runs survive large asymmetric tori.
    VirtualMesh {
        /// Row/column factorization.
        layout: VmeshLayout,
        /// Injection flow control.
        pacer: Pacer,
    },
    /// Three-phase XYZ software routing (the HPCC-Randomaccess-style
    /// scheme Section 4.1 contrasts TPS against: two forwarding phases
    /// instead of one).
    XyzRouting {
        /// Injection flow control.
        pacer: Pacer,
    },
    /// The paper's recommendation: VMesh below the combining crossover,
    /// a direct scheme on symmetric tori, TPS on asymmetric partitions.
    Auto,
}

impl Eq for StrategyKind {}

impl std::hash::Hash for StrategyKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            StrategyKind::MpiBaseline { pacer }
            | StrategyKind::AdaptiveRandomized { pacer }
            | StrategyKind::DeterministicRouted { pacer }
            | StrategyKind::XyzRouting { pacer } => pacer.hash(state),
            StrategyKind::TwoPhaseSchedule { linear, pacer } => {
                linear.hash(state);
                pacer.hash(state);
            }
            StrategyKind::VirtualMesh { layout, pacer } => {
                layout.hash(state);
                pacer.hash(state);
            }
            StrategyKind::Auto => {}
        }
    }
}

/// Wire format: the historical encodings are preserved exactly so stored
/// run keys and golden fingerprints survive the pacer refactor. Unpaced
/// strategies serialize as bare variant names, AR with a rate window as
/// the old `ThrottledAdaptive { factor }` form, and TPS's credit window
/// as the old `credit: Option<CreditConfig>` field; only combinations
/// that could not be expressed before gain a `pacer` field.
impl serde::Serialize for StrategyKind {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        fn unit_or_paced(name: &str, pacer: &Pacer) -> Value {
            if pacer.is_unpaced() {
                Value::Str(name.to_string())
            } else {
                Value::Object(vec![(
                    name.to_string(),
                    Value::Object(vec![("pacer".to_string(), pacer.to_value())]),
                )])
            }
        }
        match self {
            StrategyKind::MpiBaseline { pacer } => unit_or_paced("MpiBaseline", pacer),
            StrategyKind::AdaptiveRandomized {
                pacer: Pacer::RateWindow { factor },
            } => Value::Object(vec![(
                "ThrottledAdaptive".to_string(),
                Value::Object(vec![("factor".to_string(), factor.to_value())]),
            )]),
            StrategyKind::AdaptiveRandomized { pacer } => {
                unit_or_paced("AdaptiveRandomized", pacer)
            }
            StrategyKind::DeterministicRouted { pacer } => {
                unit_or_paced("DeterministicRouted", pacer)
            }
            StrategyKind::TwoPhaseSchedule { linear, pacer } => {
                let mut fields = vec![("linear".to_string(), linear.to_value())];
                match pacer {
                    Pacer::Unpaced => fields.push(("credit".to_string(), Value::Null)),
                    Pacer::CreditWindow { credit } => {
                        fields.push(("credit".to_string(), credit.to_value()))
                    }
                    rate => fields.push(("pacer".to_string(), rate.to_value())),
                }
                Value::Object(vec![(
                    "TwoPhaseSchedule".to_string(),
                    Value::Object(fields),
                )])
            }
            StrategyKind::VirtualMesh { layout, pacer } => {
                let mut fields = vec![("layout".to_string(), layout.to_value())];
                if !pacer.is_unpaced() {
                    fields.push(("pacer".to_string(), pacer.to_value()));
                }
                Value::Object(vec![("VirtualMesh".to_string(), Value::Object(fields))])
            }
            StrategyKind::XyzRouting { pacer } => unit_or_paced("XyzRouting", pacer),
            StrategyKind::Auto => Value::Str("Auto".to_string()),
        }
    }
}

impl serde::Deserialize for StrategyKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::Value;
        fn opt_pacer(inner: &Value) -> Result<Pacer, serde::Error> {
            Ok(serde::de_field::<Option<Pacer>>(inner, "pacer")?.unwrap_or_default())
        }
        match v {
            Value::Str(s) => match s.as_str() {
                "MpiBaseline" => Ok(StrategyKind::mpi()),
                "AdaptiveRandomized" => Ok(StrategyKind::ar()),
                "DeterministicRouted" => Ok(StrategyKind::dr()),
                "XyzRouting" => Ok(StrategyKind::xyz()),
                "Auto" => Ok(StrategyKind::Auto),
                other => Err(serde::Error::custom(format!(
                    "unknown variant `{other}` of StrategyKind"
                ))),
            },
            Value::Object(fields) if fields.len() == 1 => {
                let (variant, inner) = &fields[0];
                match variant.as_str() {
                    "MpiBaseline" => Ok(StrategyKind::MpiBaseline {
                        pacer: opt_pacer(inner)?,
                    }),
                    "AdaptiveRandomized" => Ok(StrategyKind::AdaptiveRandomized {
                        pacer: opt_pacer(inner)?,
                    }),
                    "DeterministicRouted" => Ok(StrategyKind::DeterministicRouted {
                        pacer: opt_pacer(inner)?,
                    }),
                    "ThrottledAdaptive" => {
                        Ok(StrategyKind::throttled(serde::de_field(inner, "factor")?))
                    }
                    "XyzRouting" => Ok(StrategyKind::XyzRouting {
                        pacer: opt_pacer(inner)?,
                    }),
                    "TwoPhaseSchedule" => {
                        let pacer = match serde::de_field::<Option<Pacer>>(inner, "pacer")? {
                            Some(p) => p,
                            None => {
                                match serde::de_field::<Option<CreditConfig>>(inner, "credit")? {
                                    Some(credit) => Pacer::CreditWindow { credit },
                                    None => Pacer::Unpaced,
                                }
                            }
                        };
                        Ok(StrategyKind::TwoPhaseSchedule {
                            linear: serde::de_field(inner, "linear")?,
                            pacer,
                        })
                    }
                    "VirtualMesh" => Ok(StrategyKind::VirtualMesh {
                        layout: serde::de_field(inner, "layout")?,
                        pacer: opt_pacer(inner)?,
                    }),
                    other => Err(serde::Error::custom(format!(
                        "unknown variant `{other}` of StrategyKind"
                    ))),
                }
            }
            other => Err(serde::Error::custom(format!(
                "expected StrategyKind, got {other:?}"
            ))),
        }
    }
}

impl StrategyKind {
    /// Unpaced MPI-like baseline.
    pub fn mpi() -> StrategyKind {
        StrategyKind::MpiBaseline {
            pacer: Pacer::Unpaced,
        }
    }

    /// Unpaced AR.
    pub fn ar() -> StrategyKind {
        StrategyKind::AdaptiveRandomized {
            pacer: Pacer::Unpaced,
        }
    }

    /// Unpaced DR.
    pub fn dr() -> StrategyKind {
        StrategyKind::DeterministicRouted {
            pacer: Pacer::Unpaced,
        }
    }

    /// Unpaced XYZ routing.
    pub fn xyz() -> StrategyKind {
        StrategyKind::XyzRouting {
            pacer: Pacer::Unpaced,
        }
    }

    /// AR paced at `factor ×` the bisection-peak injection rate (the
    /// historical "ThrottledAdaptive" strategy).
    pub fn throttled(factor: f64) -> StrategyKind {
        StrategyKind::AdaptiveRandomized {
            pacer: Pacer::rate(factor),
        }
    }

    /// TPS with automatic linear dimension, unpaced.
    pub fn tps() -> StrategyKind {
        StrategyKind::TwoPhaseSchedule {
            linear: None,
            pacer: Pacer::Unpaced,
        }
    }

    /// TPS with an explicit linear dimension and pacer.
    pub fn tps_with(linear: Option<Dim>, pacer: Pacer) -> StrategyKind {
        StrategyKind::TwoPhaseSchedule { linear, pacer }
    }

    /// VMesh with automatic layout, unpaced.
    pub fn vmesh() -> StrategyKind {
        StrategyKind::VirtualMesh {
            layout: VmeshLayout::Auto,
            pacer: Pacer::Unpaced,
        }
    }

    /// VMesh with an explicit layout, unpaced.
    pub fn vmesh_with(layout: VmeshLayout) -> StrategyKind {
        StrategyKind::VirtualMesh {
            layout,
            pacer: Pacer::Unpaced,
        }
    }

    /// The same strategy with `pacer` attached.
    ///
    /// # Panics
    ///
    /// [`StrategyKind::Auto`] carries no pacer (the resolved strategy
    /// decides); attaching one panics.
    pub fn with_pacer(self, pacer: Pacer) -> StrategyKind {
        match self {
            StrategyKind::MpiBaseline { .. } => StrategyKind::MpiBaseline { pacer },
            StrategyKind::AdaptiveRandomized { .. } => StrategyKind::AdaptiveRandomized { pacer },
            StrategyKind::DeterministicRouted { .. } => StrategyKind::DeterministicRouted { pacer },
            StrategyKind::TwoPhaseSchedule { linear, .. } => {
                StrategyKind::TwoPhaseSchedule { linear, pacer }
            }
            StrategyKind::VirtualMesh { layout, .. } => StrategyKind::VirtualMesh { layout, pacer },
            StrategyKind::XyzRouting { .. } => StrategyKind::XyzRouting { pacer },
            StrategyKind::Auto => panic!("Auto resolves to a concrete strategy; pace that instead"),
        }
    }

    /// The strategy's pacer ([`Pacer::Unpaced`] for `Auto`).
    pub fn pacer(&self) -> Pacer {
        match self {
            StrategyKind::MpiBaseline { pacer }
            | StrategyKind::AdaptiveRandomized { pacer }
            | StrategyKind::DeterministicRouted { pacer }
            | StrategyKind::TwoPhaseSchedule { pacer, .. }
            | StrategyKind::VirtualMesh { pacer, .. }
            | StrategyKind::XyzRouting { pacer } => *pacer,
            StrategyKind::Auto => Pacer::Unpaced,
        }
    }

    /// Canonical short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::MpiBaseline { .. } => "MPI",
            StrategyKind::AdaptiveRandomized {
                pacer: Pacer::RateWindow { .. },
            } => "AR-throttled",
            StrategyKind::AdaptiveRandomized { .. } => "AR",
            StrategyKind::DeterministicRouted { .. } => "DR",
            StrategyKind::TwoPhaseSchedule { .. } => "TPS",
            StrategyKind::VirtualMesh { .. } => "VMesh",
            StrategyKind::XyzRouting { .. } => "XYZ",
            StrategyKind::Auto => "Auto",
        }
    }

    /// Resolve `Auto` to a concrete strategy for `(part, m)`; concrete
    /// strategies return themselves.
    pub fn resolve(&self, part: &Partition, m: u64) -> StrategyKind {
        match self {
            StrategyKind::Auto => crate::select::auto_select(part, m, &MachineParams::bgl()),
            other => other.clone(),
        }
    }

    /// Dimensionalities this strategy's schedule is defined for, as an
    /// inclusive range. The two-phase indirect schedules (TPS factors the
    /// torus into a linear dimension × orthogonal planes, VMesh into
    /// rows × columns) are 3-D constructions; every direct scheme and the
    /// XYZ software router generalize to any arity the topology supports.
    /// `Auto` only ever resolves to a supported schedule, so it accepts
    /// everything.
    pub fn supported_dims(&self) -> std::ops::RangeInclusive<usize> {
        match self {
            StrategyKind::TwoPhaseSchedule { .. } | StrategyKind::VirtualMesh { .. } => 1..=3,
            _ => 1..=bgl_torus::MAX_DIMS,
        }
    }

    /// `Ok` iff this strategy supports `part`'s dimensionality; otherwise
    /// the [`SimError::UnsupportedDims`] that a run would return. Checked
    /// before any simulation state is built, so an unsupported pairing
    /// fails fast instead of hanging or panicking mid-run.
    pub fn check_dims(&self, part: &Partition) -> Result<(), SimError> {
        let supported = self.supported_dims();
        if supported.contains(&part.ndims()) {
            Ok(())
        } else {
            Err(SimError::UnsupportedDims {
                what: self.name(),
                ndims: part.ndims(),
                max_dims: *supported.end(),
            })
        }
    }
}

/// Result of one all-to-all run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AaReport {
    /// The partition.
    pub partition: Partition,
    /// The workload.
    pub workload: AaWorkload,
    /// Strategy actually run (Auto resolved).
    pub strategy: StrategyKind,
    /// Completion time in simulator cycles.
    pub cycles: u64,
    /// Equation-2 peak time (for the sampled traffic) in cycles.
    pub peak_cycles: f64,
    /// `100 · peak / measured`.
    pub percent_of_peak: f64,
    /// Wall-clock completion time in seconds (β-based conversion).
    pub time_secs: f64,
    /// Achieved per-node send bandwidth, bytes/second.
    pub per_node_bandwidth: f64,
    /// Raw simulator statistics.
    pub stats: NetStats,
    /// Time-series trace, present iff `SimConfig::trace` was set (see
    /// [`bgl_sim::trace`]). Purely observational: `stats` is
    /// byte-identical whether or not a trace was recorded.
    pub trace: Option<bgl_sim::Trace>,
    /// Host-side wall-clock profile, present iff `SimConfig::perf` was
    /// set (see [`bgl_sim::perf`]). Like the trace, purely observational:
    /// `stats` is byte-identical with profiling on or off. Host times are
    /// machine-dependent by nature, so this field never participates in
    /// golden fingerprints or run-cache identity.
    pub perf: Option<bgl_sim::PerfProfile>,
}

/// A fully specified all-to-all run; build one with [`AaRun::builder`].
///
/// The builder is the one typed entry point through which strategy code,
/// experiments and binaries construct runs:
///
/// ```
/// use bgl_core::{AaRun, AaWorkload, StrategyKind};
///
/// let part = "4x4".parse().unwrap();
/// let report = AaRun::builder(part, AaWorkload::full(240))
///     .strategy(StrategyKind::ar())
///     .sim(|cfg| cfg.router.vc_fifo_chunks = 64)
///     .run()
///     .unwrap();
/// assert!(report.cycles > 0);
/// ```
pub struct AaRun {
    part: Partition,
    workload: AaWorkload,
    strategy: StrategyKind,
    params: MachineParams,
    config: SimConfig,
}

/// A queued simulator-configuration tweak; see [`AaRunBuilder::sim`].
type ConfigTweak = Box<dyn FnOnce(&mut SimConfig)>;

/// Builder for [`AaRun`]; see [`AaRun::builder`].
pub struct AaRunBuilder {
    part: Partition,
    workload: AaWorkload,
    strategy: StrategyKind,
    params: Option<MachineParams>,
    config: Option<SimConfig>,
    tweaks: Vec<ConfigTweak>,
}

impl AaRun {
    /// Start building a run of `workload` on `part`. Defaults: strategy
    /// [`StrategyKind::Auto`], BG/L machine parameters, the default
    /// simulator configuration for `part`.
    pub fn builder(part: Partition, workload: AaWorkload) -> AaRunBuilder {
        AaRunBuilder {
            part,
            workload,
            strategy: StrategyKind::Auto,
            params: None,
            config: None,
            tweaks: Vec::new(),
        }
    }

    /// Execute the run.
    pub fn run(self) -> Result<AaReport, SimError> {
        execute(
            self.part,
            &self.workload,
            &self.strategy,
            &self.params,
            Some(self.config),
        )
    }
}

impl AaRunBuilder {
    /// Set the strategy (default [`StrategyKind::Auto`]).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Attach a pacer to the current strategy (see
    /// [`StrategyKind::with_pacer`]).
    pub fn pacer(mut self, pacer: Pacer) -> Self {
        self.strategy = self.strategy.with_pacer(pacer);
        self
    }

    /// Set the machine parameters (default [`MachineParams::bgl`]).
    pub fn params(mut self, params: MachineParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Replace the base simulator configuration wholesale (default
    /// `SimConfig::new(part)`). Tweaks queued via [`Self::sim`] are still
    /// applied on top.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Queue a simulator-configuration tweak (FIFO depths, CPU model,
    /// ablation switches). Tweaks run in the order added, after the base
    /// configuration is in place.
    pub fn sim(mut self, tweak: impl FnOnce(&mut SimConfig) + 'static) -> Self {
        self.tweaks.push(Box::new(tweak));
        self
    }

    /// Set the workload seed (destination-order randomization).
    pub fn seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Finalize into an [`AaRun`].
    pub fn build(self) -> AaRun {
        let mut config = self.config.unwrap_or_else(|| SimConfig::new(self.part));
        for tweak in self.tweaks {
            tweak(&mut config);
        }
        AaRun {
            part: self.part,
            workload: self.workload,
            strategy: self.strategy,
            params: self.params.unwrap_or_else(MachineParams::bgl),
            config,
        }
    }

    /// Finalize and execute in one step.
    pub fn run(self) -> Result<AaReport, SimError> {
        self.build().run()
    }
}

/// Run an all-to-all of `workload` on `part` with `strategy`.
///
/// `base` lets callers tweak the simulator (FIFO depths, CPU model,
/// ablations); pass `SimConfig::new(part)` for the defaults. Strategy
/// requirements (TPS injection-FIFO reservation, the strategy's pacer)
/// are applied on top. Equivalent to the [`AaRun::builder`] chain with
/// an explicit config.
pub fn run_aa(
    part: Partition,
    workload: &AaWorkload,
    strategy: &StrategyKind,
    params: &MachineParams,
    base: SimConfig,
) -> Result<AaReport, SimError> {
    execute(part, workload, strategy, params, Some(base))
}

fn execute(
    part: Partition,
    workload: &AaWorkload,
    strategy: &StrategyKind,
    params: &MachineParams,
    config: Option<SimConfig>,
) -> Result<AaReport, SimError> {
    let mut base = config.unwrap_or_else(|| SimConfig::new(part));
    let strategy = strategy.resolve(&part, workload.m_bytes);
    strategy.check_dims(&part)?;
    let p = part.num_nodes();
    assert!(p >= 2, "all-to-all needs at least two nodes");
    base.partition = part;

    // The strategy's pacer becomes the engine-enforced flow spec. An
    // unpaced strategy leaves `base.flow` alone so ablations can still
    // set `SimConfig::flow` directly.
    let pacer = strategy.pacer();
    if !pacer.is_unpaced() {
        base.flow = pacer.resolve(peak_injection_rate(&part, workload, params));
    }

    // Deterministic routing has no freedom to steer around a dead link:
    // if a link that is dead from cycle 0 and never recovers sits on any
    // source→destination dimension-ordered path, the run can only end in
    // a watchdog timeout. Report the unreachable pairs up front instead
    // of simulating until the watchdog fires.
    if matches!(&strategy, StrategyKind::DeterministicRouted { .. }) {
        if let Some(err) = dr_static_preflight(&part, workload, &base.fault, params) {
            return Err(err);
        }
    }

    let programs: Vec<Box<dyn NodeProgram>> = match &strategy {
        StrategyKind::MpiBaseline { .. } => {
            build_direct(&part, workload, &DirectConfig::mpi(params), params)
        }
        StrategyKind::AdaptiveRandomized { .. } => {
            build_direct(&part, workload, &DirectConfig::ar(params), params)
        }
        StrategyKind::DeterministicRouted { .. } => {
            build_direct(&part, workload, &DirectConfig::dr(params), params)
        }
        StrategyKind::TwoPhaseSchedule { linear, .. } => {
            base.inj_class_masks = tps_inj_class_masks(base.inj_fifo_count);
            let cfg = TpsConfig { linear: *linear };
            (0..p)
                .map(|r| {
                    Box::new(TpsProgram::new(r, &part, workload, &cfg, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::VirtualMesh { layout, .. } => {
            let cfg = VmeshConfig {
                layout: *layout,
                ..VmeshConfig::default()
            };
            (0..p)
                .map(|r| {
                    Box::new(VmeshProgram::new(r, &part, workload, &cfg, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::XyzRouting { .. } => {
            base.inj_class_masks =
                crate::xyz::xyz_inj_class_masks(base.inj_fifo_count, part.ndims());
            (0..p)
                .map(|r| {
                    Box::new(crate::xyz::XyzProgram::new(r, &part, workload, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::Auto => unreachable!("Auto resolved above"),
    };

    let mut engine = Engine::new(base, programs);
    let stats = engine.run()?;
    let trace = engine.take_trace();
    let perf = engine.take_perf();
    let peak_cycles = peak_cycles_for(&part, workload, params);
    let cycles = stats.completion_cycle;
    let time_secs = cycles as f64 * params.secs_per_sim_cycle();
    let sent_per_node = workload.dests_per_node(p) as u64 * workload.m_bytes;
    Ok(AaReport {
        partition: part,
        workload: workload.clone(),
        strategy,
        cycles,
        peak_cycles,
        percent_of_peak: bgl_model::percent_of_peak(peak_cycles, cycles as f64),
        time_secs,
        per_node_bandwidth: if time_secs > 0.0 {
            sent_per_node as f64 / time_secs
        } else {
            0.0
        },
        stats,
        trace,
        perf,
    })
}

/// Static-fault reachability preflight for deterministic routing: walk
/// every scheduled source→destination pair's X→Y→Z path against the
/// links that are dead from cycle 0 and never recover, and turn any hit
/// into [`SimError::Unreachable`] at cycle 0 with a per-fault breakdown
/// of how many packets each dead link strands. Scheduled (mid-run) or
/// recovering faults are left to the engine's watchdog classification —
/// whether those runs complete depends on timing, not topology.
fn dr_static_preflight(
    part: &Partition,
    workload: &AaWorkload,
    plan: &bgl_sim::FaultPlan,
    params: &MachineParams,
) -> Option<SimError> {
    use bgl_torus::{DimensionOrder, Direction, TieBreak};
    if plan.is_empty() {
        return None;
    }
    let ports = part.ports();
    let mut dead = vec![false; part.num_nodes() as usize * ports];
    let mut any = false;
    for s in plan.link_schedules(part) {
        if s.fail_at == 0 && s.recover_at.is_none() {
            dead[s.link] = true;
            any = true;
        }
    }
    if !any {
        return None;
    }
    let p = part.num_nodes();
    let dests = workload.dests_per_node(p);
    let pkts_per_pair = crate::workload::packetize(
        workload.m_bytes,
        params.software_header_bytes,
        params.min_packet_bytes,
        params,
    )
    .len() as u64;
    let mut blocked: std::collections::BTreeMap<(u32, Direction), u64> =
        std::collections::BTreeMap::new();
    let mut stranded = 0u64;
    for src in 0..p {
        let here = part.coord_of(src);
        for dst in crate::workload::destination_schedule(src, p, dests, workload.seed) {
            let hit = DimensionOrder::first_blocked(
                part,
                here,
                part.coord_of(dst),
                TieBreak::SrcParity,
                |r, d| dead[r as usize * ports + d.index()],
            );
            if let Some((rank, dir)) = hit {
                *blocked.entry((rank, dir)).or_insert(0) += pkts_per_pair;
                stranded += pkts_per_pair;
            }
        }
    }
    if stranded == 0 {
        return None;
    }
    Some(SimError::Unreachable {
        cycle: 0,
        blocked_packets: stranded,
        faults: blocked
            .into_iter()
            .map(|((node, dir), n)| bgl_sim::FaultBlock {
                node,
                dir,
                blocked: n,
            })
            .collect(),
    })
}

fn build_direct(
    part: &Partition,
    workload: &AaWorkload,
    cfg: &DirectConfig,
    params: &MachineParams,
) -> Vec<Box<dyn NodeProgram>> {
    (0..part.num_nodes())
        .map(|r| {
            Box::new(DirectProgram::new(r, part, workload, cfg, params)) as Box<dyn NodeProgram>
        })
        .collect()
}

/// Equation-2 peak time, in cycles, for the (possibly sampled) workload.
///
/// The peak moves `m` *payload* bytes per pair across the bottleneck links
/// at the full-packet payload rate (240 B per 8 cycles): the measured β the
/// paper computes its peak with already amortizes the per-packet link
/// overhead, so a run whose links carry back-to-back full packets scores
/// 100 %.
pub fn peak_cycles_for(part: &Partition, workload: &AaWorkload, params: &MachineParams) -> f64 {
    let analysis = AaLoadAnalysis::new(*part);
    analysis.peak_time_byte_times(workload.m_bytes) * workload.effective_fraction(part.num_nodes())
        / params.payload_bytes_per_cycle()
}

/// Per-node injection rate (chunks/cycle) at which the network runs exactly
/// at its bisection peak — the rate-window pacer's reference rate.
pub fn peak_injection_rate(part: &Partition, workload: &AaWorkload, params: &MachineParams) -> f64 {
    let p = part.num_nodes();
    let peak = peak_cycles_for(part, workload, params);
    let shapes = crate::workload::packetize(
        workload.m_bytes,
        params.software_header_bytes,
        params.min_packet_bytes,
        params,
    );
    let chunks_per_node =
        workload.dests_per_node(p) as f64 * crate::workload::total_chunks(&shapes) as f64;
    if peak > 0.0 {
        chunks_per_node / peak
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    fn quick(part: &str, m: u64, strategy: StrategyKind) -> AaReport {
        let part: Partition = part.parse().unwrap();
        let w = AaWorkload::full(m);
        run_aa(part, &w, &strategy, &params(), SimConfig::new(part)).unwrap()
    }

    #[test]
    fn ar_on_a_line_delivers_everything() {
        let r = quick("8x1x1", 240, StrategyKind::ar());
        assert_eq!(r.stats.packets_delivered, r.stats.packets_injected);
        assert_eq!(r.stats.payload_bytes_delivered, 8 * 7 * 240);
        assert!(r.percent_of_peak > 40.0, "{}", r.percent_of_peak);
        assert!(r.percent_of_peak <= 101.0, "{}", r.percent_of_peak);
    }

    #[test]
    fn dr_on_a_line_delivers_everything() {
        let r = quick("8x1x1", 240, StrategyKind::dr());
        assert_eq!(r.stats.payload_bytes_delivered, 8 * 7 * 240);
        // DR rides the bubble VC exclusively.
        assert_eq!(r.stats.dynamic_hops, 0);
        assert!(r.stats.bubble_hops > 0);
    }

    #[test]
    fn tps_on_small_torus_delivers_everything() {
        let r = quick("4x2x2", 240, StrategyKind::tps());
        // Payload is delivered once via phase 1/direct and once more after
        // forwarding, so delivered bytes ≥ the application total.
        assert!(r.stats.payload_bytes_delivered >= 16 * 15 * 240);
        assert!(r.cycles > 0);
    }

    #[test]
    fn tps_with_credit_flow_control_completes() {
        let r = quick(
            "4x2x2",
            960,
            StrategyKind::tps().with_pacer(Pacer::credit(4, 2)),
        );
        assert!(r.cycles > 0);
        assert!(
            r.stats.credit_blocked_events > 0,
            "a 4-packet window on a 960-byte message must close at least once"
        );
    }

    #[test]
    fn vmesh_on_small_plane_completes() {
        let r = quick("4x4", 8, StrategyKind::vmesh());
        assert!(r.cycles > 0);
        assert_eq!(r.stats.packets_delivered, r.stats.packets_injected);
    }

    #[test]
    fn vmesh_with_credit_window_completes() {
        let r = quick(
            "4x4",
            64,
            StrategyKind::vmesh().with_pacer(Pacer::credit(2, 1)),
        );
        assert!(r.cycles > 0);
        // Credit acks ride the network as extra packets; the payload still
        // arrives in full.
        let unpaced = quick("4x4", 64, StrategyKind::vmesh());
        assert_eq!(
            r.stats.payload_bytes_delivered,
            unpaced.stats.payload_bytes_delivered
        );
    }

    #[test]
    fn xyz_with_credit_window_completes() {
        let r = quick(
            "4x2x2",
            480,
            StrategyKind::xyz().with_pacer(Pacer::credit(2, 1)),
        );
        let unpaced = quick("4x2x2", 480, StrategyKind::xyz());
        assert_eq!(
            r.stats.payload_bytes_delivered,
            unpaced.stats.payload_bytes_delivered
        );
    }

    #[test]
    fn throttled_completes_and_is_not_faster_than_ar() {
        let ar = quick("4x4x2", 480, StrategyKind::ar());
        let th = quick("4x4x2", 480, StrategyKind::throttled(1.0));
        assert_eq!(
            th.stats.payload_bytes_delivered,
            ar.stats.payload_bytes_delivered
        );
        assert!(
            th.stats.pacing_blocked_cycles > 0,
            "pacing at the peak rate must block at least one pull"
        );
        // Pacing at the peak rate can't beat the unthrottled run by much.
        assert!(th.cycles as f64 >= ar.cycles as f64 * 0.5);
    }

    #[test]
    fn mpi_baseline_is_slower_than_ar_for_short_messages() {
        let ar = quick("4x4", 64, StrategyKind::ar());
        let mpi = quick("4x4", 64, StrategyKind::mpi());
        assert!(
            mpi.cycles > ar.cycles,
            "MPI {} vs AR {}",
            mpi.cycles,
            ar.cycles
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = quick("4x4", 240, StrategyKind::ar());
        let b = quick("4x4", 240, StrategyKind::ar());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn sampled_workload_peak_scales() {
        let part: Partition = "8x8".parse().unwrap();
        let full = AaWorkload::full(240);
        let half = AaWorkload::sampled(240, 0.5);
        let pf = peak_cycles_for(&part, &full, &params());
        let ph = peak_cycles_for(&part, &half, &params());
        // 63 destinations at full coverage, round(31.5) = 32 at half.
        assert!((pf / ph - 63.0 / 32.0).abs() < 0.01, "{pf} {ph}");
    }

    #[test]
    fn builder_matches_run_aa() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(240);
        let s = StrategyKind::ar();
        let direct = run_aa(part, &w, &s, &params(), SimConfig::new(part)).unwrap();
        let built = AaRun::builder(part, w)
            .strategy(s)
            .params(params())
            .run()
            .unwrap();
        assert_eq!(direct.cycles, built.cycles);
        assert_eq!(direct.stats, built.stats);
    }

    #[test]
    fn builder_pacer_matches_throttled_constructor() {
        let part: Partition = "4x4".parse().unwrap();
        let via_builder = AaRun::builder(part, AaWorkload::full(480))
            .strategy(StrategyKind::ar())
            .pacer(Pacer::rate(1.0))
            .run()
            .unwrap();
        let via_ctor = AaRun::builder(part, AaWorkload::full(480))
            .strategy(StrategyKind::throttled(1.0))
            .run()
            .unwrap();
        assert_eq!(via_builder.cycles, via_ctor.cycles);
        assert_eq!(via_builder.stats, via_ctor.stats);
    }

    #[test]
    fn builder_sim_tweaks_apply_in_order() {
        let part: Partition = "4x4".parse().unwrap();
        // Two queued tweaks of the same knob: the later one wins, so the
        // run must be cycle-identical to setting only the final value.
        let chained = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .sim(|c| c.router.vc_fifo_chunks = 256)
            .sim(|c| c.router.vc_fifo_chunks = 8)
            .run()
            .unwrap();
        let last_only = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .sim(|c| c.router.vc_fifo_chunks = 8)
            .run()
            .unwrap();
        assert_eq!(chained.cycles, last_only.cycles);
        assert_eq!(chained.stats, last_only.stats);
    }

    #[test]
    fn strategy_hash_matches_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(StrategyKind::throttled(1.0));
        set.insert(StrategyKind::throttled(1.0));
        set.insert(StrategyKind::throttled(0.5));
        set.insert(StrategyKind::tps());
        set.insert(StrategyKind::tps());
        assert_eq!(set.len(), 3);
        // -0.0 and 0.0 compare equal and must hash equal.
        set.clear();
        set.insert(StrategyKind::throttled(0.0));
        assert!(set.contains(&StrategyKind::throttled(-0.0)));
        // A paced strategy never collides with its unpaced form.
        set.clear();
        set.insert(StrategyKind::ar());
        set.insert(StrategyKind::ar().with_pacer(Pacer::credit(4, 2)));
        set.insert(StrategyKind::vmesh());
        set.insert(StrategyKind::vmesh().with_pacer(Pacer::credit(4, 2)));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn strategy_and_report_round_trip_json() {
        for s in [
            StrategyKind::ar(),
            StrategyKind::mpi(),
            StrategyKind::throttled(1.25),
            StrategyKind::tps(),
            StrategyKind::tps_with(
                None,
                Pacer::CreditWindow {
                    credit: CreditConfig::default(),
                },
            ),
            StrategyKind::tps_with(Some(Dim::Y), Pacer::rate(0.75)),
            StrategyKind::vmesh(),
            StrategyKind::vmesh().with_pacer(Pacer::credit(8, 2)),
            StrategyKind::xyz().with_pacer(Pacer::credit(8, 2)),
            StrategyKind::dr().with_pacer(Pacer::rate(0.5)),
            StrategyKind::Auto,
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: StrategyKind = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back, "{json}");
        }
        let r = quick("4x4", 240, StrategyKind::ar());
        let json = serde_json::to_string(&r).unwrap();
        let back: AaReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r.cycles, back.cycles);
        assert_eq!(r.stats, back.stats);
    }

    #[test]
    fn legacy_wire_forms_still_parse_and_reserialize() {
        // The pre-pacer encodings must keep deserializing (stored run
        // keys, golden files) AND re-serializing byte-identically so run
        // keys don't silently rename.
        for (json, want) in [
            ("\"AdaptiveRandomized\"", StrategyKind::ar()),
            ("\"MpiBaseline\"", StrategyKind::mpi()),
            (
                "{\"ThrottledAdaptive\":{\"factor\":1.25}}",
                StrategyKind::throttled(1.25),
            ),
            (
                "{\"TwoPhaseSchedule\":{\"linear\":null,\"credit\":null}}",
                StrategyKind::tps(),
            ),
            (
                "{\"TwoPhaseSchedule\":{\"linear\":null,\"credit\":{\"window_packets\":4,\"credit_every\":2}}}",
                StrategyKind::tps_with(None, Pacer::credit(4, 2)),
            ),
        ] {
            let back: StrategyKind = serde_json::from_str(json).unwrap();
            assert_eq!(back, want, "{json}");
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn ar_routes_around_a_statically_dead_link() {
        use bgl_sim::{FaultPlan, LinkFault};
        use bgl_torus::{Dim, Direction, Sign};
        let part: Partition = "4x4".parse().unwrap();
        let plan = FaultPlan {
            links: vec![LinkFault::dead(0, Direction::new(Dim::X, Sign::Plus))],
            nodes: vec![],
        };
        let faulty = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .sim({
                let plan = plan.clone();
                move |c| c.fault = plan
            })
            .run()
            .unwrap();
        // Everything still arrives — adaptively, around the dead link —
        // and nothing was in flight on it at cycle 0, so nothing dropped.
        assert_eq!(
            faulty.stats.payload_bytes_delivered,
            16 * 15 * 240,
            "AR must deliver the full all-to-all around a dead link"
        );
        assert_eq!(faulty.stats.dropped_by_fault, 0);
        let healthy = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::ar())
            .run()
            .unwrap();
        // Losing a link perturbs arbitration, so exact cycle counts may
        // wobble either way on a tiny run; the payload totals must agree.
        assert_eq!(
            faulty.stats.payload_bytes_delivered,
            healthy.stats.payload_bytes_delivered
        );
    }

    #[test]
    fn dr_reports_unreachable_on_a_statically_dead_link() {
        use bgl_sim::{FaultPlan, LinkFault};
        use bgl_torus::{Dim, Direction, Sign};
        let part: Partition = "4x4".parse().unwrap();
        let dir = Direction::new(Dim::X, Sign::Plus);
        let plan = FaultPlan {
            links: vec![LinkFault::dead(0, dir)],
            nodes: vec![],
        };
        let err = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::dr())
            .sim(move |c| c.fault = plan)
            .run()
            .unwrap_err();
        match err {
            SimError::Unreachable {
                cycle,
                blocked_packets,
                faults,
            } => {
                assert_eq!(cycle, 0, "static faults are caught by the preflight");
                assert!(blocked_packets > 0);
                assert_eq!(faults.len(), 1);
                assert_eq!((faults[0].node, faults[0].dir), (0, dir));
                assert_eq!(faults[0].blocked, blocked_packets);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn indirect_schedules_reject_high_arity_partitions_up_front() {
        let part: Partition = "4x4x4x4".parse().unwrap();
        let w = AaWorkload::full(64);
        for s in [StrategyKind::tps(), StrategyKind::vmesh()] {
            assert_eq!(s.supported_dims(), 1..=3);
            let err = run_aa(part, &w, &s, &params(), SimConfig::new(part)).unwrap_err();
            match err {
                SimError::UnsupportedDims {
                    what,
                    ndims,
                    max_dims,
                } => {
                    assert_eq!(what, s.name());
                    assert_eq!((ndims, max_dims), (4, 3));
                }
                other => panic!("expected UnsupportedDims, got {other:?}"),
            }
            // The error is its own one-line story.
            assert!(s.check_dims(&part).unwrap_err().to_string().contains("4"));
        }
    }

    #[test]
    fn direct_schemes_run_on_high_arity_tori() {
        // 2^4 hypercube-as-torus: every direct scheme and XYZ complete.
        for s in [StrategyKind::ar(), StrategyKind::dr(), StrategyKind::xyz()] {
            assert!(s.supported_dims().contains(&4));
            let r = quick("2x2x2x2", 64, s);
            assert_eq!(r.stats.packets_delivered, r.stats.packets_injected);
        }
        // Auto resolves to a supported scheme rather than erroring.
        let r = quick("2x2x2x2", 16, StrategyKind::Auto);
        assert_eq!(r.strategy, StrategyKind::ar());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyKind::ar().name(), "AR");
        assert_eq!(StrategyKind::throttled(0.9).name(), "AR-throttled");
        assert_eq!(StrategyKind::tps().name(), "TPS");
        assert_eq!(
            StrategyKind::tps().with_pacer(Pacer::credit(4, 2)).name(),
            "TPS"
        );
    }
}
