//! Strategy selection and the all-to-all runner: build per-node programs,
//! configure the simulator, run, and report percent-of-peak.

use crate::direct::{DirectConfig, DirectProgram};
use crate::tps::{tps_inj_class_masks, CreditConfig, TpsConfig, TpsProgram};
use crate::vmesh::{VmeshConfig, VmeshProgram};
use crate::workload::AaWorkload;
use bgl_model::MachineParams;
use bgl_sim::{Engine, NetStats, NodeProgram, SimConfig, SimError};
use bgl_torus::{AaLoadAnalysis, Dim, Partition, VmeshLayout};

/// The all-to-all strategies of the paper (plus automatic selection).
///
/// `Eq`/`Hash` are implemented manually (the throttling factor is hashed
/// by bit pattern) so a strategy can key caches and deduplicated run sets;
/// a NaN factor is not meaningful and must not be constructed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum StrategyKind {
    /// Production-MPI-like randomized direct baseline.
    MpiBaseline,
    /// The paper's low-overhead randomized adaptive direct scheme (AR).
    AdaptiveRandomized,
    /// Deterministic dimension-order direct scheme (DR).
    DeterministicRouted,
    /// AR with injection paced at `factor ×` the bisection-peak rate.
    ThrottledAdaptive {
        /// Pacing multiplier (1.0 = exactly the peak rate).
        factor: f64,
    },
    /// Two Phase Schedule (Section 4.1).
    TwoPhaseSchedule {
        /// Phase-1 dimension (`None` = automatic).
        linear: Option<Dim>,
        /// Optional credit-based intermediate-memory flow control.
        credit: Option<CreditConfig>,
    },
    /// Virtual-mesh message combining (Section 4.2).
    VirtualMesh {
        /// Row/column factorization.
        layout: VmeshLayout,
    },
    /// Three-phase XYZ software routing (the HPCC-Randomaccess-style
    /// scheme Section 4.1 contrasts TPS against: two forwarding phases
    /// instead of one).
    XyzRouting,
    /// The paper's recommendation: VMesh below the combining crossover,
    /// a direct scheme on symmetric tori, TPS on asymmetric partitions.
    Auto,
}

impl Eq for StrategyKind {}

impl std::hash::Hash for StrategyKind {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            StrategyKind::MpiBaseline
            | StrategyKind::AdaptiveRandomized
            | StrategyKind::DeterministicRouted
            | StrategyKind::XyzRouting
            | StrategyKind::Auto => {}
            // `+ 0.0` collapses -0.0 onto 0.0 so Hash stays consistent
            // with the derived PartialEq.
            StrategyKind::ThrottledAdaptive { factor } => (factor + 0.0).to_bits().hash(state),
            StrategyKind::TwoPhaseSchedule { linear, credit } => {
                linear.hash(state);
                credit.hash(state);
            }
            StrategyKind::VirtualMesh { layout } => layout.hash(state),
        }
    }
}

impl StrategyKind {
    /// Canonical short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::MpiBaseline => "MPI",
            StrategyKind::AdaptiveRandomized => "AR",
            StrategyKind::DeterministicRouted => "DR",
            StrategyKind::ThrottledAdaptive { .. } => "AR-throttled",
            StrategyKind::TwoPhaseSchedule { .. } => "TPS",
            StrategyKind::VirtualMesh { .. } => "VMesh",
            StrategyKind::XyzRouting => "XYZ",
            StrategyKind::Auto => "Auto",
        }
    }

    /// Resolve `Auto` to a concrete strategy for `(part, m)`; concrete
    /// strategies return themselves.
    pub fn resolve(&self, part: &Partition, m: u64) -> StrategyKind {
        match self {
            StrategyKind::Auto => crate::select::auto_select(part, m, &MachineParams::bgl()),
            other => other.clone(),
        }
    }
}

/// Result of one all-to-all run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AaReport {
    /// The partition.
    pub partition: Partition,
    /// The workload.
    pub workload: AaWorkload,
    /// Strategy actually run (Auto resolved).
    pub strategy: StrategyKind,
    /// Completion time in simulator cycles.
    pub cycles: u64,
    /// Equation-2 peak time (for the sampled traffic) in cycles.
    pub peak_cycles: f64,
    /// `100 · peak / measured`.
    pub percent_of_peak: f64,
    /// Wall-clock completion time in seconds (β-based conversion).
    pub time_secs: f64,
    /// Achieved per-node send bandwidth, bytes/second.
    pub per_node_bandwidth: f64,
    /// Raw simulator statistics.
    pub stats: NetStats,
    /// Time-series trace, present iff `SimConfig::trace` was set (see
    /// [`bgl_sim::trace`]). Purely observational: `stats` is
    /// byte-identical whether or not a trace was recorded.
    pub trace: Option<bgl_sim::Trace>,
}

/// A fully specified all-to-all run; build one with [`AaRun::builder`].
///
/// The builder is the one typed entry point through which strategy code,
/// experiments and binaries construct runs:
///
/// ```
/// use bgl_core::{AaRun, AaWorkload, StrategyKind};
///
/// let part = "4x4".parse().unwrap();
/// let report = AaRun::builder(part, AaWorkload::full(240))
///     .strategy(StrategyKind::AdaptiveRandomized)
///     .sim(|cfg| cfg.router.vc_fifo_chunks = 64)
///     .run()
///     .unwrap();
/// assert!(report.cycles > 0);
/// ```
pub struct AaRun {
    part: Partition,
    workload: AaWorkload,
    strategy: StrategyKind,
    params: MachineParams,
    config: SimConfig,
}

/// A queued simulator-configuration tweak; see [`AaRunBuilder::sim`].
type ConfigTweak = Box<dyn FnOnce(&mut SimConfig)>;

/// Builder for [`AaRun`]; see [`AaRun::builder`].
pub struct AaRunBuilder {
    part: Partition,
    workload: AaWorkload,
    strategy: StrategyKind,
    params: Option<MachineParams>,
    config: Option<SimConfig>,
    tweaks: Vec<ConfigTweak>,
}

impl AaRun {
    /// Start building a run of `workload` on `part`. Defaults: strategy
    /// [`StrategyKind::Auto`], BG/L machine parameters, the default
    /// simulator configuration for `part`.
    pub fn builder(part: Partition, workload: AaWorkload) -> AaRunBuilder {
        AaRunBuilder {
            part,
            workload,
            strategy: StrategyKind::Auto,
            params: None,
            config: None,
            tweaks: Vec::new(),
        }
    }

    /// Execute the run.
    pub fn run(self) -> Result<AaReport, SimError> {
        execute(
            self.part,
            &self.workload,
            &self.strategy,
            &self.params,
            Some(self.config),
        )
    }
}

impl AaRunBuilder {
    /// Set the strategy (default [`StrategyKind::Auto`]).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the machine parameters (default [`MachineParams::bgl`]).
    pub fn params(mut self, params: MachineParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Replace the base simulator configuration wholesale (default
    /// `SimConfig::new(part)`). Tweaks queued via [`Self::sim`] are still
    /// applied on top.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Queue a simulator-configuration tweak (FIFO depths, CPU model,
    /// ablation switches). Tweaks run in the order added, after the base
    /// configuration is in place.
    pub fn sim(mut self, tweak: impl FnOnce(&mut SimConfig) + 'static) -> Self {
        self.tweaks.push(Box::new(tweak));
        self
    }

    /// Set the workload seed (destination-order randomization).
    pub fn seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Finalize into an [`AaRun`].
    pub fn build(self) -> AaRun {
        let mut config = self.config.unwrap_or_else(|| SimConfig::new(self.part));
        for tweak in self.tweaks {
            tweak(&mut config);
        }
        AaRun {
            part: self.part,
            workload: self.workload,
            strategy: self.strategy,
            params: self.params.unwrap_or_else(MachineParams::bgl),
            config,
        }
    }

    /// Finalize and execute in one step.
    pub fn run(self) -> Result<AaReport, SimError> {
        self.build().run()
    }
}

/// Run an all-to-all of `workload` on `part` with `strategy`.
///
/// `base` lets callers tweak the simulator (FIFO depths, CPU model,
/// ablations); pass `SimConfig::new(part)` for the defaults. Strategy
/// requirements (TPS injection-FIFO reservation) are applied on top.
/// Equivalent to the [`AaRun::builder`] chain with an explicit config.
pub fn run_aa(
    part: Partition,
    workload: &AaWorkload,
    strategy: &StrategyKind,
    params: &MachineParams,
    base: SimConfig,
) -> Result<AaReport, SimError> {
    execute(part, workload, strategy, params, Some(base))
}

fn execute(
    part: Partition,
    workload: &AaWorkload,
    strategy: &StrategyKind,
    params: &MachineParams,
    config: Option<SimConfig>,
) -> Result<AaReport, SimError> {
    let mut base = config.unwrap_or_else(|| SimConfig::new(part));
    let strategy = strategy.resolve(&part, workload.m_bytes);
    let p = part.num_nodes();
    assert!(p >= 2, "all-to-all needs at least two nodes");
    base.partition = part;

    let programs: Vec<Box<dyn NodeProgram>> = match &strategy {
        StrategyKind::MpiBaseline => {
            build_direct(&part, workload, &DirectConfig::mpi(params), params)
        }
        StrategyKind::AdaptiveRandomized => {
            build_direct(&part, workload, &DirectConfig::ar(params), params)
        }
        StrategyKind::DeterministicRouted => {
            build_direct(&part, workload, &DirectConfig::dr(params), params)
        }
        StrategyKind::ThrottledAdaptive { factor } => {
            let pace = peak_injection_rate(&part, workload, params) * factor;
            build_direct(
                &part,
                workload,
                &DirectConfig::throttled(params, pace),
                params,
            )
        }
        StrategyKind::TwoPhaseSchedule { linear, credit } => {
            base.inj_class_masks = tps_inj_class_masks(base.inj_fifo_count);
            let cfg = TpsConfig {
                linear: *linear,
                credit: *credit,
            };
            (0..p)
                .map(|r| {
                    Box::new(TpsProgram::new(r, &part, workload, &cfg, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::VirtualMesh { layout } => {
            let cfg = VmeshConfig {
                layout: *layout,
                ..VmeshConfig::default()
            };
            (0..p)
                .map(|r| {
                    Box::new(VmeshProgram::new(r, &part, workload, &cfg, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::XyzRouting => {
            base.inj_class_masks = crate::xyz::xyz_inj_class_masks(base.inj_fifo_count);
            (0..p)
                .map(|r| {
                    Box::new(crate::xyz::XyzProgram::new(r, &part, workload, params))
                        as Box<dyn NodeProgram>
                })
                .collect()
        }
        StrategyKind::Auto => unreachable!("Auto resolved above"),
    };

    let mut engine = Engine::new(base, programs);
    let stats = engine.run()?;
    let trace = engine.take_trace();
    let peak_cycles = peak_cycles_for(&part, workload, params);
    let cycles = stats.completion_cycle;
    let time_secs = cycles as f64 * params.secs_per_sim_cycle();
    let sent_per_node = workload.dests_per_node(p) as u64 * workload.m_bytes;
    Ok(AaReport {
        partition: part,
        workload: workload.clone(),
        strategy,
        cycles,
        peak_cycles,
        percent_of_peak: bgl_model::percent_of_peak(peak_cycles, cycles as f64),
        time_secs,
        per_node_bandwidth: if time_secs > 0.0 {
            sent_per_node as f64 / time_secs
        } else {
            0.0
        },
        stats,
        trace,
    })
}

fn build_direct(
    part: &Partition,
    workload: &AaWorkload,
    cfg: &DirectConfig,
    params: &MachineParams,
) -> Vec<Box<dyn NodeProgram>> {
    (0..part.num_nodes())
        .map(|r| {
            Box::new(DirectProgram::new(r, part, workload, cfg, params)) as Box<dyn NodeProgram>
        })
        .collect()
}

/// Equation-2 peak time, in cycles, for the (possibly sampled) workload.
///
/// The peak moves `m` *payload* bytes per pair across the bottleneck links
/// at the full-packet payload rate (240 B per 8 cycles): the measured β the
/// paper computes its peak with already amortizes the per-packet link
/// overhead, so a run whose links carry back-to-back full packets scores
/// 100 %.
pub fn peak_cycles_for(part: &Partition, workload: &AaWorkload, params: &MachineParams) -> f64 {
    let analysis = AaLoadAnalysis::new(*part);
    analysis.peak_time_byte_times(workload.m_bytes) * workload.effective_fraction(part.num_nodes())
        / params.payload_bytes_per_cycle()
}

/// Per-node injection rate (chunks/cycle) at which the network runs exactly
/// at its bisection peak — the throttled strategy's pacing target.
pub fn peak_injection_rate(part: &Partition, workload: &AaWorkload, params: &MachineParams) -> f64 {
    let p = part.num_nodes();
    let peak = peak_cycles_for(part, workload, params);
    let shapes = crate::workload::packetize(
        workload.m_bytes,
        params.software_header_bytes,
        params.min_packet_bytes,
        params,
    );
    let chunks_per_node =
        workload.dests_per_node(p) as f64 * crate::workload::total_chunks(&shapes) as f64;
    if peak > 0.0 {
        chunks_per_node / peak
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    fn quick(part: &str, m: u64, strategy: StrategyKind) -> AaReport {
        let part: Partition = part.parse().unwrap();
        let w = AaWorkload::full(m);
        run_aa(part, &w, &strategy, &params(), SimConfig::new(part)).unwrap()
    }

    #[test]
    fn ar_on_a_line_delivers_everything() {
        let r = quick("8", 240, StrategyKind::AdaptiveRandomized);
        assert_eq!(r.stats.packets_delivered, r.stats.packets_injected);
        assert_eq!(r.stats.payload_bytes_delivered, 8 * 7 * 240);
        assert!(r.percent_of_peak > 40.0, "{}", r.percent_of_peak);
        assert!(r.percent_of_peak <= 101.0, "{}", r.percent_of_peak);
    }

    #[test]
    fn dr_on_a_line_delivers_everything() {
        let r = quick("8", 240, StrategyKind::DeterministicRouted);
        assert_eq!(r.stats.payload_bytes_delivered, 8 * 7 * 240);
        // DR rides the bubble VC exclusively.
        assert_eq!(r.stats.dynamic_hops, 0);
        assert!(r.stats.bubble_hops > 0);
    }

    #[test]
    fn tps_on_small_torus_delivers_everything() {
        let r = quick(
            "4x2x2",
            240,
            StrategyKind::TwoPhaseSchedule {
                linear: None,
                credit: None,
            },
        );
        // Payload is delivered once via phase 1/direct and once more after
        // forwarding, so delivered bytes ≥ the application total.
        assert!(r.stats.payload_bytes_delivered >= 16 * 15 * 240);
        assert!(r.cycles > 0);
    }

    #[test]
    fn tps_with_credit_flow_control_completes() {
        let r = quick(
            "4x2x2",
            960,
            StrategyKind::TwoPhaseSchedule {
                linear: None,
                credit: Some(CreditConfig {
                    window_packets: 4,
                    credit_every: 2,
                }),
            },
        );
        assert!(r.cycles > 0);
    }

    #[test]
    fn vmesh_on_small_plane_completes() {
        let r = quick(
            "4x4",
            8,
            StrategyKind::VirtualMesh {
                layout: VmeshLayout::Auto,
            },
        );
        assert!(r.cycles > 0);
        assert_eq!(r.stats.packets_delivered, r.stats.packets_injected);
    }

    #[test]
    fn throttled_completes_and_is_not_faster_than_ar() {
        let ar = quick("4x4x2", 480, StrategyKind::AdaptiveRandomized);
        let th = quick(
            "4x4x2",
            480,
            StrategyKind::ThrottledAdaptive { factor: 1.0 },
        );
        assert_eq!(
            th.stats.payload_bytes_delivered,
            ar.stats.payload_bytes_delivered
        );
        // Pacing at the peak rate can't beat the unthrottled run by much.
        assert!(th.cycles as f64 >= ar.cycles as f64 * 0.5);
    }

    #[test]
    fn mpi_baseline_is_slower_than_ar_for_short_messages() {
        let ar = quick("4x4", 64, StrategyKind::AdaptiveRandomized);
        let mpi = quick("4x4", 64, StrategyKind::MpiBaseline);
        assert!(
            mpi.cycles > ar.cycles,
            "MPI {} vs AR {}",
            mpi.cycles,
            ar.cycles
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = quick("4x4", 240, StrategyKind::AdaptiveRandomized);
        let b = quick("4x4", 240, StrategyKind::AdaptiveRandomized);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn sampled_workload_peak_scales() {
        let part: Partition = "8x8".parse().unwrap();
        let full = AaWorkload::full(240);
        let half = AaWorkload::sampled(240, 0.5);
        let pf = peak_cycles_for(&part, &full, &params());
        let ph = peak_cycles_for(&part, &half, &params());
        // 63 destinations at full coverage, round(31.5) = 32 at half.
        assert!((pf / ph - 63.0 / 32.0).abs() < 0.01, "{pf} {ph}");
    }

    #[test]
    fn builder_matches_run_aa() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(240);
        let s = StrategyKind::AdaptiveRandomized;
        let direct = run_aa(part, &w, &s, &params(), SimConfig::new(part)).unwrap();
        let built = AaRun::builder(part, w)
            .strategy(s)
            .params(params())
            .run()
            .unwrap();
        assert_eq!(direct.cycles, built.cycles);
        assert_eq!(direct.stats, built.stats);
    }

    #[test]
    fn builder_sim_tweaks_apply_in_order() {
        let part: Partition = "4x4".parse().unwrap();
        // Two queued tweaks of the same knob: the later one wins, so the
        // run must be cycle-identical to setting only the final value.
        let chained = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::AdaptiveRandomized)
            .sim(|c| c.router.vc_fifo_chunks = 256)
            .sim(|c| c.router.vc_fifo_chunks = 8)
            .run()
            .unwrap();
        let last_only = AaRun::builder(part, AaWorkload::full(240))
            .strategy(StrategyKind::AdaptiveRandomized)
            .sim(|c| c.router.vc_fifo_chunks = 8)
            .run()
            .unwrap();
        assert_eq!(chained.cycles, last_only.cycles);
        assert_eq!(chained.stats, last_only.stats);
    }

    #[test]
    fn strategy_hash_matches_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(StrategyKind::ThrottledAdaptive { factor: 1.0 });
        set.insert(StrategyKind::ThrottledAdaptive { factor: 1.0 });
        set.insert(StrategyKind::ThrottledAdaptive { factor: 0.5 });
        set.insert(StrategyKind::TwoPhaseSchedule {
            linear: None,
            credit: None,
        });
        set.insert(StrategyKind::TwoPhaseSchedule {
            linear: None,
            credit: None,
        });
        assert_eq!(set.len(), 3);
        // -0.0 and 0.0 compare equal and must hash equal.
        set.clear();
        set.insert(StrategyKind::ThrottledAdaptive { factor: 0.0 });
        assert!(set.contains(&StrategyKind::ThrottledAdaptive { factor: -0.0 }));
    }

    #[test]
    fn strategy_and_report_round_trip_json() {
        let s = StrategyKind::TwoPhaseSchedule {
            linear: None,
            credit: Some(CreditConfig::default()),
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StrategyKind = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let r = quick("4x4", 240, StrategyKind::AdaptiveRandomized);
        let json = serde_json::to_string(&r).unwrap();
        let back: AaReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r.cycles, back.cycles);
        assert_eq!(r.stats, back.stats);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyKind::AdaptiveRandomized.name(), "AR");
        assert_eq!(
            StrategyKind::TwoPhaseSchedule {
                linear: None,
                credit: None
            }
            .name(),
            "TPS"
        );
    }
}
