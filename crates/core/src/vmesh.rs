//! The 2-D virtual-mesh message-combining all-to-all (Section 4.2) for
//! short messages.
//!
//! The `P` nodes are viewed as a `Pvx × Pvy` virtual mesh
//! ([`bgl_torus::VirtualMesh`]). In **phase 1** each node sends one
//! combined message of `Pvy·m + proto` bytes to every other member of its
//! row — the message carries the node's data for the receiver's entire
//! column. In **phase 2**, after *all* row messages have arrived (the
//! phases do not overlap), the node re-sorts the data by destination and
//! sends one `Pvx·m + proto`-byte message to every other member of its
//! column. The per-message α is paid `Pvx + Pvy` times instead of `P`, at
//! the price of every byte crossing the network twice plus one memory copy
//! (γ) — Equation 4.

use crate::workload::{packetize, AaWorkload, PacketShape};
use bgl_model::MachineParams;
use bgl_sim::{NodeApi, NodeProgram, Packet, PacketMeta, PollHint, RoutingMode, SendSpec};
use bgl_torus::{Partition, VirtualMesh, VmeshLayout};

/// Phase-1 (row) packet kind.
const KIND_ROW: u8 = 1;
/// Phase-2 (column) packet kind.
const KIND_COL: u8 = 2;
/// Credit-acknowledgement packet kind (credit-window pacing only).
const KIND_CREDIT: u8 = 3;

/// VMesh tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmeshConfig {
    /// How to factorize the partition into rows and columns.
    pub layout: VmeshLayout,
    /// Smallest packet of the combining (message-passing) runtime, bytes.
    /// Unlike the 64-byte direct-runtime floor, combined messages carry
    /// only the 8-byte proto header, so 32-byte packets are possible.
    pub min_packet_bytes: u32,
}

impl Default for VmeshConfig {
    fn default() -> Self {
        VmeshConfig {
            layout: VmeshLayout::Auto,
            min_packet_bytes: 32,
        }
    }
}

/// Per-node virtual-mesh combining program.
pub struct VmeshProgram {
    rank: u32,
    alpha_sim_cycles: f64,
    copy_cycles_per_chunk: f64,
    /// Row-message packet shapes (every row message is the same size).
    p1_shapes: Vec<PacketShape>,
    /// Column-message packet shapes.
    p2_shapes: Vec<PacketShape>,
    /// Ranks of the other row members, visited in rotated order.
    p1_targets: Vec<u32>,
    /// Ranks of the other column members.
    p2_targets: Vec<u32>,
    p1_idx: usize,
    p1_pkt: usize,
    p2_idx: usize,
    p2_pkt: usize,
    /// Phase-1 packets still expected from row neighbours.
    expect_p1_packets: u64,
    got_p1_packets: u64,
    phase2_started: bool,
}

impl VmeshProgram {
    /// Build the program for `rank`.
    pub fn new(
        rank: u32,
        part: &Partition,
        workload: &AaWorkload,
        cfg: &VmeshConfig,
        params: &MachineParams,
    ) -> VmeshProgram {
        let vm = VirtualMesh::choose(*part, cfg.layout);
        let coord = part.coord_of(rank);
        let row = vm.row_of(coord);
        let pos = vm.pos_in_row(coord);
        let m = workload.m_bytes;
        let proto = params.proto_header_bytes;
        let p1_bytes = vm.pvy() as u64 * m;
        let p2_bytes = vm.pvx() as u64 * m;
        let p1_shapes = packetize(p1_bytes, proto, cfg.min_packet_bytes, params);
        let p2_shapes = packetize(p2_bytes, proto, cfg.min_packet_bytes, params);
        // Rotated visiting order spreads instantaneous load across the row
        // (every node starts on a different neighbour).
        let p1_targets: Vec<u32> = (1..vm.pvx())
            .map(|i| vm.rank_at(row, (pos + i) % vm.pvx()))
            .collect();
        let p2_targets: Vec<u32> = (1..vm.pvy())
            .map(|i| vm.rank_at((row + i) % vm.pvy(), pos))
            .collect();
        let expect_p1_packets = p1_targets.len() as u64 * p1_shapes.len() as u64;
        VmeshProgram {
            rank,
            alpha_sim_cycles: params.alpha_message_cycles / params.cpu_cycles_per_sim_cycle(),
            copy_cycles_per_chunk: params.gamma_ns_per_byte * params.chunk_bytes as f64 * 1e-9
                / params.secs_per_sim_cycle(),
            p1_shapes,
            p2_shapes,
            p1_targets,
            p2_targets,
            p1_idx: 0,
            p1_pkt: 0,
            p2_idx: 0,
            p2_pkt: 0,
            expect_p1_packets,
            got_p1_packets: 0,
            phase2_started: false,
        }
    }

    fn p1_done(&self) -> bool {
        self.p1_idx >= self.p1_targets.len()
    }

    fn p2_done(&self) -> bool {
        self.p2_idx >= self.p2_targets.len()
    }

    fn ready_for_phase2(&self) -> bool {
        self.p1_done() && self.got_p1_packets >= self.expect_p1_packets
    }
}

impl NodeProgram for VmeshProgram {
    /// Declines only when credit-blocked (the ack is a delivered credit
    /// packet), waiting on row messages before phase 2 (delivery-driven),
    /// or finished — sleeping until the next delivery is exact.
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if !self.p1_done() {
            let dst = self.p1_targets[self.p1_idx];
            // Under credit-window pacing, row receivers are the bounded
            // intermediates: every row member bursts Pvy·m bytes at every
            // other member at t=0, which is exactly the reception-memory
            // blow-up that stalls full-coverage runs on large asymmetric
            // tori. Reserve a credit or retry once acks return.
            if !api.try_acquire_credit(dst) {
                return None;
            }
            let shape = self.p1_shapes[self.p1_pkt];
            let alpha = if self.p1_pkt == 0 {
                self.alpha_sim_cycles
            } else {
                0.0
            };
            self.p1_pkt += 1;
            if self.p1_pkt >= self.p1_shapes.len() {
                self.p1_pkt = 0;
                self.p1_idx += 1;
            }
            return Some(SendSpec {
                dst_rank: dst,
                chunks: shape.chunks,
                payload_bytes: shape.payload,
                routing: RoutingMode::Adaptive,
                class: 0,
                meta: PacketMeta {
                    kind: KIND_ROW,
                    a: self.rank,
                    b: 0,
                },
                longest_first: false,
                cpu_cost_cycles: alpha,
            });
        }
        if !self.phase2_started {
            if !self.ready_for_phase2() {
                return None; // waiting for row messages
            }
            self.phase2_started = true;
        }
        if self.p2_done() {
            return None;
        }
        let dst = self.p2_targets[self.p2_idx];
        let shape = self.p2_shapes[self.p2_pkt];
        // α per column message on its first packet, plus the γ sort/copy
        // cost spread across the message's packets.
        let alpha = if self.p2_pkt == 0 {
            self.alpha_sim_cycles
        } else {
            0.0
        };
        let copy = self.copy_cycles_per_chunk * shape.chunks as f64;
        self.p2_pkt += 1;
        if self.p2_pkt >= self.p2_shapes.len() {
            self.p2_pkt = 0;
            self.p2_idx += 1;
        }
        Some(SendSpec {
            dst_rank: dst,
            chunks: shape.chunks,
            payload_bytes: shape.payload,
            routing: RoutingMode::Adaptive,
            class: 0,
            meta: PacketMeta {
                kind: KIND_COL,
                a: self.rank,
                b: 0,
            },
            longest_first: false,
            cpu_cost_cycles: alpha + copy,
        })
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        match pkt.meta.kind {
            KIND_ROW => {
                // Credit packets never count toward `expect_p1_packets`:
                // only real row data advances the phase-2 barrier.
                self.got_p1_packets += 1;
                if let Some(n) = api.credit_receipt(pkt.meta.a) {
                    api.send(SendSpec {
                        dst_rank: pkt.meta.a,
                        chunks: 1,
                        payload_bytes: 0,
                        routing: RoutingMode::Adaptive,
                        class: 0,
                        meta: PacketMeta {
                            kind: KIND_CREDIT,
                            a: self.rank,
                            b: n,
                        },
                        longest_first: false,
                        cpu_cost_cycles: 0.0,
                    });
                }
            }
            KIND_COL => {} // final delivery
            KIND_CREDIT => api.apply_credit(pkt.meta.a, pkt.meta.b),
            other => panic!("VMesh received unknown packet kind {other}"),
        }
    }

    fn is_complete(&self) -> bool {
        self.p1_done() && self.phase2_started && self.p2_done()
            || (self.p1_targets.is_empty() && self.p2_targets.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    fn pull(prog: &mut VmeshProgram, part: &Partition, now: u64) -> Option<SendSpec> {
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(prog.rank, part.coord_of(prog.rank), now, part, &mut q);
        prog.next_send(&mut api)
    }

    fn fake_row_packet(part: &Partition, from: u32, to: u32) -> Packet {
        Packet {
            id: 0,
            src_rank: from,
            dst: part.coord_of(to),
            chunks: 1,
            payload_bytes: 8,
            plan: bgl_torus::HopPlan::new(
                part,
                part.coord_of(from),
                part.coord_of(to),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: 0,
            meta: PacketMeta {
                kind: KIND_ROW,
                a: from,
                b: 0,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        }
    }

    #[test]
    fn phase1_visits_all_row_members() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(8);
        let mut prog = VmeshProgram::new(0, &part, &w, &VmeshConfig::default(), &params());
        let pvx = prog.p1_targets.len() + 1;
        let mut dests = std::collections::HashSet::new();
        for _ in 0..pvx - 1 {
            let s = pull(&mut prog, &part, 0).expect("phase-1 send");
            assert_eq!(s.meta.kind, KIND_ROW);
            dests.insert(s.dst_rank);
        }
        assert_eq!(dests.len(), pvx - 1);
        // Now blocked until row messages arrive.
        assert!(pull(&mut prog, &part, 1).is_none());
        assert!(!prog.is_complete());
    }

    #[test]
    fn phase2_starts_only_after_all_row_messages() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(8);
        let mut prog = VmeshProgram::new(0, &part, &w, &VmeshConfig::default(), &params());
        while pull(&mut prog, &part, 0).is_some() {}
        let sources: Vec<u32> = prog.p1_targets.clone();
        let per_msg = prog.p1_shapes.len();
        let mut q = VecDeque::new();
        for (i, &src) in sources.iter().enumerate() {
            // Still blocked with one message missing.
            assert!(
                pull(&mut prog, &part, 5).is_none(),
                "blocked before message {i}"
            );
            let mut api = NodeApi::new(0, part.coord_of(0), 5, &part, &mut q);
            for _ in 0..per_msg {
                prog.on_packet(&mut api, &fake_row_packet(&part, src, 0));
            }
        }
        let s = pull(&mut prog, &part, 6).expect("phase 2 must start");
        assert_eq!(s.meta.kind, KIND_COL);
        assert!(s.cpu_cost_cycles > 0.0, "first column packet pays α and γ");
    }

    #[test]
    fn message_sizes_match_equation_4() {
        // Phase-1 messages carry Pvy·m bytes, phase-2 messages Pvx·m.
        let part: Partition = "8x8x8".parse().unwrap();
        let w = AaWorkload::full(8);
        let prog = VmeshProgram::new(0, &part, &w, &VmeshConfig::default(), &params());
        let p1_payload: u64 = prog.p1_shapes.iter().map(|s| s.payload as u64).sum();
        let p2_payload: u64 = prog.p2_shapes.iter().map(|s| s.payload as u64).sum();
        assert_eq!(p1_payload, 16 * 8); // Pvy = 16 on the 32×16 mesh
        assert_eq!(p2_payload, 32 * 8); // Pvx = 32
        assert_eq!(prog.p1_targets.len(), 31);
        assert_eq!(prog.p2_targets.len(), 15);
    }

    #[test]
    fn completion_requires_both_phases() {
        let part: Partition = "2x2".parse().unwrap();
        let w = AaWorkload::full(4);
        let mut prog = VmeshProgram::new(0, &part, &w, &VmeshConfig::default(), &params());
        assert!(!prog.is_complete());
        // Send phase 1 (one row neighbour).
        assert!(pull(&mut prog, &part, 0).is_some());
        assert!(!prog.is_complete());
        // Receive the row message.
        let src = prog.p1_targets[0];
        let n = prog.p1_shapes.len();
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 1, &part, &mut q);
        for _ in 0..n {
            prog.on_packet(&mut api, &fake_row_packet(&part, src, 0));
        }
        // Phase 2 (one column neighbour), then complete.
        while pull(&mut prog, &part, 2).is_some() {}
        assert!(prog.is_complete());
    }

    #[test]
    fn rotated_start_spreads_row_targets() {
        let part: Partition = "4x4".parse().unwrap();
        let w = AaWorkload::full(8);
        let a = VmeshProgram::new(0, &part, &w, &VmeshConfig::default(), &params());
        let b = VmeshProgram::new(1, &part, &w, &VmeshConfig::default(), &params());
        assert_ne!(a.p1_targets.first(), b.p1_targets.first());
    }
}
