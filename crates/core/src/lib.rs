//! The paper's contribution: optimized all-to-all strategies for the BG/L
//! torus, running on the `bgl-sim` network simulator.
//!
//! * [`direct`] — direct strategies (Section 3): the MPI-like baseline, the
//!   randomized adaptive **AR** scheme, deterministic **DR** routing and
//!   bisection-paced throttling.
//! * [`tps`] — the **Two Phase Schedule** (Section 4.1): pipelined
//!   line-then-plane forwarding with reserved injection FIFOs, plus the
//!   future-work credit-based flow control.
//! * [`vmesh`] — the 2-D **virtual mesh** message-combining strategy for
//!   short messages (Section 4.2).
//! * [`select`] — automatic strategy selection (Section 5's "best
//!   algorithm" rule).
//! * [`strategy`] — the [`run_aa`] runner producing percent-of-peak
//!   reports; [`workload`] — message sizes, packetization, randomized
//!   schedules.
//!
//! # Quickstart
//!
//! Runs are constructed through the [`AaRun`] builder — partition and
//! workload up front, everything else (strategy, machine parameters,
//! simulator tweaks) optional:
//!
//! ```
//! use bgl_core::{AaRun, AaWorkload, StrategyKind};
//!
//! let part = "4x4x4".parse().unwrap();
//! let report = AaRun::builder(part, AaWorkload::full(1872)) // ~8 full packets/destination
//!     .strategy(StrategyKind::ar())
//!     .run()
//!     .unwrap();
//! assert!(report.percent_of_peak > 70.0);
//! ```
//!
//! Simulator ablations chain a config tweak:
//!
//! ```
//! use bgl_core::{AaRun, AaWorkload, StrategyKind};
//!
//! let part = "4x4".parse().unwrap();
//! let report = AaRun::builder(part, AaWorkload::full(240))
//!     .strategy(StrategyKind::dr())
//!     .sim(|cfg| cfg.router.vc_fifo_chunks = 64)
//!     .run()
//!     .unwrap();
//! assert!(report.cycles > 0);
//! ```

pub mod direct;
pub mod fit;
pub mod flow;
pub mod patterns;
pub mod select;
pub mod strategy;
pub mod tps;
pub mod vmesh;
pub mod workload;
pub mod xyz;

pub use direct::{DirectConfig, DirectProgram};
pub use fit::{fit_ptp_params, FittedModel};
pub use flow::{CreditConfig, Pacer};
pub use patterns::{run_pattern, Pattern, PatternReport};
pub use select::{auto_select, combining_crossover_bytes};
pub use strategy::{
    peak_cycles_for, peak_injection_rate, run_aa, AaReport, AaRun, AaRunBuilder, StrategyKind,
};
pub use tps::{choose_linear_dim, tps_inj_class_masks, TpsConfig, TpsProgram};
pub use vmesh::{VmeshConfig, VmeshProgram};
pub use workload::{destination_schedule, packetize, total_chunks, AaWorkload, PacketShape};
pub use xyz::{xyz_inj_class_masks, XyzProgram};
