//! Many-to-many communication patterns beyond the uniform all-to-all.
//!
//! The paper closes its introduction hoping "the performance analysis and
//! the optimization techniques presented in this paper can be also applied
//! for more complex many-to-many communication patterns". This module
//! makes that checkable: it defines a family of patterns, generalizes the
//! Equation-2 bottleneck analysis to any of them (numerically, from
//! minimal hop counts), and runs them through the simulator with the
//! direct runtime.

use crate::workload::packetize;
use bgl_model::MachineParams;
use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig, SimError};
use bgl_torus::{Partition, Rank};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A many-to-many pattern: who sends `m` bytes to whom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// The uniform all-to-all (for cross-checking against `run_aa`).
    AllToAll,
    /// Rank `i` sends to `(i + offset) mod P` — a single permutation,
    /// the classic neighbour/shift exchange.
    Shift {
        /// Rank-space offset.
        offset: u32,
    },
    /// Matrix-transpose exchange: viewing ranks as an `r × c` matrix
    /// (`r·c = P`), rank `(i, j)` sends to rank `(j, i)` of the transposed
    /// shape. Degenerates to a permutation; the canonical FFT building
    /// block.
    Transpose {
        /// Matrix rows (must divide `P`).
        rows: u32,
    },
    /// Every node sends to `degree` random distinct destinations (random
    /// sparse many-to-many; seeded, so deterministic).
    RandomPairs {
        /// Destinations per node.
        degree: u32,
    },
    /// All-to-all restricted to each plane orthogonal to a dimension
    /// (sub-communicator collectives).
    PlaneAllToAll {
        /// The fixed dimension (planes are orthogonal to it).
        fixed: bgl_torus::Dim,
    },
}

impl Pattern {
    /// Destination list of `rank` under this pattern (no self-sends).
    pub fn destinations(&self, part: &Partition, rank: Rank, seed: u64) -> Vec<Rank> {
        let p = part.num_nodes();
        match self {
            Pattern::AllToAll => (0..p).filter(|&d| d != rank).collect(),
            Pattern::Shift { offset } => {
                // Widen before adding: a near-u32::MAX offset must reduce
                // mod P, not overflow. Offsets ≡ 0 (mod P) are self-sends
                // and yield the empty pattern.
                let d = ((rank as u64 + *offset as u64) % p as u64) as Rank;
                if d == rank {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Pattern::Transpose { rows } => {
                // A rows value that does not factor P (or rows == 0)
                // admits no transpose pairing: the pattern is empty, not
                // a panic — degenerate inputs must stay runnable (they
                // come in from the CLI).
                if *rows == 0 || !p.is_multiple_of(*rows) {
                    return vec![];
                }
                let cols = p / rows;
                let (i, j) = (rank / cols, rank % cols);
                let d = j * rows + i;
                if d == rank {
                    vec![]
                } else {
                    vec![d]
                }
            }
            Pattern::RandomPairs { degree } => {
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (rank as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                let degree = (*degree).min(p - 1);
                let mut set = std::collections::HashSet::new();
                while (set.len() as u32) < degree {
                    let d = rng.gen_range(0..p);
                    if d != rank {
                        set.insert(d);
                    }
                }
                let mut v: Vec<Rank> = set.into_iter().collect();
                v.sort_unstable();
                v
            }
            Pattern::PlaneAllToAll { fixed } => {
                let me = part.coord_of(rank);
                part.coords()
                    .filter(|c| c.get(*fixed) == me.get(*fixed) && *c != me)
                    .map(|c| part.rank_of(c))
                    .collect()
            }
        }
    }

    /// Generalized Equation-2 peak: per-dimension bottleneck link time for
    /// this pattern, computed numerically from minimal hop counts under the
    /// balanced-direction assumption, in cycles for `m` bytes per pair.
    pub fn peak_cycles(&self, part: &Partition, m: u64, params: &MachineParams, seed: u64) -> f64 {
        let mut dim_bytes = vec![0f64; part.ndims()];
        for src in 0..part.num_nodes() {
            let a = part.coord_of(src);
            for dst in self.destinations(part, src, seed) {
                let b = part.coord_of(dst);
                for d in part.dims() {
                    dim_bytes[d.index()] += part.dim_hops(d, a.get(d), b.get(d)) as f64 * m as f64;
                }
            }
        }
        let mut worst: f64 = 0.0;
        for d in part.dims() {
            let links = part.directed_links(d);
            if links > 0 {
                worst = worst.max(dim_bytes[d.index()] / links as f64);
            }
        }
        worst / params.payload_bytes_per_cycle()
    }

    /// Total (src, dst) pairs in this pattern.
    pub fn pair_count(&self, part: &Partition, seed: u64) -> u64 {
        (0..part.num_nodes())
            .map(|r| self.destinations(part, r, seed).len() as u64)
            .sum()
    }
}

/// Result of running a pattern through the simulator.
#[derive(Debug, Clone)]
pub struct PatternReport {
    /// Completion cycles.
    pub cycles: u64,
    /// Generalized-Equation-2 peak cycles (0 when the pattern is empty).
    pub peak_cycles: f64,
    /// `100·peak/measured`, or 0 for empty patterns.
    pub percent_of_peak: f64,
    /// Pairs exchanged.
    pub pairs: u64,
    /// Raw stats.
    pub stats: bgl_sim::NetStats,
}

/// Run `pattern` with `m` bytes per pair using the direct (AR-style)
/// runtime: randomized destination order, adaptive routing, per-message α.
pub fn run_pattern(
    part: Partition,
    pattern: &Pattern,
    m: u64,
    params: &MachineParams,
    base: SimConfig,
    seed: u64,
) -> Result<PatternReport, SimError> {
    let shapes = packetize(
        m,
        params.software_header_bytes,
        params.min_packet_bytes,
        params,
    );
    let alpha = params.alpha_direct_cycles / params.cpu_cycles_per_sim_cycle();
    let programs: Vec<Box<dyn NodeProgram>> = (0..part.num_nodes())
        .map(|r| {
            let mut dests = pattern.destinations(&part, r, seed);
            // Randomized order, as the AR runtime does.
            let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64) << 1);
            for i in (1..dests.len()).rev() {
                let j = rng.gen_range(0..=i);
                dests.swap(i, j);
            }
            // Round-major packet interleave.
            let mut sends = Vec::with_capacity(dests.len() * shapes.len());
            for (pi, s) in shapes.iter().enumerate() {
                for &d in &dests {
                    sends.push(
                        SendSpec::adaptive(d, s.chunks, s.payload).with_cpu_cost(if pi == 0 {
                            alpha
                        } else {
                            0.0
                        }),
                    );
                }
            }
            Box::new(ScriptedProgram::new(sends, 0)) as Box<dyn NodeProgram>
        })
        .collect();
    let mut cfg = base;
    cfg.partition = part;
    let stats = Engine::new(cfg, programs).run()?;
    let peak = pattern.peak_cycles(&part, m, params, seed);
    let pairs = pattern.pair_count(&part, seed);
    Ok(PatternReport {
        cycles: stats.completion_cycle,
        peak_cycles: peak,
        percent_of_peak: bgl_model::percent_of_peak(peak, stats.completion_cycle as f64),
        pairs,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::Dim;

    fn part() -> Partition {
        "4x4x2".parse().unwrap()
    }

    #[test]
    fn all_to_all_matches_analytic_peak() {
        let p = part();
        let params = MachineParams::bgl();
        let numeric = Pattern::AllToAll.peak_cycles(&p, 480, &params, 0);
        let analytic = crate::peak_cycles_for(&p, &crate::AaWorkload::full(480), &params);
        assert!(
            (numeric - analytic).abs() / analytic < 1e-9,
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    fn shift_is_a_permutation() {
        let p = part();
        for r in 0..p.num_nodes() {
            let d = Pattern::Shift { offset: 5 }.destinations(&p, r, 0);
            assert_eq!(d.len(), 1);
        }
        // Offset 0 sends nothing.
        assert!(Pattern::Shift { offset: 0 }
            .destinations(&p, 3, 0)
            .is_empty());
    }

    #[test]
    fn square_transpose_is_an_involution() {
        let p: Partition = "4x4".parse().unwrap();
        let t = Pattern::Transpose { rows: 4 };
        for r in 0..p.num_nodes() {
            for d in t.destinations(&p, r, 0) {
                let back = t.destinations(&p, d, 0);
                assert_eq!(back, vec![r]);
            }
        }
    }

    #[test]
    fn rectangular_transpose_is_a_bijection() {
        let p = part();
        let t = Pattern::Transpose { rows: 8 };
        let mut seen = std::collections::HashSet::new();
        for r in 0..p.num_nodes() {
            let d = t.destinations(&p, r, 0);
            // Either a single destination or a fixed point (skipped).
            let target = d.first().copied().unwrap_or(r);
            assert!(seen.insert(target), "rank {target} hit twice");
        }
        assert_eq!(seen.len() as u32, p.num_nodes());
    }

    #[test]
    fn random_pairs_are_distinct_and_seeded() {
        let p = part();
        let a = Pattern::RandomPairs { degree: 7 }.destinations(&p, 3, 42);
        let b = Pattern::RandomPairs { degree: 7 }.destinations(&p, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(!a.contains(&3));
    }

    #[test]
    fn plane_all_to_all_stays_in_plane() {
        let p = part();
        let pat = Pattern::PlaneAllToAll { fixed: Dim::Z };
        for r in 0..p.num_nodes() {
            let me = p.coord_of(r);
            let dests = pat.destinations(&p, r, 0);
            assert_eq!(dests.len(), 15); // 4x4 plane minus self
            for d in dests {
                assert_eq!(p.coord_of(d).get(Dim::Z), me.get(Dim::Z));
            }
        }
    }

    #[test]
    fn degenerate_patterns_are_empty_not_panics() {
        let p: Partition = "4x4".parse().unwrap();
        let params = MachineParams::bgl();
        // rows values that do not divide P (including 0) give the empty
        // pattern everywhere, with a zero peak and zero pairs.
        for rows in [0u32, 3, 7, 17] {
            let t = Pattern::Transpose { rows };
            for r in 0..p.num_nodes() {
                assert!(t.destinations(&p, r, 0).is_empty(), "rows={rows}");
            }
            assert_eq!(t.pair_count(&p, 0), 0);
            assert_eq!(t.peak_cycles(&p, 240, &params, 0), 0.0);
        }
        // A shift whose offset is ≡ 0 (mod P) is self-send only: empty.
        for offset in [0u32, 16, 32] {
            assert!(Pattern::Shift { offset }.destinations(&p, 5, 0).is_empty());
        }
        // Huge offsets reduce mod P instead of overflowing the add.
        let d = Pattern::Shift { offset: u32::MAX }.destinations(&p, 0, 0);
        assert_eq!(d, vec![15]);
    }

    #[test]
    fn empty_pattern_runs_to_completion() {
        let p: Partition = "4x4".parse().unwrap();
        let rep = run_pattern(
            p,
            &Pattern::Transpose { rows: 7 },
            240,
            &MachineParams::bgl(),
            SimConfig::new(p),
            7,
        )
        .expect("empty pattern completes");
        assert_eq!(rep.pairs, 0);
        assert_eq!(rep.stats.packets_delivered, 0);
        assert_eq!(rep.percent_of_peak, 0.0);
    }

    #[test]
    fn patterns_run_and_respect_their_peaks() {
        let p = part();
        let params = MachineParams::bgl();
        for pattern in [
            Pattern::Shift { offset: 3 },
            Pattern::Transpose { rows: 8 },
            Pattern::RandomPairs { degree: 6 },
            Pattern::PlaneAllToAll { fixed: Dim::Z },
        ] {
            let rep = run_pattern(p, &pattern, 480, &params, SimConfig::new(p), 7)
                .expect("pattern completes");
            assert_eq!(
                rep.stats.packets_delivered,
                rep.pairs * packetize(480, 48, 64, &params).len() as u64,
                "{pattern:?}"
            );
            assert!(
                rep.percent_of_peak > 15.0 && rep.percent_of_peak <= 102.0,
                "{pattern:?}: {}",
                rep.percent_of_peak
            );
        }
    }

    #[test]
    fn plane_aa_efficiency_is_high() {
        // A plane AA on a symmetric plane behaves like Table 1's 2-D rows.
        let p: Partition = "4x4x4".parse().unwrap();
        let params = MachineParams::bgl();
        let rep = run_pattern(
            p,
            &Pattern::PlaneAllToAll { fixed: Dim::Z },
            912,
            &params,
            SimConfig::new(p),
            7,
        )
        .expect("completes");
        assert!(rep.percent_of_peak > 60.0, "{}", rep.percent_of_peak);
    }
}
