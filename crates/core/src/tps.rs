//! The Two Phase Schedule (TPS) indirect all-to-all (Section 4.1), plus the
//! credit-based intermediate-memory flow control sketched in the paper's
//! future-work section.
//!
//! Phase 1 sends each packet along a chosen *linear* dimension to the
//! intermediate node sharing the destination's linear coordinate; the
//! intermediate software-forwards it across the remaining *planar*
//! dimensions in phase 2. The phases overlap (pipelining), enabled by
//! reserving disjoint injection-FIFO subsets per phase so phase-1 packets
//! are never queued behind phase-2 packets — use
//! [`tps_inj_class_masks`] when building the simulator configuration.

use crate::workload::{destination_schedule, packetize, AaWorkload, PacketShape};
use bgl_model::MachineParams;
use bgl_sim::{NodeApi, NodeProgram, Packet, PacketMeta, PollHint, RoutingMode, SendSpec};
use bgl_torus::{Coord, Dim, Partition};

pub use crate::flow::CreditConfig;

/// Injection class of phase-1 (linear-dimension) packets and credits.
pub const CLASS_LINEAR: u8 = 0;
/// Injection class of phase-2 (planar) packets.
pub const CLASS_PLANAR: u8 = 1;

/// Packet-meta kinds used by TPS.
const KIND_PHASE1: u8 = 1;
const KIND_PHASE2: u8 = 2;
const KIND_CREDIT: u8 = 3;

/// TPS tuning. Credit-based flow control is no longer configured here:
/// attach a [`Pacer::CreditWindow`](crate::Pacer) to the strategy and the
/// engine enforces the window (see [`bgl_sim::flow`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TpsConfig {
    /// Linear (phase-1) dimension; `None` picks automatically via
    /// [`choose_linear_dim`].
    pub linear: Option<Dim>,
}

/// The paper's linear-dimension choice: prefer the dimension whose removal
/// leaves a *symmetric* plane (the odd-one-out size); otherwise the longest
/// dimension; for 1-D/2-D partitions, the longest active dimension.
///
/// Reproduces every phase-1 choice in Table 3 (up to symmetric ties).
pub fn choose_linear_dim(part: &Partition) -> Dim {
    let active: Vec<Dim> = part.dims().filter(|&d| part.size(d) > 1).collect();
    if active.len() == 3 {
        for &d in &active {
            let mut others = d.others(part.ndims()).filter(|&o| part.size(o) > 1);
            let (a, b) = (others.next(), others.next());
            if let (Some(a), Some(b)) = (a, b) {
                if part.size(a) == part.size(b) {
                    return d;
                }
            }
        }
    }
    // No symmetric plane (or lower-dimensional partition): the longest
    // dimension is the bottleneck and must be the pipelined line.
    active
        .into_iter()
        .reduce(|best, d| {
            if part.size(d) > part.size(best) {
                d
            } else {
                best
            }
        })
        .unwrap_or(Dim::X)
}

/// Injection-FIFO class masks reserving half the FIFOs per phase, given the
/// FIFO count. This is the pipelining enabler: a phase-1 packet is never
/// blocked behind a phase-2 packet in an injection FIFO.
pub fn tps_inj_class_masks(fifo_count: u32) -> Vec<u8> {
    let half = (fifo_count / 2).max(1);
    (0..fifo_count)
        .map(|f| {
            if f < half {
                1 << CLASS_LINEAR
            } else {
                1 << CLASS_PLANAR
            }
        })
        .collect()
}

/// Per-node TPS program.
pub struct TpsProgram {
    rank: u32,
    coord: Coord,
    linear: Dim,
    schedule: Vec<u32>,
    shapes: Vec<PacketShape>,
    alpha_sim_cycles: f64,
    copy_cycles_per_chunk: f64,
    planar_longest_first: bool,
    idx: usize,
    pkt_i: usize,
    done_sending: bool,
}

impl TpsProgram {
    /// Build the program for `rank`.
    pub fn new(
        rank: u32,
        part: &Partition,
        workload: &AaWorkload,
        cfg: &TpsConfig,
        params: &MachineParams,
    ) -> TpsProgram {
        let p = part.num_nodes();
        let dests = workload.dests_per_node(p);
        let schedule = destination_schedule(rank, p, dests, workload.seed);
        let shapes = packetize(
            workload.m_bytes,
            params.software_header_bytes,
            params.min_packet_bytes,
            params,
        );
        let done_sending = schedule.is_empty();
        let linear = cfg.linear.unwrap_or_else(|| choose_linear_dim(part));
        TpsProgram {
            rank,
            coord: part.coord_of(rank),
            linear,
            // Hardware-faithful: plain adaptive routing within the plane
            // (the paper's TPS changes schedules, not the router).
            planar_longest_first: false,
            schedule,
            shapes,
            alpha_sim_cycles: params.alpha_direct_cycles / params.cpu_cycles_per_sim_cycle(),
            copy_cycles_per_chunk: params.gamma_ns_per_byte * params.chunk_bytes as f64 * 1e-9
                / params.secs_per_sim_cycle(),
            idx: 0,
            pkt_i: 0,
            done_sending,
        }
    }

    /// The linear dimension in use.
    pub fn linear_dim(&self) -> Dim {
        self.linear
    }

    /// Round-major iteration: packet `r` of every destination's message is
    /// sent (in randomized destination order) before packet `r+1` of any —
    /// the same interleaving the AR schedule uses. Sending a whole message
    /// back-to-back would stream one path for hundreds of cycles and leave
    /// the opposite-direction links idle at the source.
    fn advance(&mut self) {
        self.idx += 1;
        if self.idx >= self.schedule.len() {
            self.idx = 0;
            self.pkt_i += 1;
            if self.pkt_i >= self.shapes.len() {
                self.done_sending = true;
            }
        }
    }

    fn intermediate_for(&self, dst: Coord) -> Coord {
        self.coord.with(self.linear, dst.get(self.linear))
    }
}

impl NodeProgram for TpsProgram {
    /// Declines only when done sending or credit-blocked toward a linear
    /// intermediate; the ack arrives as a delivered credit packet, so
    /// sleeping until the next delivery is exact.
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if self.done_sending {
            return None;
        }
        let part = *api.partition();
        let dst_rank = self.schedule[self.idx];
        let dst = part.coord_of(dst_rank);
        let inter = self.intermediate_for(dst);
        let shape = self.shapes[self.pkt_i];
        let alpha = if self.pkt_i == 0 {
            self.alpha_sim_cycles
        } else {
            0.0
        };
        let spec = if inter == self.coord {
            // Destination lies in this node's own plane: a direct planar send.
            SendSpec {
                dst_rank,
                chunks: shape.chunks,
                payload_bytes: shape.payload,
                routing: RoutingMode::Adaptive,
                class: CLASS_PLANAR,
                meta: PacketMeta {
                    kind: KIND_PHASE2,
                    a: dst_rank,
                    b: self.rank,
                },
                longest_first: self.planar_longest_first,
                cpu_cost_cycles: alpha,
            }
        } else {
            // Phase 1: travel the linear dimension to the intermediate.
            // Under credit-window pacing, reserve a credit toward the
            // intermediate first; a closed window blocks the pull until
            // acknowledgements return.
            let inter_rank = part.rank_of(inter);
            if !api.try_acquire_credit(inter_rank) {
                return None;
            }
            SendSpec {
                dst_rank: inter_rank,
                chunks: shape.chunks,
                payload_bytes: shape.payload,
                routing: RoutingMode::Adaptive,
                class: CLASS_LINEAR,
                meta: PacketMeta {
                    kind: KIND_PHASE1,
                    a: dst_rank,
                    b: self.rank,
                },
                longest_first: false,
                cpu_cost_cycles: alpha,
            }
        };
        self.advance();
        Some(spec)
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        match pkt.meta.kind {
            KIND_PHASE1 => {
                // Credit accounting happens for every linear-phase packet,
                // whether or not it needs forwarding.
                if let Some(n) = api.credit_receipt(pkt.meta.b) {
                    api.send(SendSpec {
                        dst_rank: pkt.meta.b,
                        chunks: 1,
                        payload_bytes: 0,
                        routing: RoutingMode::Adaptive,
                        class: CLASS_LINEAR,
                        meta: PacketMeta {
                            kind: KIND_CREDIT,
                            a: self.rank,
                            b: n,
                        },
                        longest_first: false,
                        cpu_cost_cycles: 0.0,
                    });
                }
                if pkt.meta.a != self.rank {
                    // Software-forward across the plane (phase 2); the copy
                    // cost γ is charged with the injection.
                    api.send(SendSpec {
                        dst_rank: pkt.meta.a,
                        chunks: pkt.chunks,
                        payload_bytes: pkt.payload_bytes,
                        routing: RoutingMode::Adaptive,
                        class: CLASS_PLANAR,
                        meta: PacketMeta {
                            kind: KIND_PHASE2,
                            a: pkt.meta.a,
                            b: pkt.meta.b,
                        },
                        longest_first: self.planar_longest_first,
                        cpu_cost_cycles: self.copy_cycles_per_chunk * pkt.chunks as f64,
                    });
                }
            }
            KIND_PHASE2 => {} // final delivery
            KIND_CREDIT => api.apply_credit(pkt.meta.a, pkt.meta.b),
            other => panic!("TPS received unknown packet kind {other}"),
        }
    }

    fn is_complete(&self) -> bool {
        self.done_sending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_dim_matches_table_3() {
        // (shape, expected phase-1 dimension). Symmetric-plane preference,
        // else longest.
        for (shape, want) in [
            ("16x8x8", Dim::X),
            ("8x16x8", Dim::Y),
            ("8x8x16", Dim::Z),
            ("16x16x8", Dim::Z),
            ("16x8x16", Dim::Y),
            ("8x16x16", Dim::X),
            ("8x32x16", Dim::Y),
            ("16x32x16", Dim::Y),
            ("32x16x16", Dim::X),
            ("32x32x16", Dim::Z),
            ("40x32x16", Dim::X),
        ] {
            let part: Partition = shape.parse().unwrap();
            assert_eq!(choose_linear_dim(&part), want, "{shape}");
        }
    }

    #[test]
    fn linear_dim_low_dimensional() {
        assert_eq!(choose_linear_dim(&"16x1x1".parse().unwrap()), Dim::X);
        assert_eq!(choose_linear_dim(&"8x32".parse().unwrap()), Dim::Y);
    }

    #[test]
    fn class_masks_split_fifos() {
        let masks = tps_inj_class_masks(6);
        assert_eq!(masks.len(), 6);
        let linear = masks.iter().filter(|&&m| m == 1 << CLASS_LINEAR).count();
        let planar = masks.iter().filter(|&&m| m == 1 << CLASS_PLANAR).count();
        assert_eq!(linear, 3);
        assert_eq!(planar, 3);
    }

    #[test]
    fn phase1_packets_travel_linear_dimension_only() {
        let part: Partition = "4x2x2".parse().unwrap();
        let w = AaWorkload::full(100);
        let cfg = TpsConfig {
            linear: Some(Dim::X),
        };
        let mut prog = TpsProgram::new(0, &part, &w, &cfg, &MachineParams::bgl());
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, &part, &mut q);
        while let Some(s) = prog.next_send(&mut api) {
            let dst = part.coord_of(s.dst_rank);
            let src = part.coord_of(0);
            match s.class {
                CLASS_LINEAR => {
                    // Intermediate differs from the source only along X.
                    assert_eq!(dst.get(Dim::Y), src.get(Dim::Y));
                    assert_eq!(dst.get(Dim::Z), src.get(Dim::Z));
                    assert_eq!(s.meta.kind, KIND_PHASE1);
                }
                CLASS_PLANAR => {
                    // Direct planar send: same X.
                    assert_eq!(dst.get(Dim::X), src.get(Dim::X));
                    assert_eq!(s.meta.kind, KIND_PHASE2);
                }
                c => panic!("unexpected class {c}"),
            }
        }
        assert!(prog.is_complete());
    }

    #[test]
    fn intermediate_forwards_phase1() {
        let part: Partition = "4x2x2".parse().unwrap();
        let w = AaWorkload::full(64);
        let cfg = TpsConfig {
            linear: Some(Dim::X),
        };
        // Node 1 acts as intermediate for a packet whose final dest is 5.
        let mut prog = TpsProgram::new(1, &part, &w, &cfg, &MachineParams::bgl());
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(1, part.coord_of(1), 10, &part, &mut q);
        let pkt = Packet {
            id: 0,
            src_rank: 0,
            dst: part.coord_of(1),
            chunks: 4,
            payload_bytes: 64,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(0),
                part.coord_of(1),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: CLASS_LINEAR,
            meta: PacketMeta {
                kind: KIND_PHASE1,
                a: 5,
                b: 0,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        prog.on_packet(&mut api, &pkt);
        assert_eq!(q.len(), 1);
        let fwd = &q[0];
        assert_eq!(fwd.dst_rank, 5);
        assert_eq!(fwd.class, CLASS_PLANAR);
        assert_eq!(fwd.meta.kind, KIND_PHASE2);
        assert!(
            fwd.cpu_cost_cycles > 0.0,
            "forwarding must pay the copy cost"
        );
    }

    #[test]
    fn phase1_to_final_destination_is_not_forwarded() {
        let part: Partition = "4x2x2".parse().unwrap();
        let w = AaWorkload::full(64);
        let cfg = TpsConfig {
            linear: Some(Dim::X),
        };
        let mut prog = TpsProgram::new(1, &part, &w, &cfg, &MachineParams::bgl());
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(1, part.coord_of(1), 10, &part, &mut q);
        let pkt_meta = PacketMeta {
            kind: KIND_PHASE1,
            a: 1,
            b: 0,
        };
        let pkt = Packet {
            id: 0,
            src_rank: 0,
            dst: part.coord_of(1),
            chunks: 4,
            payload_bytes: 64,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(0),
                part.coord_of(1),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: CLASS_LINEAR,
            meta: pkt_meta,
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        prog.on_packet(&mut api, &pkt);
        assert!(q.is_empty());
    }

    #[test]
    fn credit_window_blocks_and_credits_reopen() {
        let part: Partition = "8x1x1".parse().unwrap();
        let w = AaWorkload::full(240 * 20); // many packets per destination
        let cfg = TpsConfig {
            linear: Some(Dim::X),
        };
        let mut prog = TpsProgram::new(0, &part, &w, &cfg, &MachineParams::bgl());
        // The credit window now lives in the engine's per-node ledger,
        // surfaced to the program through the NodeApi.
        let mut ledger = bgl_sim::FlowLedger::new(bgl_sim::FlowSpec::Credit {
            window_packets: 3,
            credit_every: 1,
        });
        let mut q = std::collections::VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, &part, &mut q).with_flow(&mut ledger);
        // On a line, every destination IS its own intermediate; pull sends
        // until the first window closes.
        let mut sent = 0;
        while prog.next_send(&mut api).is_some() {
            sent += 1;
            assert!(sent < 10_000);
        }
        assert!(!prog.is_complete(), "window must close before completion");
        // A credit from the blocking intermediate reopens the window. The
        // blocked head is the current schedule entry.
        let blocked_dst = prog.schedule[prog.idx];
        let credit = Packet {
            id: 1,
            src_rank: blocked_dst,
            dst: part.coord_of(0),
            chunks: 1,
            payload_bytes: 0,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(blocked_dst),
                part.coord_of(0),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: CLASS_LINEAR,
            meta: PacketMeta {
                kind: KIND_CREDIT,
                a: blocked_dst,
                b: 1,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        prog.on_packet(&mut api, &credit);
        assert!(
            prog.next_send(&mut api).is_some(),
            "credit must reopen the window"
        );
    }
}
