//! Automatic strategy selection — the paper's bottom line (Section 5):
//! "all-to-all performance in excess of 95 % of peak can be achieved by
//! using our best algorithm: a direct algorithm on a symmetric torus or the
//! Two Phase algorithm on an asymmetric torus", with virtual-mesh combining
//! below the short-message crossover.

use crate::strategy::StrategyKind;
use bgl_model::MachineParams;
use bgl_torus::{Partition, VirtualMesh, VmeshLayout};

/// Message size (bytes) below which combining wins. The paper measures the
/// crossover between 32 and 64 bytes; we use the exact Equation-3/4 model
/// crossover when it exists, clamped into the paper's observed band.
pub fn combining_crossover_bytes(part: &Partition, params: &MachineParams) -> u64 {
    let vm = VirtualMesh::choose(*part, VmeshLayout::Auto);
    let exact = bgl_model::vmesh::crossover_exact(&vm, params)
        .unwrap_or(params.software_header_bytes as f64 - 2.0 * params.proto_header_bytes as f64);
    (exact.round() as u64).clamp(16, 64)
}

/// Pick the paper's best strategy for `(part, m)`.
pub fn auto_select(part: &Partition, m: u64, params: &MachineParams) -> StrategyKind {
    // The indirect schedules are 3-D constructions (see
    // [`StrategyKind::supported_dims`]); on higher-arity tori the adaptive
    // direct scheme is the only paper strategy that generalizes, so Auto
    // must resolve to it — Auto never yields a strategy that would reject
    // the partition.
    if part.ndims() > 3 {
        return StrategyKind::ar();
    }
    if part.num_nodes() >= 16 && m <= combining_crossover_bytes(part, params) {
        return StrategyKind::vmesh();
    }
    if part.is_symmetric() {
        StrategyKind::ar()
    } else {
        StrategyKind::tps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(shape: &str, m: u64) -> StrategyKind {
        auto_select(&shape.parse().unwrap(), m, &MachineParams::bgl())
    }

    #[test]
    fn symmetric_large_message_uses_ar() {
        assert_eq!(sel("8x8x8", 4096), StrategyKind::ar());
        assert_eq!(sel("16x16", 1024), StrategyKind::ar());
    }

    #[test]
    fn asymmetric_large_message_uses_tps() {
        assert!(matches!(
            sel("8x32x16", 4096),
            StrategyKind::TwoPhaseSchedule { .. }
        ));
        assert!(matches!(
            sel("40x32x16", 1024),
            StrategyKind::TwoPhaseSchedule { .. }
        ));
        assert!(matches!(
            sel("8x8x2M", 1024),
            StrategyKind::TwoPhaseSchedule { .. }
        ));
    }

    #[test]
    fn short_messages_use_vmesh() {
        assert!(matches!(sel("8x8x8", 8), StrategyKind::VirtualMesh { .. }));
        assert!(matches!(
            sel("8x32x16", 16),
            StrategyKind::VirtualMesh { .. }
        ));
    }

    #[test]
    fn crossover_in_paper_band() {
        let c = combining_crossover_bytes(&"8x8x8".parse().unwrap(), &MachineParams::bgl());
        assert!((16..=64).contains(&c), "{c}");
    }

    #[test]
    fn tiny_partitions_never_combine() {
        // Combining gains nothing on a couple of nodes.
        assert_eq!(sel("4x1x1", 8), StrategyKind::ar());
    }

    #[test]
    fn high_arity_tori_always_use_a_direct_scheme() {
        // TPS and VMesh are 3-D-only; Auto must never resolve to them on
        // a higher-arity torus, whatever the symmetry or message size.
        assert_eq!(sel("4x4x4x4", 4096), StrategyKind::ar());
        assert_eq!(sel("4x4x4x4x2", 1024), StrategyKind::ar());
        assert_eq!(sel("4x4x4x4", 8), StrategyKind::ar());
        let part: bgl_torus::Partition = "4x4x4x4x2".parse().unwrap();
        assert!(sel("4x4x4x4x2", 16)
            .supported_dims()
            .contains(&part.ndims()));
    }
}
