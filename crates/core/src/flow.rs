//! Strategy-level injection pacing and intermediate-memory flow control.
//!
//! Every [`StrategyKind`](crate::StrategyKind) variant carries a
//! [`Pacer`] describing *how* its injection is flow-controlled; the
//! pacer is resolved against the workload's peak injection rate into a
//! concrete [`bgl_sim::FlowSpec`] that the engine enforces per cycle.
//! This is the one place the paper's two flow-control ideas — pacing at
//! the bisection-peak rate (Section 4.3's throttling experiments) and
//! the future-work credit window bounding intermediate memory — are
//! defined; direct, TPS, XYZ and VMesh strategies all compose with it
//! rather than growing private knobs.

use bgl_sim::FlowSpec;

/// Credit-based flow control bounding intermediate-node memory (the
/// paper's future-work sketch): a source may have at most
/// `window_packets` unacknowledged packets outstanding per
/// intermediate; intermediates return one small credit packet per
/// `credit_every` packets received from a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CreditConfig {
    /// Max unacknowledged packets per (source, intermediate) pair.
    pub window_packets: u32,
    /// Intermediate acknowledges every this-many packets from a source
    /// (the paper's example: one 32-byte credit per ten 256-byte packets
    /// ≈ 1 % bandwidth overhead).
    pub credit_every: u32,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            window_packets: 40,
            credit_every: 10,
        }
    }
}

/// How a strategy's injection is paced.
///
/// `Eq`/`Hash` are implemented manually (the rate factor is hashed by
/// bit pattern, with `-0.0` collapsed onto `0.0`) so pacers can key
/// caches and deduplicated run sets; a NaN factor is not meaningful and
/// must not be constructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Pacer {
    /// No pacing: inject as fast as FIFO space allows.
    #[default]
    Unpaced,
    /// Rate-window throttling: pace injection at `factor ×` the
    /// workload's bisection-peak rate (1.0 = exactly the peak).
    RateWindow {
        /// Pacing multiplier over the peak injection rate.
        factor: f64,
    },
    /// Credit-based windows bounding per-intermediate memory.
    CreditWindow {
        /// Window size and acknowledgement quantum.
        credit: CreditConfig,
    },
}

impl Eq for Pacer {}

impl std::hash::Hash for Pacer {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Pacer::Unpaced => {}
            // `+ 0.0` collapses -0.0 onto 0.0 so Hash stays consistent
            // with the derived PartialEq.
            Pacer::RateWindow { factor } => (factor + 0.0).to_bits().hash(state),
            Pacer::CreditWindow { credit } => credit.hash(state),
        }
    }
}

impl Pacer {
    /// Rate-window pacing at `factor ×` the peak injection rate.
    pub fn rate(factor: f64) -> Pacer {
        Pacer::RateWindow { factor }
    }

    /// Credit windows of `window_packets`, acknowledged every
    /// `credit_every` receipts.
    pub fn credit(window_packets: u32, credit_every: u32) -> Pacer {
        Pacer::CreditWindow {
            credit: CreditConfig {
                window_packets,
                credit_every,
            },
        }
    }

    /// Whether this is [`Pacer::Unpaced`].
    pub fn is_unpaced(&self) -> bool {
        matches!(self, Pacer::Unpaced)
    }

    /// The credit configuration, if this pacer is credit-based.
    pub fn credit_config(&self) -> Option<CreditConfig> {
        match self {
            Pacer::CreditWindow { credit } => Some(*credit),
            _ => None,
        }
    }

    /// Resolve into the engine-enforced [`FlowSpec`], given the
    /// workload's peak injection rate in chunks per cycle (the
    /// rate-window factor is a multiplier over that peak).
    pub fn resolve(&self, peak_injection_rate: f64) -> FlowSpec {
        match self {
            Pacer::Unpaced => FlowSpec::Unpaced,
            Pacer::RateWindow { factor } => FlowSpec::Rate {
                chunks_per_cycle: peak_injection_rate * factor,
            },
            Pacer::CreditWindow { credit } => FlowSpec::Credit {
                window_packets: credit.window_packets,
                credit_every: credit.credit_every,
            },
        }
    }

    /// Short suffix for report names: `""`, `"-throttled"`, `"-credit"`.
    pub fn name_suffix(&self) -> &'static str {
        match self {
            Pacer::Unpaced => "",
            Pacer::RateWindow { .. } => "-throttled",
            Pacer::CreditWindow { .. } => "-credit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_resolves_to_unpaced() {
        assert_eq!(Pacer::Unpaced.resolve(3.0), FlowSpec::Unpaced);
        assert!(Pacer::default().is_unpaced());
    }

    #[test]
    fn rate_window_scales_peak() {
        let spec = Pacer::rate(0.5).resolve(4.0);
        assert_eq!(
            spec,
            FlowSpec::Rate {
                chunks_per_cycle: 2.0
            }
        );
    }

    #[test]
    fn credit_window_passes_through() {
        let spec = Pacer::credit(8, 2).resolve(4.0);
        assert_eq!(
            spec,
            FlowSpec::Credit {
                window_packets: 8,
                credit_every: 2
            }
        );
        assert_eq!(
            Pacer::credit(8, 2).credit_config(),
            Some(CreditConfig {
                window_packets: 8,
                credit_every: 2
            })
        );
    }

    #[test]
    fn hash_matches_eq_for_signed_zero() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Pacer::rate(0.0));
        assert!(set.contains(&Pacer::rate(-0.0)));
        set.insert(Pacer::rate(1.0));
        set.insert(Pacer::rate(1.0));
        set.insert(Pacer::credit(4, 2));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn pacer_round_trips_serde() {
        for p in [Pacer::Unpaced, Pacer::rate(1.25), Pacer::credit(16, 4)] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Pacer = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
