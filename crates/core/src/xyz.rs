//! The three-phase XYZ software-routing all-to-all the paper contrasts TPS
//! against (Section 4.1): "A similar scheme can also be designed over a 3D
//! torus with two phases of forwarding, where packets are first routed
//! along X links and then turned around in software along the Y dimension
//! and then routed in software along the Z dimension; this approach is
//! similar to the HPCC Randomaccess strategy. We believe the Two Phase
//! scheme gains from lower overheads as it has only one forwarding phase."
//!
//! Implemented here so that claim is *measurable*: every packet makes up to
//! three software hops (X line → Y line → Z line), paying the reception,
//! copy and re-injection CPU costs at **two** intermediates instead of
//! TPS's one.

use crate::workload::{destination_schedule, packetize, AaWorkload, PacketShape};
use bgl_model::MachineParams;
use bgl_sim::{NodeApi, NodeProgram, Packet, PacketMeta, PollHint, RoutingMode, SendSpec};
use bgl_torus::{Coord, Partition};

/// Injection classes, one per software-routing dimension, so an X-phase
/// packet is never queued behind a Z-phase packet in an injection FIFO.
pub const CLASS_X: u8 = 0;
/// Y-phase class.
pub const CLASS_Y: u8 = 1;
/// Z-phase class.
pub const CLASS_Z: u8 = 2;

/// Packet kind: the dimension the packet is currently travelling,
/// encoded as `dim.index() + 1` (1..=MAX_DIMS).
const KIND_X: u8 = 1;
/// Credit-acknowledgement packet kind (credit-window pacing only). Sits
/// above every per-dimension kind, which top out at `MAX_DIMS`.
const KIND_CREDIT: u8 = bgl_torus::MAX_DIMS as u8 + 1;
/// Kind-byte flag marking a source-leg packet that reserved a credit
/// toward its first-hop intermediate; the intermediate acknowledges and
/// forwards with the flag cleared (later legs hold no reservation).
const FRESH: u8 = 0x80;

/// Injection-FIFO class masks splitting the FIFOs round-robin across the
/// per-dimension phases (class `d` for software-routing dimension `d`).
pub fn xyz_inj_class_masks(fifo_count: u32, ndims: usize) -> Vec<u8> {
    (0..fifo_count)
        .map(|f| 1u8 << (f as usize % ndims.max(1)))
        .collect()
}

/// Per-node program for the XYZ scheme.
pub struct XyzProgram {
    rank: u32,
    coord: Coord,
    schedule: Vec<u32>,
    shapes: Vec<PacketShape>,
    alpha_sim_cycles: f64,
    copy_cycles_per_chunk: f64,
    idx: usize,
    pkt_i: usize,
    done_sending: bool,
}

impl XyzProgram {
    /// Build the program for `rank`.
    pub fn new(
        rank: u32,
        part: &Partition,
        workload: &AaWorkload,
        params: &MachineParams,
    ) -> XyzProgram {
        let p = part.num_nodes();
        let dests = workload.dests_per_node(p);
        let schedule = destination_schedule(rank, p, dests, workload.seed);
        let shapes = packetize(
            workload.m_bytes,
            params.software_header_bytes,
            params.min_packet_bytes,
            params,
        );
        let done_sending = schedule.is_empty();
        XyzProgram {
            rank,
            coord: part.coord_of(rank),
            schedule,
            shapes,
            alpha_sim_cycles: params.alpha_direct_cycles / params.cpu_cycles_per_sim_cycle(),
            copy_cycles_per_chunk: params.gamma_ns_per_byte * params.chunk_bytes as f64 * 1e-9
                / params.secs_per_sim_cycle(),
            idx: 0,
            pkt_i: 0,
            done_sending,
        }
    }

    /// The next software hop for a packet currently at `here` and finally
    /// destined for `dst`: correct one dimension at a time in ascending
    /// dimension order (X then Y then Z on 3D, continuing through d3…
    /// on higher-arity tori). Returns the hop target, the class/kind of
    /// that leg, or `None` when `here == dst`.
    fn next_leg(part: &Partition, here: Coord, dst: Coord) -> Option<(Coord, u8, u8)> {
        for d in part.dims() {
            if here.get(d) != dst.get(d) {
                let class = d.index() as u8;
                let kind = d.index() as u8 + 1;
                return Some((here.with(d, dst.get(d)), class, kind));
            }
        }
        None
    }

    fn advance(&mut self) {
        self.idx += 1;
        if self.idx >= self.schedule.len() {
            self.idx = 0;
            self.pkt_i += 1;
            if self.pkt_i >= self.shapes.len() {
                self.done_sending = true;
            }
        }
    }
}

impl NodeProgram for XyzProgram {
    /// Declines only when done sending or credit-blocked toward the
    /// first-hop intermediate; the ack arrives as a delivered credit
    /// packet, so sleeping until the next delivery is exact.
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if self.done_sending {
            return None;
        }
        let part = *api.partition();
        let dst_rank = self.schedule[self.idx];
        let dst = part.coord_of(dst_rank);
        let shape = self.shapes[self.pkt_i];
        let alpha = if self.pkt_i == 0 {
            self.alpha_sim_cycles
        } else {
            0.0
        };
        let (hop, class, kind) =
            Self::next_leg(&part, self.coord, dst).expect("schedule never includes self");
        let hop_rank = part.rank_of(hop);
        // Under credit-window pacing, reserve a credit toward the first-hop
        // intermediate (not a final destination — those hold no forwarding
        // memory) and mark the packet FRESH so the intermediate knows an
        // acknowledgement is owed.
        let kind = if hop_rank != dst_rank {
            if !api.try_acquire_credit(hop_rank) {
                return None;
            }
            kind | FRESH
        } else {
            kind
        };
        self.advance();
        Some(SendSpec {
            dst_rank: hop_rank,
            chunks: shape.chunks,
            payload_bytes: shape.payload,
            routing: RoutingMode::Adaptive,
            class,
            meta: PacketMeta {
                kind,
                a: dst_rank,
                b: self.rank,
            },
            longest_first: false,
            cpu_cost_cycles: alpha,
        })
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        if pkt.meta.kind == KIND_CREDIT {
            api.apply_credit(pkt.meta.a, pkt.meta.b);
            return;
        }
        debug_assert!((KIND_X..KIND_CREDIT).contains(&(pkt.meta.kind & !FRESH)));
        if pkt.meta.kind & FRESH != 0 {
            // We are the source's first-hop intermediate: acknowledge its
            // reservation once the quantum fills.
            if let Some(n) = api.credit_receipt(pkt.meta.b) {
                api.send(SendSpec {
                    dst_rank: pkt.meta.b,
                    chunks: 1,
                    payload_bytes: 0,
                    routing: RoutingMode::Adaptive,
                    class: pkt.class,
                    meta: PacketMeta {
                        kind: KIND_CREDIT,
                        a: self.rank,
                        b: n,
                    },
                    longest_first: false,
                    cpu_cost_cycles: 0.0,
                });
            }
        }
        if pkt.meta.a == self.rank {
            return; // final delivery
        }
        let part = *api.partition();
        let dst = part.coord_of(pkt.meta.a);
        let (hop, class, kind) =
            Self::next_leg(&part, self.coord, dst).expect("not final, so a leg remains");
        api.send(SendSpec {
            dst_rank: part.rank_of(hop),
            chunks: pkt.chunks,
            payload_bytes: pkt.payload_bytes,
            routing: RoutingMode::Adaptive,
            class,
            meta: PacketMeta {
                kind,
                a: pkt.meta.a,
                b: pkt.meta.b,
            },
            longest_first: false,
            cpu_cost_cycles: self.copy_cycles_per_chunk * pkt.chunks as f64,
        });
    }

    fn is_complete(&self) -> bool {
        self.done_sending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::Dim;
    use std::collections::VecDeque;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    #[test]
    fn legs_follow_xyz_order() {
        let part: Partition = "4x4x4".parse().unwrap();
        let here = Coord::new(0, 0, 0);
        let dst = Coord::new(2, 3, 1);
        let (h1, c1, _) = XyzProgram::next_leg(&part, here, dst).unwrap();
        assert_eq!(h1, Coord::new(2, 0, 0));
        assert_eq!(c1, CLASS_X);
        let (h2, c2, _) = XyzProgram::next_leg(&part, h1, dst).unwrap();
        assert_eq!(h2, Coord::new(2, 3, 0));
        assert_eq!(c2, CLASS_Y);
        let (h3, c3, _) = XyzProgram::next_leg(&part, h2, dst).unwrap();
        assert_eq!(h3, dst);
        assert_eq!(c3, CLASS_Z);
        assert!(XyzProgram::next_leg(&part, dst, dst).is_none());
    }

    #[test]
    fn source_sends_first_leg_only() {
        let part: Partition = "4x4x4".parse().unwrap();
        let w = AaWorkload::full(64);
        let mut prog = XyzProgram::new(0, &part, &w, &params());
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, &part, &mut q);
        while let Some(s) = prog.next_send(&mut api) {
            let hop = part.coord_of(s.dst_rank);
            let me = part.coord_of(0);
            // A first leg differs from the source in exactly one dimension,
            // and if X needs correcting it is X.
            let final_dst = part.coord_of(s.meta.a);
            if final_dst.get(Dim::X) != me.get(Dim::X) {
                assert_eq!(s.class, CLASS_X);
                assert_eq!(hop.get(Dim::Y), me.get(Dim::Y));
                assert_eq!(hop.get(Dim::Z), me.get(Dim::Z));
            }
        }
        assert!(prog.is_complete());
    }

    #[test]
    fn forwarding_pays_copy_cost() {
        let part: Partition = "4x4x4".parse().unwrap();
        let w = AaWorkload::full(64);
        // Node at (2,0,0) forwards an X-phase packet towards (2,3,1).
        let me = part.rank_of(Coord::new(2, 0, 0));
        let final_dst = part.rank_of(Coord::new(2, 3, 1));
        let mut prog = XyzProgram::new(me, &part, &w, &params());
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(me, part.coord_of(me), 5, &part, &mut q);
        let pkt = Packet {
            id: 0,
            src_rank: 0,
            dst: part.coord_of(me),
            chunks: 4,
            payload_bytes: 64,
            plan: bgl_torus::HopPlan::new(
                &part,
                part.coord_of(0),
                part.coord_of(me),
                bgl_torus::TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: bgl_sim::Vc::Dynamic0,
            class: CLASS_X,
            meta: PacketMeta {
                kind: 1,
                a: final_dst,
                b: 0,
            },
            longest_first: false,
            injected_at: 0,
            detour: bgl_sim::NO_DETOUR,
        };
        prog.on_packet(&mut api, &pkt);
        assert_eq!(q.len(), 1);
        let fwd = &q[0];
        assert_eq!(fwd.class, CLASS_Y);
        assert_eq!(part.coord_of(fwd.dst_rank), Coord::new(2, 3, 0));
        assert!(fwd.cpu_cost_cycles > 0.0);
    }

    #[test]
    fn class_masks_cover_three_phases() {
        let masks = xyz_inj_class_masks(6, 3);
        assert_eq!(masks.iter().filter(|&&m| m == 1 << CLASS_X).count(), 2);
        assert_eq!(masks.iter().filter(|&&m| m == 1 << CLASS_Y).count(), 2);
        assert_eq!(masks.iter().filter(|&&m| m == 1 << CLASS_Z).count(), 2);
    }

    #[test]
    fn class_masks_and_legs_follow_arity() {
        // On a 4D torus the round-robin covers four classes…
        let masks = xyz_inj_class_masks(8, 4);
        for c in 0..4u8 {
            assert_eq!(masks.iter().filter(|&&m| m == 1 << c).count(), 2);
        }
        // …and legs continue past Z into d3.
        let part = Partition::torus_nd(&[2, 2, 2, 2]);
        let here = Coord::zero();
        let dst = Coord::from_slice(&[0, 0, 0, 1]);
        let (hop, class, kind) = XyzProgram::next_leg(&part, here, dst).unwrap();
        assert_eq!(hop, dst);
        assert_eq!(class, 3);
        assert_eq!(kind, 4);
        assert!(kind < KIND_CREDIT);
    }
}
