//! Measuring the model parameters from benchmarks — the paper's §2.1
//! ("The model parameters are measured from ping-pong benchmark and
//! measuring all-to-all performance with small messages on smaller
//! processor partitions"), reproduced against the simulator.
//!
//! [`fit_ptp_params`] runs single-message latency benchmarks across
//! message sizes on an otherwise idle partition and least-squares fits
//! Equation 1's affine form `T(m) = α + (m+h)·β`, recovering the α and β
//! that the rest of the models consume. The fit doubles as an end-to-end
//! consistency check: the recovered β must match the link bandwidth the
//! simulator was built around.

use crate::workload::packetize;
use bgl_model::MachineParams;
use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig};
use bgl_torus::Partition;

/// Result of a parameter fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// Fitted per-message startup α, in simulator cycles.
    pub alpha_cycles: f64,
    /// Fitted per-byte time β, in nanoseconds.
    pub beta_ns_per_byte: f64,
    /// Coefficient of determination of the linear fit.
    pub r_squared: f64,
    /// The (m, cycles) samples the fit used.
    pub samples: Vec<(u64, u64)>,
}

/// One-way message time in cycles between two neighbouring nodes on
/// `part`, sending `m` application bytes with the direct runtime's
/// packetization and per-destination α.
pub fn one_way_message_cycles(part: &Partition, m: u64, params: &MachineParams) -> u64 {
    let p = part.num_nodes();
    assert!(p >= 2, "need two nodes");
    let shapes = packetize(
        m,
        params.software_header_bytes,
        params.min_packet_bytes,
        params,
    );
    let alpha = params.alpha_direct_cycles / params.cpu_cycles_per_sim_cycle();
    let n = shapes.len() as u64;
    let sends: Vec<SendSpec> = shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            SendSpec::adaptive(1, s.chunks, s.payload).with_cpu_cost(if i == 0 {
                alpha
            } else {
                0.0
            })
        })
        .collect();
    let mut programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(ScriptedProgram::new(sends, 0)),
        Box::new(ScriptedProgram::new(vec![], n)),
    ];
    for _ in 2..p {
        programs.push(Box::new(ScriptedProgram::idle()));
    }
    let cfg = SimConfig::new(*part);
    Engine::new(cfg, programs)
        .run()
        .expect("idle-network message completes")
        .completion_cycle
}

/// Least-squares fit of `T(m) = α' + m·β` over one-way latencies measured
/// on the simulator (α' absorbs the software header's wire time, exactly
/// as the paper's ping-pong fit does).
pub fn fit_ptp_params(part: &Partition, params: &MachineParams) -> FittedModel {
    let sizes: Vec<u64> = vec![192, 432, 912, 1872, 3792, 7632, 15312];
    let samples: Vec<(u64, u64)> = sizes
        .iter()
        .map(|&m| (m, one_way_message_cycles(part, m, params)))
        .collect();
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|&(m, _)| m as f64).sum();
    let sy: f64 = samples.iter().map(|&(_, t)| t as f64).sum();
    let sxx: f64 = samples.iter().map(|&(m, _)| (m as f64) * (m as f64)).sum();
    let sxy: f64 = samples.iter().map(|&(m, t)| (m as f64) * (t as f64)).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    // R².
    let mean_y = sy / n;
    let ss_tot: f64 = samples
        .iter()
        .map(|&(_, t)| (t as f64 - mean_y).powi(2))
        .sum();
    let ss_res: f64 = samples
        .iter()
        .map(|&(m, t)| (t as f64 - (intercept + slope * m as f64)).powi(2))
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    FittedModel {
        alpha_cycles: intercept,
        beta_ns_per_byte: slope * params.secs_per_sim_cycle() * 1e9,
        r_squared,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_latency_grows_with_size() {
        let part: Partition = "4x1x1".parse().unwrap();
        let params = MachineParams::bgl();
        let small = one_way_message_cycles(&part, 192, &params);
        let large = one_way_message_cycles(&part, 3792, &params);
        assert!(large > small * 10, "{small} vs {large}");
    }

    #[test]
    fn fit_recovers_beta_near_configured() {
        // The simulator serializes one 30-payload-byte chunk per cycle on
        // an idle path, so the fitted β must come out at the configured
        // 6.48 ns/B within a few percent (granularity noise).
        let part: Partition = "4x1x1".parse().unwrap();
        let params = MachineParams::bgl();
        let fit = fit_ptp_params(&part, &params);
        let err = (fit.beta_ns_per_byte - params.beta_ns_per_byte).abs() / params.beta_ns_per_byte;
        assert!(
            err < 0.10,
            "fitted β = {} ns/B (configured {})",
            fit.beta_ns_per_byte,
            params.beta_ns_per_byte
        );
        assert!(fit.r_squared > 0.999, "r² = {}", fit.r_squared);
    }

    #[test]
    fn fit_alpha_is_positive_and_reasonable() {
        // α' = configured α (≈3.3 cycles) + per-packet handling + header
        // wire time: positive and below ~50 cycles.
        let part: Partition = "4x1x1".parse().unwrap();
        let params = MachineParams::bgl();
        let fit = fit_ptp_params(&part, &params);
        assert!(fit.alpha_cycles > 0.0, "{}", fit.alpha_cycles);
        assert!(fit.alpha_cycles < 50.0, "{}", fit.alpha_cycles);
    }

    #[test]
    fn fit_samples_are_recorded() {
        let part: Partition = "2x1x1".parse().unwrap();
        let fit = fit_ptp_params(&part, &MachineParams::bgl());
        assert_eq!(fit.samples.len(), 7);
        assert!(fit.samples.windows(2).all(|w| w[1].1 > w[0].1));
    }
}
