//! All-to-all workload description: message sizes, packetization and
//! randomized destination schedules.

use bgl_model::MachineParams;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An all-to-all personalized exchange workload: every node sends
/// `m_bytes` to each destination in its (possibly sampled) destination set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AaWorkload {
    /// Application bytes per (source, destination) pair.
    pub m_bytes: u64,
    /// Fraction of the `P-1` possible destinations each node actually
    /// sends to, in `(0, 1]`. `1.0` is the full all-to-all. Values below 1
    /// sample a spatially uniform destination subset — the instantaneous
    /// link load distribution is that of the full exchange, the run is just
    /// shorter. Used to keep simulations of the very large partitions
    /// tractable (documented per-experiment in EXPERIMENTS.md).
    pub coverage: f64,
    /// Packets sent to one destination before moving to the next (the
    /// production MPI tuning parameter; usually 1 or 2).
    pub packets_per_visit: u32,
    /// Workload RNG seed (destination-order randomization).
    pub seed: u64,
}

impl AaWorkload {
    /// Full all-to-all of `m_bytes` per pair.
    pub fn full(m_bytes: u64) -> AaWorkload {
        AaWorkload {
            m_bytes,
            coverage: 1.0,
            packets_per_visit: 1,
            seed: 0xaa11,
        }
    }

    /// Sampled all-to-all (see [`coverage`](Self::coverage)).
    pub fn sampled(m_bytes: u64, coverage: f64) -> AaWorkload {
        assert!(
            coverage > 0.0 && coverage <= 1.0,
            "coverage must be in (0,1]"
        );
        AaWorkload {
            coverage,
            ..AaWorkload::full(m_bytes)
        }
    }

    /// Number of destinations per node on a partition of `p` nodes.
    pub fn dests_per_node(&self, p: u32) -> u32 {
        let others = p.saturating_sub(1);
        // A single-node partition has nobody to send to at any coverage;
        // guarding here also keeps `clamp(1, 0)` (min > max) from
        // panicking on the sampled path.
        if self.coverage >= 1.0 || others == 0 {
            others
        } else {
            ((others as f64 * self.coverage).round() as u32).clamp(1, others)
        }
    }

    /// Effective per-pair bytes for peak-time computation: the sampled
    /// exchange moves `dests/(P-1)` of the full traffic.
    pub fn effective_fraction(&self, p: u32) -> f64 {
        let others = p.saturating_sub(1).max(1);
        self.dests_per_node(p) as f64 / others as f64
    }
}

/// One packet of a packetized message: wire chunks and application payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketShape {
    /// Wire size in 32-byte chunks (1..=8).
    pub chunks: u8,
    /// Application payload bytes carried.
    pub payload: u32,
}

/// Split a message of `m` application bytes plus `header` protocol bytes
/// into BG/L packets: up to 240 payload-capacity bytes per 256-byte packet,
/// rounded up to 32-byte chunks, with a floor of `min_packet` bytes.
///
/// The direct strategies use `header = 48` (the software header `h`,
/// carried in the first packet); the combining runtime uses `header = 8`
/// (`proto`).
pub fn packetize(m: u64, header: u32, min_packet: u32, params: &MachineParams) -> Vec<PacketShape> {
    let payload_cap = params.max_packet_payload() as u64;
    let overhead = params.packet_overhead_bytes as u64;
    let chunk = params.chunk_bytes as u64;
    let total = m + header as u64;
    let n = total.div_ceil(payload_cap).max(1);
    let mut out = Vec::with_capacity(n as usize);
    let mut app_left = m;
    let mut header_left = header as u64;
    for _ in 0..n {
        let head_part = header_left.min(payload_cap);
        header_left -= head_part;
        let app_part = app_left.min(payload_cap - head_part);
        app_left -= app_part;
        let wire = (head_part + app_part + overhead).max(min_packet as u64);
        let chunks = wire.div_ceil(chunk).min(8);
        out.push(PacketShape {
            chunks: chunks as u8,
            payload: app_part as u32,
        });
    }
    debug_assert_eq!(app_left, 0);
    out
}

/// Total wire chunks of a packetized message.
pub fn total_chunks(shapes: &[PacketShape]) -> u64 {
    shapes.iter().map(|s| s.chunks as u64).sum()
}

/// Build this node's randomized destination schedule: `dests` destinations,
/// spatially uniform (evenly spaced in rank order with jitter when
/// sampling), visited in a per-node random order.
pub fn destination_schedule(rank: u32, p: u32, dests: u32, seed: u64) -> Vec<u32> {
    assert!(p >= 2, "need at least two nodes");
    let others = p - 1;
    let dests = dests.clamp(1, others);
    let mut rng = SmallRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut list: Vec<u32>;
    if dests == others {
        list = (0..others).map(|o| (rank + 1 + o) % p).collect();
    } else {
        // Evenly spaced offsets with jitter keep the sample spatially
        // uniform regardless of the partition shape.
        let step = others as f64 / dests as f64;
        let mut offsets = Vec::with_capacity(dests as usize);
        let mut prev: i64 = -1;
        for i in 0..dests {
            let mut o = ((i as f64 + rng.gen::<f64>()) * step) as i64;
            if o <= prev {
                o = prev + 1;
            }
            prev = o;
            offsets.push(o.min(others as i64 - 1) as u32);
        }
        offsets.dedup();
        list = offsets.into_iter().map(|o| (rank + 1 + o) % p).collect();
    }
    // Fisher–Yates: the randomized injection order is what smooths link
    // contention in the paper's AR scheme.
    for i in (1..list.len()).rev() {
        let j = rng.gen_range(0..=i);
        list.swap(i, j);
    }
    list
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MachineParams {
        MachineParams::bgl()
    }

    #[test]
    fn full_workload_covers_everyone() {
        let w = AaWorkload::full(1024);
        assert_eq!(w.dests_per_node(512), 511);
        assert_eq!(w.effective_fraction(512), 1.0);
    }

    #[test]
    fn sampled_workload_scales() {
        let w = AaWorkload::sampled(1024, 0.25);
        assert_eq!(w.dests_per_node(4097), 1024);
        assert!((w.effective_fraction(4097) - 0.25).abs() < 0.001);
    }

    #[test]
    fn single_node_partition_has_no_destinations() {
        // P=1 must yield an empty destination set at every coverage —
        // the sampled path used to hit clamp(1, 0) and panic.
        assert_eq!(AaWorkload::full(240).dests_per_node(1), 0);
        assert_eq!(AaWorkload::sampled(240, 0.5).dests_per_node(1), 0);
        assert_eq!(AaWorkload::sampled(240, 0.5).effective_fraction(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn zero_coverage_rejected() {
        let _ = AaWorkload::sampled(8, 0.0);
    }

    #[test]
    fn packetize_one_byte_direct() {
        // 1 B + 48 B header + 16 B overhead = 65 B → 96 B wire, min 64.
        let p = packetize(1, 48, 64, &params());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].payload, 1);
        assert!(p[0].chunks >= 2 && p[0].chunks <= 3);
    }

    #[test]
    fn packetize_conserves_payload() {
        for m in [0u64, 1, 31, 32, 192, 193, 240, 1000, 4096, 65535] {
            for header in [8u32, 48] {
                let shapes = packetize(m, header, 32, &params());
                let total: u64 = shapes.iter().map(|s| s.payload as u64).sum();
                assert_eq!(total, m, "m={m} header={header}");
                for s in &shapes {
                    assert!(s.chunks >= 1 && s.chunks <= 8);
                    // Wire size must cover its share of payload.
                    assert!(s.chunks as u32 * 32 >= s.payload);
                }
            }
        }
    }

    #[test]
    fn packetize_large_message_uses_full_packets() {
        let shapes = packetize(4096, 48, 64, &params());
        // All but the last packet are full 256-byte (8-chunk) packets.
        for s in &shapes[..shapes.len() - 1] {
            assert_eq!(s.chunks, 8);
        }
        let n = (4096u64 + 48).div_ceil(240);
        assert_eq!(shapes.len() as u64, n);
    }

    #[test]
    fn packetize_proto_header_is_cheaper() {
        // Equation 4's point: an 8-byte proto beats a 48-byte h for tiny m.
        let d = packetize(8, 48, 64, &params());
        let v = packetize(8, 8, 32, &params());
        assert!(total_chunks(&v) < total_chunks(&d));
    }

    #[test]
    fn schedule_covers_all_destinations_once() {
        let p = 64;
        for rank in [0u32, 17, 63] {
            let s = destination_schedule(rank, p, p - 1, 42);
            assert_eq!(s.len() as u32, p - 1);
            let set: std::collections::HashSet<u32> = s.iter().copied().collect();
            assert_eq!(set.len() as u32, p - 1);
            assert!(!set.contains(&rank), "schedule must skip self");
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed_and_varies_per_rank() {
        let a = destination_schedule(3, 64, 63, 7);
        let b = destination_schedule(3, 64, 63, 7);
        let c = destination_schedule(4, 64, 63, 7);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_schedule_has_distinct_spread_destinations() {
        let p = 4096;
        let s = destination_schedule(100, p, 256, 1);
        let set: std::collections::HashSet<u32> = s.iter().copied().collect();
        assert_eq!(set.len(), s.len());
        assert!(!set.contains(&100));
        assert!(s.len() >= 250);
        // Spread: destinations should span most of the rank space.
        let max = *s.iter().max().unwrap();
        let min = *s.iter().min().unwrap();
        assert!(max > 3500 && min < 500, "min={min} max={max}");
    }

    #[test]
    fn schedules_differ_between_rounds_of_ranks_but_balance_load() {
        // Aggregated over all sources, each destination appears ~equally
        // often even in sampled mode (load uniformity).
        let p = 128u32;
        let mut counts = vec![0u32; p as usize];
        for r in 0..p {
            for d in destination_schedule(r, p, 32, 9) {
                counts[d as usize] += 1;
            }
        }
        let avg = 32.0;
        for (d, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > avg * 0.5 && (c as f64) < avg * 1.6,
                "destination {d} got {c} senders (avg {avg})"
            );
        }
    }
}
