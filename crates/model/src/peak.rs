//! Equation 2: the contention-derived peak all-to-all time
//! `T = P·(M/8)·m·β`, generalised over [`bgl_torus::AaLoadAnalysis`] to
//! mesh dimensions and odd sizes.

use crate::params::MachineParams;
use bgl_torus::{AaLoadAnalysis, Partition};

/// Peak (network-bound) all-to-all time in seconds for `m` bytes per
/// destination — the denominator of every "percent of peak" in the paper.
pub fn aa_peak_time_secs(part: &Partition, m: u64, params: &MachineParams) -> f64 {
    AaLoadAnalysis::new(*part).peak_time_byte_times(m) * params.beta_secs_per_byte()
}

/// Peak time in simulator cycles. A cycle moves one 32-byte chunk per link
/// — 30 payload bytes when packets are full — and β is a payload byte-time,
/// so the conversion divides by the payload rate.
pub fn aa_peak_time_cycles(part: &Partition, m: u64, params: &MachineParams) -> f64 {
    AaLoadAnalysis::new(*part).peak_time_byte_times(m) / params.payload_bytes_per_cycle()
}

/// Peak per-node send bandwidth during the all-to-all, bytes/second
/// (Figure 3's "peak bisection bandwidth per node" curve).
pub fn peak_per_node_bandwidth(part: &Partition, params: &MachineParams) -> f64 {
    AaLoadAnalysis::new(*part).peak_per_node_rate() / params.beta_secs_per_byte()
}

/// Achieved per-node bandwidth given a measured all-to-all time, for
/// Figure 3's measured curves: `(P-1)·m / t`.
pub fn achieved_per_node_bandwidth(part: &Partition, m: u64, t_secs: f64) -> f64 {
    let p = part.num_nodes() as f64;
    (p - 1.0) * m as f64 / t_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_2_literal_form() {
        // T = P·(M/8)·m·β on an even symmetric torus.
        let params = MachineParams::bgl();
        let part: Partition = "8x8x8".parse().unwrap();
        let m = 4096u64;
        let want = 512.0 * (8.0 / 8.0) * m as f64 * params.beta_secs_per_byte();
        assert!((aa_peak_time_secs(&part, m, &params) - want).abs() / want < 1e-12);
    }

    #[test]
    fn equation_2_generalizes_beyond_three_dims() {
        // The paper's closed form T = P·(M/8)·m·β (M the longest
        // dimension) survives the arity generalization: it holds
        // exactly on even symmetric tori of any dimensionality.
        let params = MachineParams::bgl();
        let m = 1024u64;
        for (shape, longest) in [("8x8", 8.0), ("4x4x4x4", 4.0), ("4x4x4x4x2", 4.0)] {
            let part: Partition = shape.parse().unwrap();
            let p = part.num_nodes() as f64;
            let want = p * (longest / 8.0) * m as f64 * params.beta_secs_per_byte();
            let got = aa_peak_time_secs(&part, m, &params);
            assert!(
                (got - want).abs() / want < 1e-12,
                "{shape}: {got} vs {want}"
            );
        }
        // A size-1 dimension carries no links: the 2-D torus and its
        // legacy 3-D spelling share one peak.
        let flat: Partition = "8x8".parse().unwrap();
        let padded: Partition = "8x8x1".parse().unwrap();
        assert_eq!(
            aa_peak_time_secs(&flat, m, &params),
            aa_peak_time_secs(&padded, m, &params),
        );
        // And the peak stays linear in m at 4-D.
        let four: Partition = "4x4x4x4".parse().unwrap();
        let one = aa_peak_time_secs(&four, m, &params);
        let two = aa_peak_time_secs(&four, 2 * m, &params);
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_and_seconds_agree() {
        let params = MachineParams::bgl();
        let part: Partition = "8x32x16".parse().unwrap();
        let secs = aa_peak_time_secs(&part, 1024, &params);
        let cycles = aa_peak_time_cycles(&part, 1024, &params);
        assert!((cycles * params.secs_per_sim_cycle() - secs).abs() / secs < 1e-12);
    }

    #[test]
    fn per_node_bandwidth_for_midplane() {
        // ≈ 8/(M·β): for M = 8, ≈ 154 MB/s.
        let params = MachineParams::bgl();
        let part: Partition = "8x8x8".parse().unwrap();
        let bw = peak_per_node_bandwidth(&part, &params);
        assert!((bw / 1e6 - 154.0).abs() < 1.0, "{bw}");
    }

    #[test]
    fn achieved_equals_peak_at_peak_time() {
        let params = MachineParams::bgl();
        let part: Partition = "16x16x16".parse().unwrap();
        let m = 2048;
        let t = aa_peak_time_secs(&part, m, &params);
        let ach = achieved_per_node_bandwidth(&part, m, t);
        let peak = peak_per_node_bandwidth(&part, &params);
        // Both sides count (P-1) destinations, so the ratio is exactly 1.
        assert!((ach / peak - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_machines_have_longer_peaks() {
        let params = MachineParams::bgl();
        let small: Partition = "8x8x8".parse().unwrap();
        let large: Partition = "16x16x16".parse().unwrap();
        assert!(
            aa_peak_time_secs(&large, 1024, &params) > aa_peak_time_secs(&small, 1024, &params)
        );
    }
}
