//! Measured BG/L machine parameters and unit conversions.

use serde::{Deserialize, Serialize};

/// The measured constants of the paper's communication model, plus the BG/L
/// packet geometry and clock, with unit-conversion helpers.
///
/// All defaults come straight from the paper (Sections 2–4):
///
/// | constant | paper value | field |
/// |---|---|---|
/// | α (AR, per destination)     | 450 CPU cycles ≈ 0.64 µs | [`alpha_direct_cycles`](Self::alpha_direct_cycles) |
/// | α (VMesh, per message)      | 1170 CPU cycles ≈ 1.7 µs | [`alpha_message_cycles`](Self::alpha_message_cycles) |
/// | β (per byte)                | 6.48 ns/B | [`beta_ns_per_byte`](Self::beta_ns_per_byte) |
/// | γ (copy, per byte)          | 1.6 ns/B (≈1.1 B/cycle) | [`gamma_ns_per_byte`](Self::gamma_ns_per_byte) |
/// | h (software header)         | 48 B, first packet only | [`software_header_bytes`](Self::software_header_bytes) |
/// | proto (combining header)    | 8 B | [`proto_header_bytes`](Self::proto_header_bytes) |
/// | torus packet                | 32-B multiples up to 256 B, 240 B max payload | [`chunk_bytes`](Self::chunk_bytes), [`max_packet_bytes`](Self::max_packet_bytes) |
/// | minimum AA packet           | 64 B | [`min_packet_bytes`](Self::min_packet_bytes) |
/// | CPU clock                   | 700 MHz | [`cpu_mhz`](Self::cpu_mhz) |
/// | per-core link throughput    | ~4 links (data not in L1) | [`cpu_links_sustained`](Self::cpu_links_sustained) |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Per-destination startup overhead of the packetized direct (AR)
    /// runtime, in CPU cycles.
    pub alpha_direct_cycles: f64,
    /// Per-message startup overhead of the message-passing (VMesh) runtime,
    /// in CPU cycles.
    pub alpha_message_cycles: f64,
    /// Per-byte network transfer time β, in nanoseconds (byte sourced from
    /// main memory).
    pub beta_ns_per_byte: f64,
    /// Per-byte memory-copy cost γ on intermediate nodes, in nanoseconds.
    pub gamma_ns_per_byte: f64,
    /// Software header `h` carried in the first packet of a message, bytes.
    pub software_header_bytes: u32,
    /// Combining-protocol header `proto` per combined message, bytes.
    pub proto_header_bytes: u32,
    /// Torus packet granularity (packets are multiples of this), bytes.
    pub chunk_bytes: u32,
    /// Largest torus packet, bytes (256 on BG/L; 240 of payload).
    pub max_packet_bytes: u32,
    /// Packet overhead per packet: link-level header + trailer, bytes
    /// (a 256-byte packet carries 240 payload bytes).
    pub packet_overhead_bytes: u32,
    /// Smallest packet the AA runtime emits, bytes.
    pub min_packet_bytes: u32,
    /// CPU clock, MHz.
    pub cpu_mhz: f64,
    /// How many links' worth of bandwidth one core sustains when the data
    /// is not L1-resident.
    pub cpu_links_sustained: f64,
    /// Network latency per hop, CPU cycles (used by the L term of Equation
    /// 1; insignificant for throughput, visible in Table 4 latencies).
    pub hop_latency_cycles: f64,
}

impl MachineParams {
    /// The paper's measured BG/L parameter set.
    pub fn bgl() -> MachineParams {
        MachineParams {
            alpha_direct_cycles: 450.0,
            alpha_message_cycles: 1170.0,
            beta_ns_per_byte: 6.48,
            gamma_ns_per_byte: 1.6,
            software_header_bytes: 48,
            proto_header_bytes: 8,
            chunk_bytes: 32,
            max_packet_bytes: 256,
            packet_overhead_bytes: 16,
            min_packet_bytes: 64,
            cpu_mhz: 700.0,
            cpu_links_sustained: 4.0,
            hop_latency_cycles: 70.0,
        }
    }

    /// β in seconds per byte.
    #[inline]
    pub fn beta_secs_per_byte(&self) -> f64 {
        self.beta_ns_per_byte * 1e-9
    }

    /// γ in seconds per byte.
    #[inline]
    pub fn gamma_secs_per_byte(&self) -> f64 {
        self.gamma_ns_per_byte * 1e-9
    }

    /// Seconds per CPU cycle.
    #[inline]
    pub fn secs_per_cpu_cycle(&self) -> f64 {
        1e-6 / self.cpu_mhz
    }

    /// AR per-destination α in seconds (the paper's ≈0.64 µs).
    #[inline]
    pub fn alpha_direct_secs(&self) -> f64 {
        self.alpha_direct_cycles * self.secs_per_cpu_cycle()
    }

    /// VMesh per-message α in seconds (the paper's ≈1.7 µs).
    #[inline]
    pub fn alpha_message_secs(&self) -> f64 {
        self.alpha_message_cycles * self.secs_per_cpu_cycle()
    }

    /// Payload bytes a link moves per simulator cycle when carrying full
    /// packets: 240 payload bytes per 8 chunk-cycles = 30 B/cycle. The
    /// measured β is a *payload* byte-time (it already amortizes the
    /// 16-byte per-packet link overhead), so this is the conversion between
    /// β-based times and simulator cycles.
    #[inline]
    pub fn payload_bytes_per_cycle(&self) -> f64 {
        self.max_packet_payload() as f64 / (self.max_packet_bytes / self.chunk_bytes) as f64
    }

    /// Duration of one simulator cycle (one chunk crossing one link) in
    /// seconds: the time β charges for the chunk's payload share,
    /// `payload_bytes_per_cycle · β`.
    #[inline]
    pub fn secs_per_sim_cycle(&self) -> f64 {
        self.payload_bytes_per_cycle() * self.beta_secs_per_byte()
    }

    /// CPU cycles that elapse during one simulator cycle.
    #[inline]
    pub fn cpu_cycles_per_sim_cycle(&self) -> f64 {
        self.secs_per_sim_cycle() / self.secs_per_cpu_cycle()
    }

    /// Maximum payload bytes per packet (240 on BG/L).
    #[inline]
    pub fn max_packet_payload(&self) -> u32 {
        self.max_packet_bytes - self.packet_overhead_bytes
    }

    /// Number of packets needed to carry `m` payload bytes plus the
    /// software header `h` in the first packet (the paper's AA message
    /// layout: `h` rides in packet one, so the shortest AA packet is 64 B).
    pub fn packets_for_message(&self, m: u64) -> u64 {
        let total = m + self.software_header_bytes as u64;
        total.div_ceil(self.max_packet_payload() as u64)
    }

    /// Size in bytes of the `i`-th packet (0-based) of an `m`-byte message,
    /// rounded up to the chunk granularity and clamped to
    /// [`min_packet_bytes`](Self::min_packet_bytes).
    pub fn packet_bytes(&self, m: u64, i: u64) -> u32 {
        let total = m + self.software_header_bytes as u64;
        let n = self.packets_for_message(m);
        debug_assert!(i < n);
        let payload_per = self.max_packet_payload() as u64;
        let this_payload = if i + 1 < n {
            payload_per
        } else {
            total - payload_per * (n - 1)
        };
        let raw = this_payload as u32 + self.packet_overhead_bytes;
        let rounded = raw.div_ceil(self.chunk_bytes) * self.chunk_bytes;
        rounded.clamp(self.min_packet_bytes, self.max_packet_bytes)
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::bgl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_conversions_match_paper() {
        let p = MachineParams::bgl();
        // 450 cycles at 700 MHz ≈ 0.64 µs; 1170 ≈ 1.7 µs.
        assert!((p.alpha_direct_secs() * 1e6 - 0.643).abs() < 0.01);
        assert!((p.alpha_message_secs() * 1e6 - 1.671).abs() < 0.01);
    }

    #[test]
    fn sim_cycle_duration() {
        let p = MachineParams::bgl();
        // One cycle carries 30 payload bytes at 6.48 ns/B ≈ 194 ns ≈ 136
        // CPU cycles.
        assert_eq!(p.payload_bytes_per_cycle(), 30.0);
        assert!((p.secs_per_sim_cycle() * 1e9 - 194.4).abs() < 0.1);
        assert!((p.cpu_cycles_per_sim_cycle() - 136.08).abs() < 0.1);
    }

    #[test]
    fn packet_layout_small_messages() {
        let p = MachineParams::bgl();
        // 1-byte message: 48 B header + 1 B payload + 16 B overhead = 65 B
        // → rounds to 96? No: payload+header = 49, +16 = 65 → 3 chunks = 96;
        // but the paper says the shortest AA packet is 64 B, i.e. the 48-B
        // header plus tiny payload fits the 64-B floor. Verify the floor
        // binds at m = 0-ish and the value for m = 1.
        assert_eq!(p.packets_for_message(1), 1);
        let b = p.packet_bytes(1, 0);
        assert!(b == 64 || b == 96, "got {b}");
        assert!(b >= p.min_packet_bytes);
    }

    #[test]
    fn packet_layout_full_packets() {
        let p = MachineParams::bgl();
        // 240-B payload + 48-B header = 288 → 2 packets.
        assert_eq!(p.packets_for_message(240), 2);
        // 192-B payload + 48 header = 240 → exactly 1 full packet.
        assert_eq!(p.packets_for_message(192), 1);
        assert_eq!(p.packet_bytes(192, 0), 256);
        // Large message: all interior packets are 256 B.
        let m = 4096;
        let n = p.packets_for_message(m);
        for i in 0..n - 1 {
            assert_eq!(p.packet_bytes(m, i), 256);
        }
    }

    #[test]
    fn packets_cover_payload_exactly_once() {
        let p = MachineParams::bgl();
        for m in [1u64, 31, 32, 63, 64, 192, 193, 240, 1000, 4096, 65536] {
            let n = p.packets_for_message(m);
            // Payload capacity of n packets must cover header+m, and n-1
            // packets must not.
            let cap = n * p.max_packet_payload() as u64;
            assert!(cap >= m + 48, "m={m}");
            if n > 1 {
                assert!((n - 1) * p.max_packet_payload() as u64 <= m + 48, "m={m}");
            }
        }
    }

    #[test]
    fn packet_bytes_are_chunk_multiples_in_range() {
        let p = MachineParams::bgl();
        for m in [1u64, 100, 240, 241, 4096] {
            for i in 0..p.packets_for_message(m) {
                let b = p.packet_bytes(m, i);
                assert_eq!(b % p.chunk_bytes, 0);
                assert!(b >= p.min_packet_bytes && b <= p.max_packet_bytes);
            }
        }
    }

    #[test]
    fn default_is_bgl() {
        assert_eq!(MachineParams::default(), MachineParams::bgl());
    }
}
