//! Analytical performance models for all-to-all on the BG/L torus
//! (Section 2.1 and Equations 1–4 of the paper).
//!
//! Everything here is closed-form: no simulation, no randomness. The
//! simulator ([`bgl-sim`](../bgl_sim/index.html)) and strategy library
//! ([`bgl-core`](../bgl_core/index.html)) are validated against these
//! models, exactly as the paper validates its measurements (Figures 1, 2
//! and 5 overlay model prediction on measurement).
//!
//! * [`MachineParams`] — the measured BG/L constants (α, β, γ, h, proto,
//!   packet geometry) and unit conversions.
//! * [`PointToPoint`] — Equation 1, `T_ptp = α + (m+h)·C·β + L`.
//! * [`peak`] — Equation 2, the contention-derived peak all-to-all time.
//! * [`direct`] — Equation 3, the simple-direct all-to-all cost model.
//! * [`vmesh`] — Equation 4, the 2-D virtual-mesh combining model and the
//!   direct/combining crossover point.
//!
//! # Example
//!
//! ```
//! use bgl_model::{MachineParams, peak, direct};
//! use bgl_torus::Partition;
//!
//! let params = MachineParams::bgl();
//! let part: Partition = "8x8x8".parse().unwrap();
//! let m = 4096; // bytes per destination
//! let t_peak = peak::aa_peak_time_secs(&part, m, &params);
//! let t_model = direct::aa_direct_time_secs(&part, m, &params);
//! assert!(t_model > t_peak);
//! // Large messages approach peak: the model predicts > 90 % efficiency.
//! assert!(t_peak / t_model > 0.9);
//! ```

pub mod direct;
pub mod params;
pub mod peak;
pub mod ptp;
pub mod vmesh;

pub use params::MachineParams;
pub use ptp::PointToPoint;

/// Percent of peak achieved: `100 · t_peak / t_measured`.
///
/// Returns 0 when `t_measured` is not a positive finite number.
pub fn percent_of_peak(t_peak: f64, t_measured: f64) -> f64 {
    if t_measured.is_finite() && t_measured > 0.0 {
        100.0 * t_peak / t_measured
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_of_peak_basic() {
        assert_eq!(percent_of_peak(1.0, 2.0), 50.0);
        assert_eq!(percent_of_peak(1.0, 1.0), 100.0);
        assert_eq!(percent_of_peak(1.0, 0.0), 0.0);
        assert_eq!(percent_of_peak(1.0, f64::NAN), 0.0);
        assert_eq!(percent_of_peak(1.0, f64::INFINITY), 0.0);
    }
}
