//! Equation 3: the simple-direct all-to-all cost model
//! `T ≈ P·α + P·(M/8)·(m+h)·β`.
//!
//! The first term is the per-destination startup that cannot be pipelined;
//! the second is the time to push every byte (payload plus the software
//! header, which rides in each message's first packet) through the
//! bottleneck links. Generalised here through [`AaLoadAnalysis`] so the
//! contention factor is exact for meshes and odd sizes too.

use crate::params::MachineParams;
use crate::peak::aa_peak_time_secs;
use bgl_torus::{AaLoadAnalysis, Partition};

/// Direct all-to-all time in seconds (Equation 3).
pub fn aa_direct_time_secs(part: &Partition, m: u64, params: &MachineParams) -> f64 {
    let p = part.num_nodes() as f64;
    let contention = AaLoadAnalysis::new(*part).contention_factor().max(1.0);
    let header = params.software_header_bytes as f64;
    p * params.alpha_direct_secs()
        + p * contention * (m as f64 + header) * params.beta_secs_per_byte()
}

/// Efficiency the model predicts for the direct strategy: peak over modelled
/// time. Approaches `m/(m+h)` (header overhead) for large `m`, collapses
/// for small `m` where the `P·α` term dominates.
pub fn predicted_percent_of_peak(part: &Partition, m: u64, params: &MachineParams) -> f64 {
    crate::percent_of_peak(
        aa_peak_time_secs(part, m, params),
        aa_direct_time_secs(part, m, params),
    )
}

/// The model curve for Figures 1 and 2: `(m, T_model_secs, T_peak_secs)`
/// for each message size in `sizes`.
pub fn model_curve(
    part: &Partition,
    sizes: &[u64],
    params: &MachineParams,
) -> Vec<(u64, f64, f64)> {
    sizes
        .iter()
        .map(|&m| {
            (
                m,
                aa_direct_time_secs(part, m, params),
                aa_peak_time_secs(part, m, params),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_3_literal_form() {
        let params = MachineParams::bgl();
        let part: Partition = "16x16x16".parse().unwrap();
        let m = 1024u64;
        let p = 4096.0;
        let want = p * params.alpha_direct_secs()
            + p * 2.0 * (m as f64 + 48.0) * params.beta_secs_per_byte();
        assert!((aa_direct_time_secs(&part, m, &params) - want).abs() / want < 1e-12);
    }

    #[test]
    fn contention_floor_is_one() {
        // A 2-node line has load factor 2·2/8 < 1 per the torus formula, but
        // a message still can't move faster than β — C clamps at 1.
        let params = MachineParams::bgl();
        let part: Partition = "2x1x1".parse().unwrap();
        let t = aa_direct_time_secs(&part, 1000, &params);
        assert!(t >= 2.0 * 1000.0 * params.beta_secs_per_byte());
    }

    #[test]
    fn large_message_efficiency_approaches_payload_fraction() {
        let params = MachineParams::bgl();
        let part: Partition = "8x8x8".parse().unwrap();
        // m/(m+h): 4096/(4096+48) ≈ 98.8 %.
        let eff = predicted_percent_of_peak(&part, 4096, &params);
        assert!(eff > 95.0 && eff < 100.0, "{eff}");
        let eff_huge = predicted_percent_of_peak(&part, 1 << 20, &params);
        assert!(eff_huge > 99.9, "{eff_huge}");
    }

    #[test]
    fn small_message_efficiency_is_startup_bound() {
        let params = MachineParams::bgl();
        let part: Partition = "8x8x8".parse().unwrap();
        let eff = predicted_percent_of_peak(&part, 8, &params);
        assert!(eff < 15.0, "{eff}");
    }

    #[test]
    fn model_curve_is_monotone_in_m() {
        let params = MachineParams::bgl();
        let part: Partition = "8x8x8".parse().unwrap();
        let sizes: Vec<u64> = (0..10).map(|i| 16u64 << i).collect();
        let curve = model_curve(&part, &sizes, &params);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 > w[0].2);
            assert!(w[0].1 > w[0].2, "model must sit above peak");
        }
    }
}
