//! Equation 1: the point-to-point message time model
//! `T_ptp = α + (m+h)·C·β + L`.

use crate::params::MachineParams;
use bgl_torus::{Coord, Partition};

/// The paper's point-to-point model (Equation 1).
#[derive(Debug, Clone)]
pub struct PointToPoint<'a> {
    params: &'a MachineParams,
}

impl<'a> PointToPoint<'a> {
    /// Build the model over a parameter set.
    pub fn new(params: &'a MachineParams) -> Self {
        PointToPoint { params }
    }

    /// `T_ptp` in seconds for an `m`-byte message experiencing contention
    /// factor `contention` (`C = 1` on an idle network) over `hops` hops.
    ///
    /// * α — non-pipelinable startup, per message.
    /// * (m+h)·C·β — serialization of payload plus software header.
    /// * L — hop latency, `hops · hop_latency_cycles`.
    pub fn time_secs(&self, m: u64, contention: f64, hops: u32) -> f64 {
        let p = self.params;
        p.alpha_direct_secs()
            + (m as f64 + p.software_header_bytes as f64) * contention * p.beta_secs_per_byte()
            + hops as f64 * p.hop_latency_cycles * p.secs_per_cpu_cycle()
    }

    /// `T_ptp` for a specific source/destination pair on `part`, assuming an
    /// otherwise idle network (`C = 1`).
    pub fn pair_time_secs(&self, part: &Partition, src: Coord, dst: Coord, m: u64) -> f64 {
        self.time_secs(m, 1.0, part.hops(src, dst))
    }

    /// Idle-network half round-trip of a ping-pong benchmark, the quantity
    /// the paper fits α and β from.
    pub fn ping_pong_half_rtt_secs(&self, part: &Partition, src: Coord, dst: Coord, m: u64) -> f64 {
        self.pair_time_secs(part, src, dst, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::Coord;

    #[test]
    fn zero_byte_cost_is_alpha_plus_header_plus_latency() {
        let p = MachineParams::bgl();
        let m = PointToPoint::new(&p);
        let t = m.time_secs(0, 1.0, 0);
        let want = p.alpha_direct_secs() + 48.0 * p.beta_secs_per_byte();
        assert!((t - want).abs() < 1e-15);
    }

    #[test]
    fn time_is_affine_in_message_size() {
        let p = MachineParams::bgl();
        let m = PointToPoint::new(&p);
        let t1 = m.time_secs(1000, 1.0, 4);
        let t2 = m.time_secs(2000, 1.0, 4);
        let t3 = m.time_secs(3000, 1.0, 4);
        assert!((t3 - t2 - (t2 - t1)).abs() < 1e-15);
        assert!((t2 - t1 - 1000.0 * p.beta_secs_per_byte()).abs() < 1e-15);
    }

    #[test]
    fn contention_multiplies_only_the_bandwidth_term() {
        let p = MachineParams::bgl();
        let m = PointToPoint::new(&p);
        let base = m.time_secs(1000, 1.0, 0) - p.alpha_direct_secs();
        let loaded = m.time_secs(1000, 4.0, 0) - p.alpha_direct_secs();
        assert!((loaded / base - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hop_latency_counts() {
        let p = MachineParams::bgl();
        let m = PointToPoint::new(&p);
        let part: Partition = "8x8x8".parse().unwrap();
        let near = m.pair_time_secs(&part, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 100);
        let far = m.pair_time_secs(&part, Coord::new(0, 0, 0), Coord::new(4, 4, 4), 100);
        let extra_hops = 11.0;
        assert!(
            (far - near - extra_hops * p.hop_latency_cycles * p.secs_per_cpu_cycle()).abs() < 1e-15
        );
    }
}
