//! Equation 4: the 2-D virtual-mesh message-combining model
//! `T ≈ (Pvx+Pvy)·α + 2·P·(m+proto)·((M/8)·β + γ)`
//! and the direct/combining crossover point.
//!
//! Each node sends `Pvx` row messages then `Pvy` column messages (the α
//! term collapses from `P` messages to `Pvx+Pvy`), but every byte crosses
//! the network twice and is memory-copied once on the intermediate node
//! (the doubled β term and the γ term).

use crate::params::MachineParams;
use crate::peak::aa_peak_time_secs;
use bgl_torus::{AaLoadAnalysis, VirtualMesh};

/// Virtual-mesh all-to-all time in seconds (Equation 4).
pub fn aa_vmesh_time_secs(vm: &VirtualMesh, m: u64, params: &MachineParams) -> f64 {
    let part = vm.partition();
    let p = part.num_nodes() as f64;
    let contention = AaLoadAnalysis::new(*part).contention_factor().max(1.0);
    let proto = params.proto_header_bytes as f64;
    (vm.pvx() + vm.pvy()) as f64 * params.alpha_message_secs()
        + 2.0
            * p
            * (m as f64 + proto)
            * (contention * params.beta_secs_per_byte() + params.gamma_secs_per_byte())
}

/// Efficiency relative to the Equation 2 peak (above 50 % is impossible for
/// large `m`, since every byte is injected twice).
pub fn predicted_percent_of_peak(vm: &VirtualMesh, m: u64, params: &MachineParams) -> f64 {
    crate::percent_of_peak(
        aa_peak_time_secs(vm.partition(), m, params),
        aa_vmesh_time_secs(vm, m, params),
    )
}

/// The prediction curve for Figure 5: `(m, T_vmesh_secs)` per message size.
pub fn model_curve(vm: &VirtualMesh, sizes: &[u64], params: &MachineParams) -> Vec<(u64, f64)> {
    sizes
        .iter()
        .map(|&m| (m, aa_vmesh_time_secs(vm, m, params)))
        .collect()
}

/// The paper's simplified crossover estimate between direct and combining:
/// comparing only the β terms of Equations 3 and 4 gives
/// `m* = h − 2·proto` (= 32 B with the BG/L defaults).
pub fn crossover_beta_terms_only(params: &MachineParams) -> f64 {
    params.software_header_bytes as f64 - 2.0 * params.proto_header_bytes as f64
}

/// Exact model crossover: the message size where Equation 3 equals
/// Equation 4 (both are affine in `m`). Returns `None` when the combining
/// strategy never wins (e.g. the lines are parallel or cross at negative
/// `m`).
pub fn crossover_exact(vm: &VirtualMesh, params: &MachineParams) -> Option<f64> {
    let part = vm.partition();
    let p = part.num_nodes() as f64;
    let c = AaLoadAnalysis::new(*part).contention_factor().max(1.0);
    let beta = params.beta_secs_per_byte();
    let gamma = params.gamma_secs_per_byte();
    // direct(m) = a_d + b_d·m ; vmesh(m) = a_v + b_v·m
    let a_d = p * params.alpha_direct_secs() + p * c * params.software_header_bytes as f64 * beta;
    let b_d = p * c * beta;
    let a_v = (vm.pvx() + vm.pvy()) as f64 * params.alpha_message_secs()
        + 2.0 * p * params.proto_header_bytes as f64 * (c * beta + gamma);
    let b_v = 2.0 * p * (c * beta + gamma);
    if b_v <= b_d {
        // Combining never loses its lead — no finite crossover.
        return None;
    }
    let m = (a_d - a_v) / (b_v - b_d);
    (m > 0.0).then_some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::{Partition, VmeshLayout};

    fn vm512() -> VirtualMesh {
        VirtualMesh::choose("8x8x8".parse().unwrap(), VmeshLayout::Auto)
    }

    #[test]
    fn equation_4_literal_form() {
        let params = MachineParams::bgl();
        let vm = vm512();
        let m = 64u64;
        let want = (32.0 + 16.0) * params.alpha_message_secs()
            + 2.0
                * 512.0
                * (64.0 + 8.0)
                * (1.0 * params.beta_secs_per_byte() + params.gamma_secs_per_byte());
        assert!((aa_vmesh_time_secs(&vm, m, &params) - want).abs() / want < 1e-12);
    }

    #[test]
    fn paper_crossover_is_32_bytes() {
        assert_eq!(crossover_beta_terms_only(&MachineParams::bgl()), 32.0);
    }

    #[test]
    fn exact_crossover_in_paper_range() {
        // The paper observes the measured change-over between 32 and 64
        // bytes; the full model (α terms included) must agree broadly.
        let params = MachineParams::bgl();
        let m = crossover_exact(&vm512(), &params).expect("crossover exists");
        assert!(m > 16.0 && m < 96.0, "crossover at {m}");
    }

    #[test]
    fn vmesh_wins_small_loses_large() {
        let params = MachineParams::bgl();
        let vm = vm512();
        let part = *vm.partition();
        let small = 8;
        let large = 4096;
        assert!(
            aa_vmesh_time_secs(&vm, small, &params)
                < crate::direct::aa_direct_time_secs(&part, small, &params)
        );
        assert!(
            aa_vmesh_time_secs(&vm, large, &params)
                > crate::direct::aa_direct_time_secs(&part, large, &params)
        );
    }

    #[test]
    fn large_message_efficiency_capped_near_half() {
        // Twice-injected bytes: ≤ ~50 % of peak for large m.
        let params = MachineParams::bgl();
        let eff = predicted_percent_of_peak(&vm512(), 65536, &params);
        assert!(eff < 51.0, "{eff}");
        assert!(eff > 30.0, "{eff}");
    }

    #[test]
    fn model_curve_matches_pointwise_eval() {
        let params = MachineParams::bgl();
        let vm = vm512();
        let sizes = [1u64, 8, 64, 512];
        let curve = model_curve(&vm, &sizes, &params);
        for (i, &(m, t)) in curve.iter().enumerate() {
            assert_eq!(m, sizes[i]);
            assert_eq!(t, aa_vmesh_time_secs(&vm, m, &params));
        }
    }

    #[test]
    fn asymmetric_4096_vmesh_beats_direct_for_8_bytes() {
        // Figure 7's headline: on 8×32×16, VMesh is ~3× faster than AR at
        // 8 bytes. The models should already show a large gap.
        let params = MachineParams::bgl();
        let part: Partition = "8x32x16".parse().unwrap();
        let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
        let t_direct = crate::direct::aa_direct_time_secs(&part, 8, &params);
        let t_vmesh = aa_vmesh_time_secs(&vm, 8, &params);
        assert!(t_direct / t_vmesh > 1.5, "{}", t_direct / t_vmesh);
    }
}
