//! Torus/mesh geometry for the Blue Gene/L all-to-all reproduction.
//!
//! This crate is the geometric substrate shared by the simulator
//! ([`bgl-sim`](../bgl_sim/index.html)), the analytical models
//! ([`bgl-model`](../bgl_model/index.html)) and the all-to-all strategy
//! library ([`bgl-core`](../bgl_core/index.html)). It knows nothing about
//! packets or time; it answers purely structural questions:
//!
//! * coordinates, ranks and neighbours on a k-ary n-dimensional partition
//!   (up to [`coord::MAX_DIMS`] dimensions) whose dimensions may
//!   independently be a **torus** (wrap links present) or a **mesh**
//!   ([`Partition`]),
//! * minimal-hop distances, direction choices and dimension-ordered routes
//!   ([`routing`]),
//! * uniform all-to-all load analysis: average hops, per-dimension
//!   bottleneck-link load and the peak-time denominator of the paper's
//!   Equation 2 ([`analysis`]),
//! * factorisation of a partition into the 2-D *virtual mesh* used by the
//!   short-message combining strategy ([`vmesh`]).
//!
//! # Example
//!
//! ```
//! use bgl_torus::{Partition, Coord, Dim};
//!
//! let part: Partition = "8x32x16".parse().unwrap();
//! assert_eq!(part.num_nodes(), 4096);
//! assert_eq!(part.longest_dim(), Dim::Y);
//! assert!(!part.is_symmetric());
//!
//! let a = Coord::new(0, 0, 0);
//! let b = Coord::new(4, 31, 8);
//! // Y wraps, so 0 -> 31 is one hop in the minus direction.
//! assert_eq!(part.hops(a, b), 4 + 1 + 8);
//! ```

pub mod analysis;
pub mod coord;
pub mod partition;
pub mod routing;
pub mod vmesh;

pub use analysis::{AaLoadAnalysis, DimLoad};
pub use coord::{Coord, Dim, Direction, Sign, MAX_DIMS, MAX_PORTS};
pub use partition::{Partition, PartitionParseError, Rank};
pub use routing::{DimensionOrder, HopPlan, TieBreak};
pub use vmesh::{VirtualMesh, VmeshLayout};
