//! Minimal-path routing math: per-dimension hop plans, tie-breaking on the
//! torus "equator", and dimension-ordered (dimension 0 first) next-hop
//! selection.
//!
//! The simulator's routers consume [`HopPlan`]s carried in packet headers:
//! the plan fixes, at injection time, the travel *sign* per dimension and the
//! number of hops remaining, exactly like BG/L's hint bits. Adaptive routing
//! may service the dimensions in any order; deterministic routing services
//! them in increasing dimension order (X, Y, Z on a 3D machine, continuing
//! through D3..D5 on higher-dimensional ones).

use crate::coord::{Coord, Dim, Direction, Sign, MAX_DIMS};
use crate::partition::Partition;
use serde::{Deserialize, Serialize};

/// How to break the direction tie on an even-sized torus dimension when the
/// destination is exactly `S/2` hops away (both directions are minimal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TieBreak {
    /// Always travel in the plus direction. Simple but loads plus links
    /// ~`S/(S-2)`× more than minus links on even tori.
    AlwaysPlus,
    /// Always travel in the minus direction.
    AlwaysMinus,
    /// Travel plus from even source coordinates and minus from odd ones.
    /// Deterministic, and balances the two directions across sources — this
    /// is what production randomized all-to-alls achieve statistically.
    #[default]
    SrcParity,
}

/// A packet's routing state: travel sign and remaining hops per dimension.
///
/// `hops[d] == 0` means the packet needs no movement along `d` (and `sign[d]`
/// is meaningless there). The arrays are fixed at [`MAX_DIMS`] so the plan
/// stays a small `Copy` value inside packet headers; dimensions beyond the
/// partition's arity simply carry zero hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HopPlan {
    signs: [Sign; MAX_DIMS],
    hops: [u16; MAX_DIMS],
}

impl HopPlan {
    /// Build the minimal plan from `src` to `dst` on `part`.
    ///
    /// On torus dimensions the shorter way around is chosen, with `tie`
    /// deciding exact-half distances; mesh dimensions always travel directly
    /// towards the destination.
    pub fn new(part: &Partition, src: Coord, dst: Coord, tie: TieBreak) -> HopPlan {
        let mut signs = [Sign::Plus; MAX_DIMS];
        let mut hops = [0u16; MAX_DIMS];
        for d in part.dims() {
            let (sign, h) = dim_route(part, d, src.get(d), dst.get(d), tie);
            signs[d.index()] = sign;
            hops[d.index()] = h;
        }
        HopPlan { signs, hops }
    }

    /// Remaining hops along `dim`.
    #[inline]
    pub fn hops(&self, dim: Dim) -> u16 {
        self.hops[dim.index()]
    }

    /// Travel sign along `dim` (only meaningful while `hops(dim) > 0`).
    #[inline]
    pub fn sign(&self, dim: Dim) -> Sign {
        self.signs[dim.index()]
    }

    /// The outgoing direction along `dim`, or `None` if that dimension is
    /// already satisfied.
    #[inline]
    pub fn direction(&self, dim: Dim) -> Option<Direction> {
        if self.hops(dim) > 0 {
            Some(Direction::new(dim, self.sign(dim)))
        } else {
            None
        }
    }

    /// Total hops remaining across all dimensions.
    #[inline]
    pub fn total_hops(&self) -> u32 {
        self.hops.iter().map(|&h| h as u32).sum()
    }

    /// Whether the packet has arrived (no hops remaining anywhere).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.hops == [0; MAX_DIMS]
    }

    /// All directions the packet may minimally take from here (dimensions
    /// with hops remaining), in increasing dimension order. Dimensions
    /// beyond the partition's arity carry no hops, so iterating the fixed
    /// bound is arity-correct.
    pub fn minimal_directions(&self) -> impl Iterator<Item = Direction> + '_ {
        Dim::all(MAX_DIMS).filter_map(|d| self.direction(d))
    }

    /// Consume one hop along `dim`.
    ///
    /// # Panics
    /// Panics (in debug builds) if no hops remain along `dim`.
    #[inline]
    pub fn advance(&mut self, dim: Dim) {
        debug_assert!(self.hops(dim) > 0, "advancing exhausted dimension {dim}");
        self.hops[dim.index()] -= 1;
    }

    /// The next direction under dimension-ordered (X, then Y, then Z)
    /// deterministic routing, or `None` on arrival.
    #[inline]
    pub fn dimension_order_next(&self) -> Option<Direction> {
        self.minimal_directions().next()
    }
}

/// Minimal route along a single dimension: `(sign, hops)`.
fn dim_route(part: &Partition, dim: Dim, a: u16, b: u16, tie: TieBreak) -> (Sign, u16) {
    let s = part.size(dim);
    if a == b {
        return (Sign::Plus, 0);
    }
    if !part.is_torus_dim(dim) {
        let sign = if b > a { Sign::Plus } else { Sign::Minus };
        return (sign, (b as i32 - a as i32).unsigned_abs() as u16);
    }
    let fwd = (b as i32 - a as i32).rem_euclid(s as i32) as u16;
    let bwd = s - fwd;
    match fwd.cmp(&bwd) {
        std::cmp::Ordering::Less => (Sign::Plus, fwd),
        std::cmp::Ordering::Greater => (Sign::Minus, bwd),
        std::cmp::Ordering::Equal => {
            let sign = match tie {
                TieBreak::AlwaysPlus => Sign::Plus,
                TieBreak::AlwaysMinus => Sign::Minus,
                TieBreak::SrcParity => {
                    if a.is_multiple_of(2) {
                        Sign::Plus
                    } else {
                        Sign::Minus
                    }
                }
            };
            (sign, fwd)
        }
    }
}

/// Dimension-ordered route enumeration, mainly for tests and debugging: the
/// exact sequence of coordinates a deterministically routed packet visits.
#[derive(Debug, Clone)]
pub struct DimensionOrder;

impl DimensionOrder {
    /// Full node path (inclusive of both endpoints) from `src` to `dst`
    /// under X→Y→Z dimension order.
    pub fn path(part: &Partition, src: Coord, dst: Coord, tie: TieBreak) -> Vec<Coord> {
        let mut plan = HopPlan::new(part, src, dst, tie);
        let mut here = src;
        let mut out = vec![src];
        while let Some(dir) = plan.dimension_order_next() {
            here = part
                .neighbor(here, dir)
                .expect("minimal plan stepped off the partition");
            plan.advance(dir.dim);
            out.push(here);
        }
        out
    }

    /// Walk the X→Y→Z dimension-ordered route from `src` to `dst` and
    /// return the first hop refused by `is_dead(rank, direction)`, or
    /// `None` when the whole path is alive. Deterministic routing has no
    /// freedom to steer around a dead link, so one refused hop on this
    /// path means the pair is unreachable — this is the static
    /// reachability preflight used by fault-injection runs.
    pub fn first_blocked(
        part: &Partition,
        src: Coord,
        dst: Coord,
        tie: TieBreak,
        is_dead: impl Fn(u32, Direction) -> bool,
    ) -> Option<(u32, Direction)> {
        let mut plan = HopPlan::new(part, src, dst, tie);
        let mut here = src;
        while let Some(dir) = plan.dimension_order_next() {
            let rank = part.rank_of(here);
            if is_dead(rank, dir) {
                return Some((rank, dir));
            }
            here = part
                .neighbor(here, dir)
                .expect("minimal plan stepped off the partition");
            plan.advance(dir.dim);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t888() -> Partition {
        Partition::torus(8, 8, 8)
    }

    #[test]
    fn plan_hops_match_partition_hops() {
        let p = t888();
        let a = Coord::new(1, 2, 3);
        let b = Coord::new(6, 2, 0);
        let plan = HopPlan::new(&p, a, b, TieBreak::SrcParity);
        assert_eq!(plan.total_hops(), p.hops(a, b));
    }

    #[test]
    fn plan_to_self_is_done() {
        let p = t888();
        let c = Coord::new(3, 3, 3);
        let plan = HopPlan::new(&p, c, c, TieBreak::SrcParity);
        assert!(plan.is_done());
        assert_eq!(plan.dimension_order_next(), None);
        assert_eq!(plan.minimal_directions().count(), 0);
    }

    #[test]
    fn torus_takes_short_way_round() {
        let p = t888();
        let plan = HopPlan::new(
            &p,
            Coord::new(7, 0, 0),
            Coord::new(1, 0, 0),
            TieBreak::AlwaysPlus,
        );
        assert_eq!(plan.hops(Dim::X), 2);
        assert_eq!(plan.sign(Dim::X), Sign::Plus);
        let plan = HopPlan::new(
            &p,
            Coord::new(1, 0, 0),
            Coord::new(7, 0, 0),
            TieBreak::AlwaysPlus,
        );
        assert_eq!(plan.hops(Dim::X), 2);
        assert_eq!(plan.sign(Dim::X), Sign::Minus);
    }

    #[test]
    fn mesh_never_wraps() {
        let p: Partition = "8Mx8x8".parse().unwrap();
        let plan = HopPlan::new(
            &p,
            Coord::new(7, 0, 0),
            Coord::new(0, 0, 0),
            TieBreak::AlwaysPlus,
        );
        assert_eq!(plan.hops(Dim::X), 7);
        assert_eq!(plan.sign(Dim::X), Sign::Minus);
    }

    #[test]
    fn tie_break_variants() {
        let p = t888();
        let even = Coord::new(0, 0, 0);
        let odd = Coord::new(1, 0, 0);
        let half_even = Coord::new(4, 0, 0);
        let half_odd = Coord::new(5, 0, 0);
        assert_eq!(
            HopPlan::new(&p, even, half_even, TieBreak::AlwaysPlus).sign(Dim::X),
            Sign::Plus
        );
        assert_eq!(
            HopPlan::new(&p, even, half_even, TieBreak::AlwaysMinus).sign(Dim::X),
            Sign::Minus
        );
        assert_eq!(
            HopPlan::new(&p, even, half_even, TieBreak::SrcParity).sign(Dim::X),
            Sign::Plus
        );
        assert_eq!(
            HopPlan::new(&p, odd, half_odd, TieBreak::SrcParity).sign(Dim::X),
            Sign::Minus
        );
    }

    #[test]
    fn src_parity_balances_equator_traffic() {
        // On an even torus line, SrcParity sends exactly half the
        // equator-distance pairs each way.
        let p = Partition::torus_nd(&[8]);
        let mut plus = 0;
        let mut minus = 0;
        for a in 0..8u16 {
            let b = (a + 4) % 8;
            let plan = HopPlan::new(
                &p,
                Coord::new(a, 0, 0),
                Coord::new(b, 0, 0),
                TieBreak::SrcParity,
            );
            match plan.sign(Dim::X) {
                Sign::Plus => plus += 1,
                Sign::Minus => minus += 1,
            }
        }
        assert_eq!(plus, 4);
        assert_eq!(minus, 4);
    }

    #[test]
    fn advance_consumes_hops() {
        let p = t888();
        let mut plan = HopPlan::new(
            &p,
            Coord::new(0, 0, 0),
            Coord::new(2, 1, 0),
            TieBreak::SrcParity,
        );
        assert_eq!(plan.total_hops(), 3);
        plan.advance(Dim::X);
        plan.advance(Dim::Y);
        assert_eq!(plan.total_hops(), 1);
        assert_eq!(plan.direction(Dim::Y), None);
        plan.advance(Dim::X);
        assert!(plan.is_done());
    }

    #[test]
    fn dimension_order_path_visits_x_then_y_then_z() {
        let p = t888();
        let path = DimensionOrder::path(
            &p,
            Coord::new(0, 0, 0),
            Coord::new(2, 2, 1),
            TieBreak::SrcParity,
        );
        assert_eq!(
            path,
            vec![
                Coord::new(0, 0, 0),
                Coord::new(1, 0, 0),
                Coord::new(2, 0, 0),
                Coord::new(2, 1, 0),
                Coord::new(2, 2, 0),
                Coord::new(2, 2, 1),
            ]
        );
    }

    #[test]
    fn first_blocked_finds_dead_hop_on_path_only() {
        let p = t888();
        let src = Coord::new(0, 0, 0);
        let dst = Coord::new(2, 2, 0);
        // Dead link on the path: second X+ hop, taken from (1,0,0).
        let dead_rank = p.rank_of(Coord::new(1, 0, 0));
        let hit = DimensionOrder::first_blocked(&p, src, dst, TieBreak::SrcParity, |r, d| {
            r == dead_rank && d == Direction::new(Dim::X, Sign::Plus)
        });
        assert_eq!(hit, Some((dead_rank, Direction::new(Dim::X, Sign::Plus))));
        // Same dead link does not block a pair whose path avoids it.
        let clear = DimensionOrder::first_blocked(
            &p,
            Coord::new(4, 0, 0),
            dst,
            TieBreak::SrcParity,
            |r, d| r == dead_rank && d == Direction::new(Dim::X, Sign::Plus),
        );
        assert_eq!(clear, None);
        // No faults at all: never blocked.
        assert_eq!(
            DimensionOrder::first_blocked(&p, src, dst, TieBreak::SrcParity, |_, _| false),
            None
        );
    }

    #[test]
    fn plans_generalize_to_higher_dims() {
        for shape in ["5x4", "3x3x2x2", "2x3x2x3x2", "2x2x2x2x2x2"] {
            let p: Partition = shape.parse().unwrap();
            for src in p.coords() {
                for dst in p.coords() {
                    let plan = HopPlan::new(&p, src, dst, TieBreak::SrcParity);
                    assert_eq!(plan.total_hops(), p.hops(src, dst), "{shape}");
                    let path = DimensionOrder::path(&p, src, dst, TieBreak::SrcParity);
                    assert_eq!(path.len() as u32, p.hops(src, dst) + 1, "{shape}");
                    // Dimension order services dimensions in increasing
                    // index order: once dimension d+1 moves, d is done.
                    let mut max_started = 0usize;
                    for w in path.windows(2) {
                        let moved = p
                            .dims()
                            .find(|&d| w[0].get(d) != w[1].get(d))
                            .expect("consecutive path nodes differ");
                        assert!(moved.index() >= max_started, "{shape}");
                        max_started = moved.index();
                    }
                }
            }
        }
    }

    #[test]
    fn dimension_order_path_length_is_minimal() {
        let p: Partition = "4x6Mx3".parse().unwrap();
        for src in p.coords() {
            for dst in p.coords() {
                let path = DimensionOrder::path(&p, src, dst, TieBreak::SrcParity);
                assert_eq!(path.len() as u32, p.hops(src, dst) + 1);
                assert_eq!(*path.first().unwrap(), src);
                assert_eq!(*path.last().unwrap(), dst);
                // Consecutive nodes are neighbours.
                for w in path.windows(2) {
                    assert_eq!(p.hops(w[0], w[1]), 1);
                }
            }
        }
    }
}
