//! Factorisation of a partition into the 2-D *virtual mesh* used by the
//! short-message combining strategy (Section 4.2 of the paper).
//!
//! A virtual mesh `Pvx × Pvy` views the `P` nodes as `Pvy` rows of `Pvx`
//! nodes. Phase 1 of the combining all-to-all exchanges within rows, phase 2
//! within columns (a column is the set of nodes sharing a position within
//! their row). The mapping from physical coordinates to (row, position) is a
//! mixed-radix flattening under a chosen dimension permutation, so rows are
//! contiguous rectangular blocks of the physical machine:
//!
//! * on the 8×8×8 midplane the paper uses a 32×16 mesh whose rows are
//!   half-XY planes — permutation (X, Y, Z), `Pvx = 32`;
//! * on the 8×32×16 torus it uses a 128×32 mesh whose rows are XZ planes and
//!   whose columns are Y lines — permutation (X, Z, Y), `Pvx = 128`.
//!
//! [`VirtualMesh::choose`] reproduces both choices.

use crate::coord::{Coord, Dim};
use crate::partition::{Partition, Rank};
use serde::{Deserialize, Serialize};

/// The three BG/L dimensions, the only ones a virtual mesh factorises:
/// the combining strategy's row/column geometry is defined over at most a
/// 3D physical block (higher-dimensional machines are rejected by
/// [`VirtualMesh::with_layout`], and the VMesh strategy declares a 3D-only
/// `supported_dims()` capability on top of this).
const XYZ: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

/// How to lay the virtual mesh onto the physical partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmeshLayout {
    /// Pick automatically: plane-aligned on asymmetric 3-D partitions,
    /// otherwise the most nearly square contiguous factorisation
    /// (see [`VirtualMesh::choose`]).
    Auto,
    /// Rows are the planes orthogonal to the partition's longest dimension;
    /// columns are lines along it.
    PlaneAligned,
    /// Most nearly square contiguous rectangular factorisation.
    Balanced,
    /// Explicit dimension permutation (fastest-varying first) and row length.
    Explicit { perm: [Dim; 3], pvx: u32 },
}

/// A realised 2-D virtual mesh over a partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualMesh {
    part: Partition,
    /// Dimension order for the mixed-radix flattening, fastest first.
    perm: [Dim; 3],
    pvx: u32,
    pvy: u32,
}

impl VirtualMesh {
    /// Build a virtual mesh with an explicit permutation and row length.
    ///
    /// # Errors
    /// Returns `Err` if the partition has more than three dimensions, if
    /// `perm` is not a permutation of X, Y, Z, or if `pvx` does not divide
    /// the node count.
    pub fn with_layout(part: Partition, perm: [Dim; 3], pvx: u32) -> Result<VirtualMesh, String> {
        if part.ndims() > 3 {
            return Err(format!(
                "virtual mesh requires at most 3 dimensions, partition {part} has {}",
                part.ndims()
            ));
        }
        let mut seen = [false; 3];
        for d in perm {
            if d.index() >= 3 {
                return Err(format!("{perm:?} is not a permutation of X, Y, Z"));
            }
            seen[d.index()] = true;
        }
        if seen != [true; 3] {
            return Err(format!("{perm:?} is not a permutation of X, Y, Z"));
        }
        let p = part.num_nodes();
        if pvx == 0 || !p.is_multiple_of(pvx) {
            return Err(format!("row length {pvx} does not divide node count {p}"));
        }
        Ok(VirtualMesh {
            part,
            perm,
            pvx,
            pvy: p / pvx,
        })
    }

    /// Choose a layout per `layout` (see [`VmeshLayout`]).
    ///
    /// `Auto` reproduces the paper's choices: on an asymmetric 3-D partition
    /// rows are the planes orthogonal to the longest dimension (128×32 on
    /// 8×32×16); otherwise the most nearly square contiguous rectangular
    /// factorisation is used (32×16 on 8×8×8).
    pub fn choose(part: Partition, layout: VmeshLayout) -> VirtualMesh {
        match layout {
            VmeshLayout::Explicit { perm, pvx } => {
                VirtualMesh::with_layout(part, perm, pvx).expect("explicit vmesh layout invalid")
            }
            VmeshLayout::PlaneAligned => Self::plane_aligned(part),
            VmeshLayout::Balanced => Self::balanced(part),
            VmeshLayout::Auto => {
                if part.dimensionality() == 3 && !part.is_symmetric() {
                    Self::plane_aligned(part)
                } else {
                    Self::balanced(part)
                }
            }
        }
    }

    fn plane_aligned(part: Partition) -> VirtualMesh {
        let long = part.longest_dim();
        let others: Vec<Dim> = long.others(3).collect();
        // Fastest-varying dims first: the two plane dims, then the long dim.
        let perm = [others[0], others[1], long];
        let pvx = part.num_nodes() / part.size(long) as u32;
        VirtualMesh::with_layout(part, perm, pvx).expect("plane-aligned layout always divides")
    }

    fn balanced(part: Partition) -> VirtualMesh {
        // Enumerate contiguous rectangular row blocks under the identity
        // permutation: pvx = (product of a prefix of dims) × (divisor of the
        // next dim). Pick the factorisation with pvx ≥ pvy closest to square.
        let sizes = [
            part.size(Dim::X) as u32,
            part.size(Dim::Y) as u32,
            part.size(Dim::Z) as u32,
        ];
        let p = part.num_nodes();
        let mut best: Option<u32> = None;
        let mut prefix = 1u32;
        for (i, &next) in sizes.iter().chain(std::iter::once(&1)).enumerate() {
            for d in 1..=next {
                if !next.is_multiple_of(d) {
                    continue;
                }
                let pvx = prefix * d;
                if !p.is_multiple_of(pvx) {
                    continue;
                }
                let pvy = p / pvx;
                if pvx < pvy {
                    continue; // prefer the wider-row orientation, as the paper does
                }
                let better = match best {
                    None => true,
                    Some(b) => (pvx as f64 / (p / pvx) as f64) < (b as f64 / (p / b) as f64),
                };
                if better {
                    best = Some(pvx);
                }
            }
            if i < 3 {
                prefix *= next;
            }
        }
        let pvx = best.unwrap_or(p);
        VirtualMesh::with_layout(part, XYZ, pvx).expect("balanced layout divides")
    }

    /// Row length `Pvx` (number of positions per row = number of columns).
    #[inline]
    pub fn pvx(&self) -> u32 {
        self.pvx
    }

    /// Column length `Pvy` (number of rows).
    #[inline]
    pub fn pvy(&self) -> u32 {
        self.pvy
    }

    /// The underlying partition.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The dimension permutation (fastest-varying first).
    #[inline]
    pub fn perm(&self) -> [Dim; 3] {
        self.perm
    }

    /// Mixed-radix flat index of a coordinate under the permutation.
    #[inline]
    pub fn flat_index(&self, c: Coord) -> u32 {
        let [d0, d1, d2] = self.perm;
        c.get(d0) as u32
            + self.part.size(d0) as u32
                * (c.get(d1) as u32 + self.part.size(d1) as u32 * c.get(d2) as u32)
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    pub fn coord_of_flat(&self, f: u32) -> Coord {
        let [d0, d1, d2] = self.perm;
        let s0 = self.part.size(d0) as u32;
        let s1 = self.part.size(d1) as u32;
        let mut c = Coord::default();
        c.set(d0, (f % s0) as u16);
        c.set(d1, ((f / s0) % s1) as u16);
        c.set(d2, (f / (s0 * s1)) as u16);
        c
    }

    /// Virtual row of a node (in `0..pvy`).
    #[inline]
    pub fn row_of(&self, c: Coord) -> u32 {
        self.flat_index(c) / self.pvx
    }

    /// Position of a node within its row (in `0..pvx`); nodes sharing a
    /// position form a column.
    #[inline]
    pub fn pos_in_row(&self, c: Coord) -> u32 {
        self.flat_index(c) % self.pvx
    }

    /// The node at `(row, pos)`.
    #[inline]
    pub fn node_at(&self, row: u32, pos: u32) -> Coord {
        debug_assert!(row < self.pvy && pos < self.pvx);
        self.coord_of_flat(row * self.pvx + pos)
    }

    /// All nodes of one row, in position order.
    pub fn row_members(&self, row: u32) -> Vec<Coord> {
        (0..self.pvx).map(|p| self.node_at(row, p)).collect()
    }

    /// All nodes of one column (fixed position), in row order.
    pub fn col_members(&self, pos: u32) -> Vec<Coord> {
        (0..self.pvy).map(|r| self.node_at(r, pos)).collect()
    }

    /// Rank of the physical node at `(row, pos)` in the partition's
    /// canonical rank order.
    #[inline]
    pub fn rank_at(&self, row: u32, pos: u32) -> Rank {
        self.part.rank_of(self.node_at(row, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_512_choice_is_32x16() {
        let part: Partition = "8x8x8".parse().unwrap();
        let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
        assert_eq!((vm.pvx(), vm.pvy()), (32, 16));
        // Rows are half-XY planes: 32 consecutive X-fastest ranks.
        let row0 = vm.row_members(0);
        assert!(row0.iter().all(|c| c.get(Dim::Z) == 0 && c.get(Dim::Y) < 4));
        assert_eq!(row0.len(), 32);
    }

    #[test]
    fn paper_4096_choice_is_128x32_plane_aligned() {
        let part: Partition = "8x32x16".parse().unwrap();
        let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
        assert_eq!((vm.pvx(), vm.pvy()), (128, 32));
        // Rows are XZ planes (constant Y), columns are Y lines.
        let row0 = vm.row_members(0);
        assert!(row0.iter().all(|c| c.get(Dim::Y) == 0));
        let col0 = vm.col_members(0);
        assert_eq!(col0.len(), 32);
        let (x0, z0) = (col0[0].get(Dim::X), col0[0].get(Dim::Z));
        assert!(col0
            .iter()
            .all(|c| c.get(Dim::X) == x0 && c.get(Dim::Z) == z0));
    }

    #[test]
    fn balanced_prefers_square() {
        let vm = VirtualMesh::choose("16x16x16".parse().unwrap(), VmeshLayout::Balanced);
        assert_eq!((vm.pvx(), vm.pvy()), (64, 64));
    }

    #[test]
    fn rows_and_columns_partition_the_machine() {
        for spec in ["8x8x8", "8x32x16", "4x6x2", "16x16"] {
            let part: Partition = spec.parse().unwrap();
            let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
            assert_eq!(vm.pvx() * vm.pvy(), part.num_nodes(), "{spec}");
            let mut seen = std::collections::HashSet::new();
            for r in 0..vm.pvy() {
                for c in vm.row_members(r) {
                    assert_eq!(vm.row_of(c), r);
                    assert!(seen.insert(c), "{spec}: {c} in two rows");
                }
            }
            assert_eq!(seen.len() as u32, part.num_nodes());
            // Columns partition too, and cross every row exactly once.
            for pos in 0..vm.pvx() {
                let col = vm.col_members(pos);
                let rows: std::collections::HashSet<u32> =
                    col.iter().map(|&c| vm.row_of(c)).collect();
                assert_eq!(rows.len() as u32, vm.pvy(), "{spec}");
                assert!(col.iter().all(|&c| vm.pos_in_row(c) == pos));
            }
        }
    }

    #[test]
    fn flat_index_roundtrip() {
        let part: Partition = "4x3x5".parse().unwrap();
        let vm = VirtualMesh::with_layout(part, [Dim::Z, Dim::X, Dim::Y], 10).unwrap();
        for c in part.coords() {
            assert_eq!(vm.coord_of_flat(vm.flat_index(c)), c);
        }
    }

    #[test]
    fn node_at_inverts_row_pos() {
        let part: Partition = "8x8x8".parse().unwrap();
        let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
        for c in part.coords() {
            assert_eq!(vm.node_at(vm.row_of(c), vm.pos_in_row(c)), c);
        }
    }

    #[test]
    fn with_layout_rejects_bad_args() {
        let part: Partition = "8x8x8".parse().unwrap();
        assert!(VirtualMesh::with_layout(part, [Dim::X, Dim::X, Dim::Z], 8).is_err());
        assert!(VirtualMesh::with_layout(part, XYZ, 7).is_err());
        assert!(VirtualMesh::with_layout(part, XYZ, 0).is_err());
    }

    #[test]
    fn with_layout_rejects_higher_dimensional_partitions() {
        let part: Partition = "4x4x4x4".parse().unwrap();
        let err = VirtualMesh::with_layout(part, XYZ, 16).unwrap_err();
        assert!(err.contains("at most 3 dimensions"), "{err}");
    }

    #[test]
    fn explicit_layout_is_honoured() {
        let part: Partition = "8x8x8".parse().unwrap();
        let vm = VirtualMesh::choose(
            part,
            VmeshLayout::Explicit {
                perm: [Dim::Y, Dim::Z, Dim::X],
                pvx: 64,
            },
        );
        assert_eq!((vm.pvx(), vm.pvy()), (64, 8));
        // Rows are YZ planes (constant X).
        assert!(vm.row_members(0).iter().all(|c| c.get(Dim::X) == 0));
    }
}
