//! Partition shapes: 1-D lines, 2-D planes and 3-D blocks whose dimensions
//! are independently torus (wrapped) or mesh (unwrapped).

use crate::coord::{Coord, Dim, Direction, Sign, ALL_DIMS};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A node's linear rank within a partition (X varies fastest, then Y, then Z).
pub type Rank = u32;

/// A BG/L partition: a 3-D block of nodes with per-dimension sizes and
/// per-dimension wrap (torus) flags.
///
/// Lower-dimensional partitions (lines, planes) are represented with the
/// unused dimensions set to size 1. The paper's `"8x8x2M"` notation parses
/// via [`FromStr`]: an `M` suffix marks that dimension as a mesh, all other
/// dimensions of size ≥ 2 are tori. Dimensions of size 1 carry no links at
/// all, so their wrap flag is normalised to `false`.
///
/// ```
/// use bgl_torus::{Partition, Dim};
/// let p: Partition = "8x8x2M".parse().unwrap();
/// assert_eq!(p.num_nodes(), 128);
/// assert!(p.is_torus_dim(Dim::X));
/// assert!(!p.is_torus_dim(Dim::Z));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    dims: [u16; 3],
    wrap: [bool; 3],
}

impl Partition {
    /// A full torus (every dimension of size ≥ 2 wraps).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn torus(x: u16, y: u16, z: u16) -> Partition {
        Partition::new([x, y, z], [true, true, true])
    }

    /// A full mesh (no dimension wraps).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn mesh(x: u16, y: u16, z: u16) -> Partition {
        Partition::new([x, y, z], [false, false, false])
    }

    /// A partition with explicit per-dimension sizes and wrap flags.
    ///
    /// Wrap flags on dimensions of size 1 are normalised to `false` (a
    /// single-node dimension has no links).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(dims: [u16; 3], wrap: [bool; 3]) -> Partition {
        assert!(
            dims.iter().all(|&d| d > 0),
            "partition dimensions must be positive, got {dims:?}"
        );
        let mut wrap = wrap;
        for i in 0..3 {
            if dims[i] == 1 {
                wrap[i] = false;
            }
        }
        Partition { dims, wrap }
    }

    /// Size along `dim`.
    #[inline]
    pub fn size(&self, dim: Dim) -> u16 {
        self.dims[dim.index()]
    }

    /// All three sizes `[x, y, z]`.
    #[inline]
    pub fn sizes(&self) -> [u16; 3] {
        self.dims
    }

    /// Whether `dim` wraps (torus) — always `false` for size-1 dimensions.
    #[inline]
    pub fn is_torus_dim(&self, dim: Dim) -> bool {
        self.wrap[dim.index()]
    }

    /// Total number of nodes `P = Px · Py · Pz`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.dims.iter().map(|&d| d as u32).product()
    }

    /// Dimensions with more than one node, in (X, Y, Z) order.
    pub fn active_dims(&self) -> Vec<Dim> {
        ALL_DIMS.into_iter().filter(|d| self.size(*d) > 1).collect()
    }

    /// Number of active (size > 1) dimensions: 0 for a single node, 1 for a
    /// line, 2 for a plane, 3 for a block.
    pub fn dimensionality(&self) -> usize {
        self.active_dims().len()
    }

    /// The dimension with the most nodes, the paper's `M = max(Px,Py,Pz)`
    /// bottleneck dimension. Ties go to the earlier dimension (X before Y
    /// before Z), matching the paper's convention of naming X first.
    pub fn longest_dim(&self) -> Dim {
        let mut best = Dim::X;
        for d in [Dim::Y, Dim::Z] {
            if self.size(d) > self.size(best) {
                best = d;
            }
        }
        best
    }

    /// `M = max(Px, Py, Pz)`.
    #[inline]
    pub fn max_dim_size(&self) -> u16 {
        *self.dims.iter().max().expect("three dims")
    }

    /// Whether this partition is *symmetric* in the paper's sense: every
    /// active dimension has the same size, and every active dimension is a
    /// torus. A line is symmetric; `8x8` and `16x16x16` are symmetric;
    /// `16x8x8` and `8x8x2M` are not.
    pub fn is_symmetric(&self) -> bool {
        let active = self.active_dims();
        if active.is_empty() {
            return true;
        }
        let s0 = self.size(active[0]);
        active
            .iter()
            .all(|&d| self.size(d) == s0 && self.is_torus_dim(d))
    }

    /// Linear rank of a coordinate (X fastest, then Y, then Z).
    ///
    /// # Panics
    /// Panics (in debug builds) if the coordinate is out of range.
    #[inline]
    pub fn rank_of(&self, c: Coord) -> Rank {
        debug_assert!(self.contains(c), "coordinate {c} outside partition {self}");
        c.x as Rank + self.dims[0] as Rank * (c.y as Rank + self.dims[1] as Rank * c.z as Rank)
    }

    /// Coordinate of a linear rank.
    ///
    /// # Panics
    /// Panics if `rank >= num_nodes()`.
    #[inline]
    pub fn coord_of(&self, rank: Rank) -> Coord {
        assert!(
            rank < self.num_nodes(),
            "rank {rank} outside partition {self}"
        );
        let x = (rank % self.dims[0] as Rank) as u16;
        let rest = rank / self.dims[0] as Rank;
        let y = (rest % self.dims[1] as Rank) as u16;
        let z = (rest / self.dims[1] as Rank) as u16;
        Coord::new(x, y, z)
    }

    /// Whether the coordinate lies inside the partition.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.dims[0] && c.y < self.dims[1] && c.z < self.dims[2]
    }

    /// Iterate over every coordinate in rank order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.num_nodes()).map(|r| self.coord_of(r))
    }

    /// The neighbour of `c` in direction `dir`, or `None` when the move
    /// falls off the edge of a mesh dimension (or the dimension has size 1).
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Option<Coord> {
        let s = self.size(dir.dim);
        if s <= 1 {
            return None;
        }
        let v = c.get(dir.dim);
        let nv = match dir.sign {
            Sign::Plus => {
                if v + 1 < s {
                    v + 1
                } else if self.is_torus_dim(dir.dim) {
                    0
                } else {
                    return None;
                }
            }
            Sign::Minus => {
                if v > 0 {
                    v - 1
                } else if self.is_torus_dim(dir.dim) {
                    s - 1
                } else {
                    return None;
                }
            }
        };
        Some(c.with(dir.dim, nv))
    }

    /// Minimal hop count from `a` to `b` along `dim` (wrapping if torus).
    #[inline]
    pub fn dim_hops(&self, dim: Dim, a: u16, b: u16) -> u16 {
        let s = self.size(dim);
        let fwd = (b as i32 - a as i32).rem_euclid(s as i32) as u16;
        if self.is_torus_dim(dim) {
            fwd.min(s - fwd)
        } else {
            (b as i32 - a as i32).unsigned_abs() as u16
        }
    }

    /// Total minimal hop count between two coordinates.
    pub fn hops(&self, a: Coord, b: Coord) -> u32 {
        ALL_DIMS
            .iter()
            .map(|&d| self.dim_hops(d, a.get(d), b.get(d)) as u32)
            .sum()
    }

    /// Number of *directed* links along `dim`: `2·P` for a torus dimension,
    /// `2·P·(S-1)/S` for a mesh dimension, `0` for a size-1 dimension.
    pub fn directed_links(&self, dim: Dim) -> u64 {
        let s = self.size(dim) as u64;
        if s <= 1 {
            return 0;
        }
        let lines = self.num_nodes() as u64 / s;
        let per_line = if self.is_torus_dim(dim) { s } else { s - 1 };
        2 * lines * per_line
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in ALL_DIMS {
            let s = self.size(d);
            // Trailing size-1 dimensions are omitted ("8x8", not "8x8x1"),
            // but interior ones are kept so the shape stays unambiguous.
            if s == 1 && ALL_DIMS.iter().skip(d.index()).all(|&e| self.size(e) == 1) && !first {
                break;
            }
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{}", s)?;
            if s > 1 && !self.is_torus_dim(d) {
                write!(f, "M")?;
            }
            first = false;
        }
        Ok(())
    }
}

/// Error produced when parsing a partition string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionParseError(String);

impl fmt::Display for PartitionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid partition string: {}", self.0)
    }
}

impl std::error::Error for PartitionParseError {}

impl FromStr for Partition {
    type Err = PartitionParseError;

    /// Parse the paper's partition notation: `"8"`, `"16x16"`,
    /// `"40x32x16"`, `"8x8x2M"` (the `M` suffix marks a mesh dimension).
    /// Whitespace around tokens is ignored (`"8 x 2M"` works too).
    fn from_str(s: &str) -> Result<Partition, PartitionParseError> {
        let mut dims = [1u16; 3];
        let mut wrap = [true; 3];
        let tokens: Vec<&str> = s.split('x').map(str::trim).collect();
        if tokens.is_empty() || tokens.len() > 3 {
            return Err(PartitionParseError(format!(
                "expected 1..=3 'x'-separated sizes, got {s:?}"
            )));
        }
        for (i, tok) in tokens.iter().enumerate() {
            let (num, mesh) = match tok.strip_suffix(['M', 'm']) {
                Some(rest) => (rest.trim(), true),
                None => (*tok, false),
            };
            let size: u16 = num
                .parse()
                .map_err(|_| PartitionParseError(format!("bad size {tok:?} in {s:?}")))?;
            if size == 0 {
                return Err(PartitionParseError(format!("zero size in {s:?}")));
            }
            dims[i] = size;
            wrap[i] = !mesh;
        }
        Ok(Partition::new(dims, wrap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::ALL_DIRECTIONS;

    #[test]
    fn parse_paper_notation() {
        let p: Partition = "40x32x16".parse().unwrap();
        assert_eq!(p.sizes(), [40, 32, 16]);
        assert_eq!(p.num_nodes(), 20480);
        assert!(p.is_torus_dim(Dim::X));

        let p: Partition = "8x8x2M".parse().unwrap();
        assert_eq!(p.sizes(), [8, 8, 2]);
        assert!(p.is_torus_dim(Dim::Y));
        assert!(!p.is_torus_dim(Dim::Z));

        let p: Partition = "8 x 4M".parse().unwrap();
        assert_eq!(p.sizes(), [8, 4, 1]);
        assert!(!p.is_torus_dim(Dim::Y));

        let p: Partition = "16".parse().unwrap();
        assert_eq!(p.num_nodes(), 16);
        assert_eq!(p.dimensionality(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Partition>().is_err());
        assert!("8x".parse::<Partition>().is_err());
        assert!("8x8x8x8".parse::<Partition>().is_err());
        assert!("0x8".parse::<Partition>().is_err());
        assert!("8xqx8".parse::<Partition>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["8", "16x16", "8x8x8", "40x32x16", "8x8x2M", "8x4M", "1x8x8"] {
            let p: Partition = s.parse().unwrap();
            let shown = p.to_string();
            let q: Partition = shown.parse().unwrap();
            assert_eq!(p, q, "roundtrip failed for {s} -> {shown}");
        }
    }

    #[test]
    fn size_one_dim_never_wraps() {
        let p = Partition::torus(8, 1, 8);
        assert!(!p.is_torus_dim(Dim::Y));
        assert_eq!(p.directed_links(Dim::Y), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Partition::torus(0, 8, 8);
    }

    #[test]
    fn rank_coord_roundtrip() {
        let p = Partition::torus(4, 3, 5);
        for r in 0..p.num_nodes() {
            assert_eq!(p.rank_of(p.coord_of(r)), r);
        }
        // X varies fastest.
        assert_eq!(p.coord_of(1), Coord::new(1, 0, 0));
        assert_eq!(p.coord_of(4), Coord::new(0, 1, 0));
        assert_eq!(p.coord_of(12), Coord::new(0, 0, 1));
    }

    #[test]
    fn coords_iterator_covers_all_nodes_once() {
        let p = Partition::torus(3, 4, 2);
        let all: Vec<Coord> = p.coords().collect();
        assert_eq!(all.len(), 24);
        let set: std::collections::HashSet<Coord> = all.iter().copied().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn neighbor_wraps_on_torus_only() {
        let t = Partition::torus(8, 8, 8);
        let m = Partition::mesh(8, 8, 8);
        let edge = Coord::new(7, 0, 3);
        assert_eq!(
            t.neighbor(edge, Direction::new(Dim::X, Sign::Plus)),
            Some(Coord::new(0, 0, 3))
        );
        assert_eq!(m.neighbor(edge, Direction::new(Dim::X, Sign::Plus)), None);
        assert_eq!(
            t.neighbor(edge, Direction::new(Dim::Y, Sign::Minus)),
            Some(Coord::new(7, 7, 3))
        );
        assert_eq!(m.neighbor(edge, Direction::new(Dim::Y, Sign::Minus)), None);
    }

    #[test]
    fn neighbor_relation_is_mutual() {
        let p: Partition = "4x3Mx2".parse().unwrap();
        for c in p.coords() {
            for dir in ALL_DIRECTIONS {
                if let Some(n) = p.neighbor(c, dir) {
                    assert_eq!(p.neighbor(n, dir.opposite()), Some(c));
                }
            }
        }
    }

    #[test]
    fn hops_torus_vs_mesh() {
        let t = Partition::torus(8, 8, 8);
        let m = Partition::mesh(8, 8, 8);
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(7, 7, 7);
        // Torus: one wrap hop per dimension. Mesh: seven hops per dimension.
        assert_eq!(t.hops(a, b), 3);
        assert_eq!(m.hops(a, b), 21);
        // Max torus distance is S/2 per dimension.
        assert_eq!(t.dim_hops(Dim::X, 0, 4), 4);
        assert_eq!(t.dim_hops(Dim::X, 0, 5), 3);
    }

    #[test]
    fn hops_symmetric() {
        let p: Partition = "6x5Mx4".parse().unwrap();
        for a in p.coords() {
            for b in p.coords() {
                assert_eq!(p.hops(a, b), p.hops(b, a));
            }
        }
    }

    #[test]
    fn longest_dim_and_ties() {
        assert_eq!(
            "40x32x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::X
        );
        assert_eq!(
            "8x32x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::Y
        );
        assert_eq!("8x8x16".parse::<Partition>().unwrap().longest_dim(), Dim::Z);
        // Ties go to the earlier dimension.
        assert_eq!(
            "16x16x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::X
        );
        assert_eq!(
            "8x16x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::Y
        );
    }

    #[test]
    fn symmetry_classification() {
        for s in ["8", "16", "8x8", "16x16", "8x8x8", "16x16x16"] {
            assert!(s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
        for s in ["16x8x8", "8x32x16", "8x8x2M", "8x4M", "40x32x16"] {
            assert!(!s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
    }

    #[test]
    fn directed_link_counts() {
        let p = Partition::torus(8, 8, 8);
        // 2 directed links per node per dimension on a torus.
        assert_eq!(p.directed_links(Dim::X), 1024);
        let m: Partition = "8Mx8x8".parse().unwrap();
        // Mesh: (S-1) links per line per direction, 64 lines.
        assert_eq!(m.directed_links(Dim::X), 2 * 64 * 7);
    }
}
