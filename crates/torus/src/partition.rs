//! Partition shapes: k-ary n-dimensional blocks whose dimensions are
//! independently torus (wrapped) or mesh (unwrapped).

use crate::coord::{Coord, Dim, Direction, Sign, MAX_DIMS};
use serde::{de_field, Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A node's linear rank within a partition (dimension 0 varies fastest).
pub type Rank = u32;

/// A torus partition: an n-dimensional block of nodes with per-dimension
/// sizes and per-dimension wrap (torus) flags, `1 <= n <= MAX_DIMS`.
///
/// The arity is part of the value: `8x8` is a genuine 2D partition with
/// four links per node, distinct from the 3D `8x8x1` (which carries the
/// same nodes but six ports, the unused Z pair idle). The paper's
/// `"8x8x2M"` notation parses via [`FromStr`]: an `M` suffix marks that
/// dimension as a mesh, all other dimensions of size ≥ 2 are tori.
/// Dimensions of size 1 carry no links at all, so their wrap flag is
/// normalised to `false`.
///
/// ```
/// use bgl_torus::{Partition, Dim};
/// let p: Partition = "8x8x2M".parse().unwrap();
/// assert_eq!(p.num_nodes(), 128);
/// assert_eq!(p.ndims(), 3);
/// assert!(p.is_torus_dim(Dim::X));
/// assert!(!p.is_torus_dim(Dim::Z));
/// let q: Partition = "4x4x4x4x2".parse().unwrap();
/// assert_eq!(q.ndims(), 5);
/// assert_eq!(q.ports(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Partition {
    /// Number of dimensions (`1..=MAX_DIMS`). Extents beyond `n` are 1
    /// with wrap `false`, so derived quantities (node counts, ranks) can
    /// ignore the boundary.
    n: u8,
    dims: [u16; MAX_DIMS],
    wrap: [bool; MAX_DIMS],
}

impl Partition {
    /// A full 3D torus (the BG/L convenience; every dimension of size ≥ 2
    /// wraps).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn torus(x: u16, y: u16, z: u16) -> Partition {
        Partition::new(&[x, y, z], &[true, true, true])
    }

    /// A full 3D mesh (no dimension wraps).
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn mesh(x: u16, y: u16, z: u16) -> Partition {
        Partition::new(&[x, y, z], &[false, false, false])
    }

    /// A full torus of arbitrary dimensionality.
    ///
    /// # Panics
    /// Panics if `dims` is empty, longer than `MAX_DIMS`, or contains a
    /// zero.
    pub fn torus_nd(dims: &[u16]) -> Partition {
        Partition::new(dims, &vec![true; dims.len()])
    }

    /// A partition with explicit per-dimension sizes and wrap flags.
    ///
    /// Wrap flags on dimensions of size 1 are normalised to `false` (a
    /// single-node dimension has no links).
    ///
    /// # Panics
    /// Panics if `dims` and `wrap` differ in length, if the arity is not
    /// `1..=MAX_DIMS`, or if any dimension is zero.
    pub fn new(dims: &[u16], wrap: &[bool]) -> Partition {
        assert_eq!(
            dims.len(),
            wrap.len(),
            "dims and wrap must have the same arity"
        );
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "partition must have 1..={MAX_DIMS} dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "partition dimensions must be positive, got {dims:?}"
        );
        let mut d = [1u16; MAX_DIMS];
        let mut w = [false; MAX_DIMS];
        d[..dims.len()].copy_from_slice(dims);
        for i in 0..dims.len() {
            w[i] = wrap[i] && dims[i] > 1;
        }
        Partition {
            n: dims.len() as u8,
            dims: d,
            wrap: w,
        }
    }

    /// Number of dimensions (the partition's arity, counting size-1
    /// dimensions that were explicitly written).
    #[inline]
    pub fn ndims(&self) -> usize {
        self.n as usize
    }

    /// Number of link ports per node: `2 · ndims()` directed links leave
    /// (and enter) every node, one pair per dimension.
    #[inline]
    pub fn ports(&self) -> usize {
        2 * self.n as usize
    }

    /// The partition's dimensions, in dimension order.
    #[inline]
    pub fn dims(&self) -> impl Iterator<Item = Dim> + Clone {
        Dim::all(self.n as usize)
    }

    /// The `2n` link directions of this partition, in dense-index order.
    #[inline]
    pub fn directions(&self) -> impl Iterator<Item = Direction> + Clone {
        Direction::all(self.n as usize)
    }

    /// Size along `dim` (1 for dimensions beyond the arity, so callers
    /// iterating a fixed upper bound see a degenerate dimension, not a
    /// panic).
    #[inline]
    pub fn size(&self, dim: Dim) -> u16 {
        self.dims[dim.index()]
    }

    /// The sizes, one per dimension.
    #[inline]
    pub fn sizes(&self) -> &[u16] {
        &self.dims[..self.n as usize]
    }

    /// Whether `dim` wraps (torus) — always `false` for size-1 dimensions.
    #[inline]
    pub fn is_torus_dim(&self, dim: Dim) -> bool {
        self.wrap[dim.index()]
    }

    /// Total number of nodes `P = ∏ Pᵢ`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.dims.iter().map(|&d| d as u32).product()
    }

    /// Dimensions with more than one node, in dimension order.
    pub fn active_dims(&self) -> Vec<Dim> {
        self.dims().filter(|d| self.size(*d) > 1).collect()
    }

    /// Number of active (size > 1) dimensions: 0 for a single node, 1 for a
    /// line, 2 for a plane, 3 for a block, and so on.
    pub fn dimensionality(&self) -> usize {
        self.active_dims().len()
    }

    /// The dimension with the most nodes, the paper's `M = max(Pᵢ)`
    /// bottleneck dimension. Ties go to the earlier dimension (X before Y
    /// before Z), matching the paper's convention of naming X first.
    pub fn longest_dim(&self) -> Dim {
        let mut best = Dim::X;
        for d in self.dims().skip(1) {
            if self.size(d) > self.size(best) {
                best = d;
            }
        }
        best
    }

    /// `M = max(Pᵢ)`.
    #[inline]
    pub fn max_dim_size(&self) -> u16 {
        *self.sizes().iter().max().expect("at least one dim")
    }

    /// Whether this partition is *symmetric* in the paper's sense: every
    /// active dimension has the same size, and every active dimension is a
    /// torus. A line is symmetric; `8x8` and `16x16x16` are symmetric;
    /// `16x8x8` and `8x8x2M` are not.
    pub fn is_symmetric(&self) -> bool {
        let active = self.active_dims();
        if active.is_empty() {
            return true;
        }
        let s0 = self.size(active[0]);
        active
            .iter()
            .all(|&d| self.size(d) == s0 && self.is_torus_dim(d))
    }

    /// Linear rank of a coordinate (dimension 0 varies fastest).
    ///
    /// # Panics
    /// Panics (in debug builds) if the coordinate is out of range.
    #[inline]
    pub fn rank_of(&self, c: Coord) -> Rank {
        debug_assert!(self.contains(c), "coordinate {c} outside partition {self}");
        let mut rank: Rank = 0;
        for i in (0..self.n as usize).rev() {
            rank = rank * self.dims[i] as Rank + c.get(Dim::new(i)) as Rank;
        }
        rank
    }

    /// Coordinate of a linear rank.
    ///
    /// # Panics
    /// Panics if `rank >= num_nodes()`.
    #[inline]
    pub fn coord_of(&self, rank: Rank) -> Coord {
        assert!(
            rank < self.num_nodes(),
            "rank {rank} outside partition {self}"
        );
        let mut c = Coord::zero();
        let mut rest = rank;
        for i in 0..self.n as usize {
            c.set(Dim::new(i), (rest % self.dims[i] as Rank) as u16);
            rest /= self.dims[i] as Rank;
        }
        c
    }

    /// Whether the coordinate lies inside the partition (components beyond
    /// the arity must be zero).
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.components()
            .iter()
            .zip(self.dims.iter())
            .all(|(&v, &s)| v < s)
    }

    /// Iterate over every coordinate in rank order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.num_nodes()).map(|r| self.coord_of(r))
    }

    /// The neighbour of `c` in direction `dir`, or `None` when the move
    /// falls off the edge of a mesh dimension (or the dimension has size 1).
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Option<Coord> {
        let s = self.size(dir.dim);
        if s <= 1 {
            return None;
        }
        let v = c.get(dir.dim);
        let nv = match dir.sign {
            Sign::Plus => {
                if v + 1 < s {
                    v + 1
                } else if self.is_torus_dim(dir.dim) {
                    0
                } else {
                    return None;
                }
            }
            Sign::Minus => {
                if v > 0 {
                    v - 1
                } else if self.is_torus_dim(dir.dim) {
                    s - 1
                } else {
                    return None;
                }
            }
        };
        Some(c.with(dir.dim, nv))
    }

    /// Minimal hop count from `a` to `b` along `dim` (wrapping if torus).
    #[inline]
    pub fn dim_hops(&self, dim: Dim, a: u16, b: u16) -> u16 {
        let s = self.size(dim);
        let fwd = (b as i32 - a as i32).rem_euclid(s as i32) as u16;
        if self.is_torus_dim(dim) {
            fwd.min(s - fwd)
        } else {
            (b as i32 - a as i32).unsigned_abs() as u16
        }
    }

    /// Total minimal hop count between two coordinates.
    pub fn hops(&self, a: Coord, b: Coord) -> u32 {
        self.dims()
            .map(|d| self.dim_hops(d, a.get(d), b.get(d)) as u32)
            .sum()
    }

    /// Number of *directed* links along `dim`: `2·P` for a torus dimension,
    /// `2·P·(S-1)/S` for a mesh dimension, `0` for a size-1 dimension.
    pub fn directed_links(&self, dim: Dim) -> u64 {
        let s = self.size(dim) as u64;
        if s <= 1 {
            return 0;
        }
        let lines = self.num_nodes() as u64 / s;
        let per_line = if self.is_torus_dim(dim) { s } else { s - 1 };
        2 * lines * per_line
    }
}

/// Serializes as `{"dims": [..], "wrap": [..]}` with exactly `ndims()`
/// entries — byte-identical to the old fixed-3D representation for every
/// 3-dimensional partition, so committed golden RunKeys keep their bytes,
/// while higher/lower arities extend the same shape.
impl Serialize for Partition {
    fn to_value(&self) -> serde::Value {
        let n = self.n as usize;
        serde::Value::Object(vec![
            (
                "dims".to_string(),
                serde::Value::Array(
                    self.dims[..n]
                        .iter()
                        .map(|&d| serde::Value::U64(d as u64))
                        .collect(),
                ),
            ),
            (
                "wrap".to_string(),
                serde::Value::Array(
                    self.wrap[..n]
                        .iter()
                        .map(|&w| serde::Value::Bool(w))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for Partition {
    fn from_value(v: &serde::Value) -> Result<Partition, serde::Error> {
        let dims: Vec<u16> = de_field(v, "dims")?;
        let wrap: Vec<bool> = de_field(v, "wrap")?;
        if dims.len() != wrap.len() {
            return Err(serde::Error::custom(format!(
                "partition dims/wrap arity mismatch: {} vs {}",
                dims.len(),
                wrap.len()
            )));
        }
        if dims.is_empty() || dims.len() > MAX_DIMS {
            return Err(serde::Error::custom(format!(
                "partition must have 1..={MAX_DIMS} dimensions, got {}",
                dims.len()
            )));
        }
        if dims.contains(&0) {
            return Err(serde::Error::custom(format!(
                "partition dimensions must be positive, got {dims:?}"
            )));
        }
        Ok(Partition::new(&dims, &wrap))
    }
}

impl fmt::Display for Partition {
    /// Prints every extent, including size-1 ones (`4x4x1`, not `4x4`):
    /// arity is part of the value, and the printed form must parse back to
    /// an equal partition.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{}", self.size(d))?;
            if self.size(d) > 1 && !self.is_torus_dim(d) {
                write!(f, "M")?;
            }
        }
        Ok(())
    }
}

/// Error produced when parsing a partition string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionParseError(String);

impl fmt::Display for PartitionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid partition string: {}", self.0)
    }
}

impl std::error::Error for PartitionParseError {}

impl FromStr for Partition {
    type Err = PartitionParseError;

    /// Parse the partition notation at any arity from 2 to [`MAX_DIMS`]:
    /// `"16x16"`, `"40x32x16"`, `"4x4x4x4x2"`, `"8x8x2M"` (the `M` suffix
    /// marks a mesh dimension). The arity is exactly the number of
    /// `x`-separated tokens — `"4x4"` is 2D, `"4x4x1"` is 3D. One-token
    /// (1D) shapes are rejected: a line has no routing choice to study,
    /// and the explicit `"8x1x1"` spelling is available when a
    /// line-shaped 3D partition is meant. Whitespace around tokens is
    /// ignored (`"8 x 2M"` works too).
    fn from_str(s: &str) -> Result<Partition, PartitionParseError> {
        let tokens: Vec<&str> = s.split('x').map(str::trim).collect();
        if tokens.len() < 2 || tokens.len() > MAX_DIMS {
            return Err(PartitionParseError(format!(
                "expected 2..={MAX_DIMS} 'x'-separated sizes, got {s:?}"
            )));
        }
        let mut dims = Vec::with_capacity(tokens.len());
        let mut wrap = Vec::with_capacity(tokens.len());
        for tok in &tokens {
            let (num, mesh) = match tok.strip_suffix(['M', 'm']) {
                Some(rest) => (rest.trim(), true),
                None => (*tok, false),
            };
            let size: u16 = num
                .parse()
                .map_err(|_| PartitionParseError(format!("bad size {tok:?} in {s:?}")))?;
            if size == 0 {
                return Err(PartitionParseError(format!("zero size in {s:?}")));
            }
            dims.push(size);
            wrap.push(!mesh);
        }
        Ok(Partition::new(&dims, &wrap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_notation() {
        let p: Partition = "40x32x16".parse().unwrap();
        assert_eq!(p.sizes(), &[40, 32, 16]);
        assert_eq!(p.num_nodes(), 20480);
        assert!(p.is_torus_dim(Dim::X));

        let p: Partition = "8x8x2M".parse().unwrap();
        assert_eq!(p.sizes(), &[8, 8, 2]);
        assert!(p.is_torus_dim(Dim::Y));
        assert!(!p.is_torus_dim(Dim::Z));

        let p: Partition = "8 x 4M".parse().unwrap();
        assert_eq!(p.sizes(), &[8, 4]);
        assert_eq!(p.ndims(), 2);
        assert!(!p.is_torus_dim(Dim::Y));
    }

    #[test]
    fn parse_preserves_arity() {
        let p2: Partition = "32x32".parse().unwrap();
        assert_eq!(p2.ndims(), 2);
        assert_eq!(p2.ports(), 4);
        let p5: Partition = "4x4x4x4x2".parse().unwrap();
        assert_eq!(p5.ndims(), 5);
        assert_eq!(p5.ports(), 10);
        assert_eq!(p5.num_nodes(), 512);
        // Explicit trailing 1s count toward the arity: `8x8` and `8x8x1`
        // are different partitions (four vs six ports per node).
        let padded: Partition = "8x8x1".parse().unwrap();
        assert_eq!(padded.ndims(), 3);
        assert_ne!(padded, "8x8".parse().unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Partition>().is_err());
        assert!("8".parse::<Partition>().is_err(), "1D shapes are rejected");
        assert!("8x".parse::<Partition>().is_err());
        assert!("4x0x4".parse::<Partition>().is_err());
        assert!("0x8".parse::<Partition>().is_err());
        assert!("8xqx8".parse::<Partition>().is_err());
        assert!("4x4x4x4x4x4x4".parse::<Partition>().is_err(), ">6 dims");
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "16x16",
            "8x8x8",
            "40x32x16",
            "8x8x2M",
            "8x4M",
            "1x8x8",
            "8x1x1",
            "4x4x4x4x2",
            "2x2x2x2x2x2",
        ] {
            let p: Partition = s.parse().unwrap();
            let shown = p.to_string();
            let q: Partition = shown.parse().unwrap();
            assert_eq!(p, q, "roundtrip failed for {s} -> {shown}");
            assert_eq!(p.ndims(), q.ndims());
        }
    }

    #[test]
    fn display_prints_every_extent() {
        let p: Partition = "4x4x1".parse().unwrap();
        assert_eq!(p.to_string(), "4x4x1");
        assert_eq!("8x1x1".parse::<Partition>().unwrap().to_string(), "8x1x1");
        assert_eq!("8x8".parse::<Partition>().unwrap().to_string(), "8x8");
    }

    #[test]
    fn serde_matches_legacy_3d_bytes_and_extends() {
        // The committed golden file stores 3-dim keys; the n-dim value
        // must keep producing exactly that tree.
        let p: Partition = "4x4x1".parse().unwrap();
        let v = p.to_value();
        let dims: Vec<u16> = de_field(&v, "dims").unwrap();
        let wrap: Vec<bool> = de_field(&v, "wrap").unwrap();
        assert_eq!(dims, vec![4, 4, 1]);
        assert_eq!(wrap, vec![true, true, false]);
        assert_eq!(Partition::from_value(&v).unwrap(), p);
        // Arity survives the round trip at every dimensionality.
        for s in ["8x8", "4x4x4x4", "4x4x4x4x2", "8x8x2M"] {
            let p: Partition = s.parse().unwrap();
            let q = Partition::from_value(&p.to_value()).unwrap();
            assert_eq!(p, q, "{s}");
            assert_eq!(p.ndims(), q.ndims(), "{s}");
        }
        // Degenerate wire forms are rejected, not asserted on.
        let empty = serde::Value::Object(vec![
            ("dims".into(), serde::Value::Array(vec![])),
            ("wrap".into(), serde::Value::Array(vec![])),
        ]);
        assert!(Partition::from_value(&empty).is_err());
    }

    #[test]
    fn size_one_dim_never_wraps() {
        let p = Partition::torus(8, 1, 8);
        assert!(!p.is_torus_dim(Dim::Y));
        assert_eq!(p.directed_links(Dim::Y), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = Partition::torus(0, 8, 8);
    }

    #[test]
    #[should_panic(expected = "1..=6 dimensions")]
    fn too_many_dims_panics() {
        let _ = Partition::torus_nd(&[2; 7]);
    }

    #[test]
    fn rank_coord_roundtrip() {
        let p = Partition::torus(4, 3, 5);
        for r in 0..p.num_nodes() {
            assert_eq!(p.rank_of(p.coord_of(r)), r);
        }
        // Dimension 0 varies fastest.
        assert_eq!(p.coord_of(1), Coord::new(1, 0, 0));
        assert_eq!(p.coord_of(4), Coord::new(0, 1, 0));
        assert_eq!(p.coord_of(12), Coord::new(0, 0, 1));
    }

    #[test]
    fn rank_coord_roundtrip_higher_dims() {
        for shape in ["5x3", "3x2x2x3", "2x3x2x2x3", "2x2x2x2x2x2"] {
            let p: Partition = shape.parse().unwrap();
            for r in 0..p.num_nodes() {
                assert_eq!(p.rank_of(p.coord_of(r)), r, "{shape} rank {r}");
            }
        }
        // 4D: dimension 0 fastest, then 1, 2, 3.
        let p: Partition = "4x4x4x4".parse().unwrap();
        assert_eq!(p.coord_of(4), Coord::from_slice(&[0, 1, 0, 0]));
        assert_eq!(p.coord_of(64), Coord::from_slice(&[0, 0, 0, 1]));
    }

    #[test]
    fn coords_iterator_covers_all_nodes_once() {
        let p = Partition::torus(3, 4, 2);
        let all: Vec<Coord> = p.coords().collect();
        assert_eq!(all.len(), 24);
        let set: std::collections::HashSet<Coord> = all.iter().copied().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn neighbor_wraps_on_torus_only() {
        let t = Partition::torus(8, 8, 8);
        let m = Partition::mesh(8, 8, 8);
        let edge = Coord::new(7, 0, 3);
        assert_eq!(
            t.neighbor(edge, Direction::new(Dim::X, Sign::Plus)),
            Some(Coord::new(0, 0, 3))
        );
        assert_eq!(m.neighbor(edge, Direction::new(Dim::X, Sign::Plus)), None);
        assert_eq!(
            t.neighbor(edge, Direction::new(Dim::Y, Sign::Minus)),
            Some(Coord::new(7, 7, 3))
        );
        assert_eq!(m.neighbor(edge, Direction::new(Dim::Y, Sign::Minus)), None);
    }

    #[test]
    fn neighbor_relation_is_mutual() {
        for shape in ["4x3Mx2", "3x2x2x3", "2x2x2x2x2"] {
            let p: Partition = shape.parse().unwrap();
            for c in p.coords() {
                for dir in p.directions() {
                    if let Some(n) = p.neighbor(c, dir) {
                        assert_eq!(p.neighbor(n, dir.opposite()), Some(c), "{shape}");
                    }
                }
            }
        }
    }

    #[test]
    fn hops_torus_vs_mesh() {
        let t = Partition::torus(8, 8, 8);
        let m = Partition::mesh(8, 8, 8);
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(7, 7, 7);
        // Torus: one wrap hop per dimension. Mesh: seven hops per dimension.
        assert_eq!(t.hops(a, b), 3);
        assert_eq!(m.hops(a, b), 21);
        // Max torus distance is S/2 per dimension.
        assert_eq!(t.dim_hops(Dim::X, 0, 4), 4);
        assert_eq!(t.dim_hops(Dim::X, 0, 5), 3);
    }

    #[test]
    fn hops_symmetric() {
        let p: Partition = "6x5Mx4".parse().unwrap();
        for a in p.coords() {
            for b in p.coords() {
                assert_eq!(p.hops(a, b), p.hops(b, a));
            }
        }
    }

    #[test]
    fn longest_dim_and_ties() {
        assert_eq!(
            "40x32x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::X
        );
        assert_eq!(
            "8x32x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::Y
        );
        assert_eq!("8x8x16".parse::<Partition>().unwrap().longest_dim(), Dim::Z);
        // Ties go to the earlier dimension.
        assert_eq!(
            "16x16x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::X
        );
        assert_eq!(
            "8x16x16".parse::<Partition>().unwrap().longest_dim(),
            Dim::Y
        );
        assert_eq!(
            "4x4x4x8x2".parse::<Partition>().unwrap().longest_dim(),
            Dim::new(3)
        );
    }

    #[test]
    fn symmetry_classification() {
        for s in ["8x8", "16x16", "8x8x8", "16x16x16", "4x4x4x4", "8x1x1"] {
            assert!(s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
        for s in [
            "16x8x8",
            "8x32x16",
            "8x8x2M",
            "8x4M",
            "40x32x16",
            "4x4x4x4x2",
        ] {
            assert!(!s.parse::<Partition>().unwrap().is_symmetric(), "{s}");
        }
    }

    #[test]
    fn directed_link_counts() {
        let p = Partition::torus(8, 8, 8);
        // 2 directed links per node per dimension on a torus.
        assert_eq!(p.directed_links(Dim::X), 1024);
        let m: Partition = "8Mx8x8".parse().unwrap();
        // Mesh: (S-1) links per line per direction, 64 lines.
        assert_eq!(m.directed_links(Dim::X), 2 * 64 * 7);
        // 4D torus: every dimension carries 2·P directed links.
        let q: Partition = "4x4x4x4".parse().unwrap();
        for d in q.dims() {
            assert_eq!(q.directed_links(d), 2 * 256);
        }
    }
}
