//! Uniform all-to-all load analysis: average hop counts, per-dimension
//! bottleneck-link loads, and the peak-time denominator of the paper's
//! Equation 2, generalised to mesh dimensions and odd sizes.
//!
//! # Derivation
//!
//! In an all-to-all with `m` bytes per ordered (src, dst) pair, consider
//! dimension `d` of size `S` on a partition of `P` nodes. Every ordered pair
//! of dim-`d` coordinates `(a, b)` is taken by `(P/S)²` node pairs, and its
//! dim-`d` hops ride links of exactly one of the `P/S` parallel lines.
//!
//! **Torus dimension.** With minimal routing and balanced equator
//! tie-breaking, each travel direction carries half the total hop count, and
//! by rotational symmetry every directed link in the dimension is loaded
//! equally. The sum of minimal distances over all `S²` ordered coordinate
//! pairs is `S³/4` for even `S` and `S(S²-1)/4` for odd `S`; dividing by the
//! `2P` directed links gives a per-link load of
//!
//! ```text
//!   L_torus(S) = P·S·m/8           (even S; the paper's  P·(M/8)·m·β)
//!   L_torus(S) = P·(S²-1)·m/(8S)   (odd S)
//! ```
//!
//! **Mesh dimension.** No wrap links, so the centre cut is the bottleneck:
//! the directed link between positions `k` and `k+1` carries
//! `(k+1)(S-1-k)·(P/S)·m` bytes, maximised at the centre:
//!
//! ```text
//!   L_mesh(S) = ⌈S/2⌉·⌊S/2⌋·(P/S)·m    (= P·S·m/4 for even S)
//! ```
//!
//! — exactly twice the torus load for even `S`, matching the halved
//! bisection of a mesh.
//!
//! The peak all-to-all time is the worst dimension's load divided by the
//! link bandwidth; the paper's Equation 2 is the even-torus special case
//! with `S = M` the longest dimension.

use crate::coord::Dim;
use crate::partition::Partition;
use serde::{Deserialize, Serialize};

/// Uniform-AA load statistics for one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DimLoad {
    /// Which dimension.
    pub dim: Dim,
    /// Its size `S`.
    pub size: u16,
    /// Whether it wraps.
    pub torus: bool,
    /// Mean minimal hops per (src, dst) pair along this dimension
    /// (`S/4` for an even torus, `(S²-1)/(3S)` for a mesh).
    pub avg_hops: f64,
    /// Bytes crossing the most-loaded directed link of this dimension, per
    /// byte of per-pair payload (multiply by `m` for actual bytes).
    pub load_factor: f64,
}

/// Uniform all-to-all load analysis of a partition.
///
/// ```
/// use bgl_torus::{AaLoadAnalysis, Partition};
/// let a = AaLoadAnalysis::new("8x8x8".parse::<Partition>().unwrap());
/// // Equation 2: bottleneck-link load factor P·M/8 = 512·8/8.
/// assert_eq!(a.bottleneck().load_factor, 512.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AaLoadAnalysis {
    /// The analysed partition.
    pub partition: Partition,
    /// Per-dimension loads, one per partition dimension in dimension
    /// order (size-1 dimensions carry a zero load entry).
    pub dims: Vec<DimLoad>,
}

impl AaLoadAnalysis {
    /// Analyse `partition`. The Equation-2 derivation is per-dimension, so
    /// it applies unchanged at any arity: each dimension's bottleneck link
    /// load depends only on its own size, wrap flag and the node count.
    pub fn new(partition: Partition) -> AaLoadAnalysis {
        let p = partition.num_nodes() as f64;
        let dims: Vec<DimLoad> = partition
            .dims()
            .map(|d| {
                let s = partition.size(d) as f64;
                if partition.size(d) <= 1 {
                    return DimLoad {
                        dim: d,
                        size: partition.size(d),
                        torus: false,
                        avg_hops: 0.0,
                        load_factor: 0.0,
                    };
                }
                let torus = partition.is_torus_dim(d);
                let (sum_hops, load_factor) = if torus {
                    // Sum of minimal distances over all S² ordered coordinate pairs.
                    let sum = if partition.size(d).is_multiple_of(2) {
                        s * s * s / 4.0
                    } else {
                        s * (s * s - 1.0) / 4.0
                    };
                    // Half the hops go each direction; each of the (P/S)² node
                    // pairs per coordinate pair contributes, spread by symmetry
                    // over the P directed links per direction:
                    //   load = (sum/2)·(P/S)²/P · m = sum·P/(2S²) · m.
                    (sum, sum * p / (2.0 * s * s))
                } else {
                    // Mesh: Σ|a-b| over ordered pairs = S(S²-1)/3; the bottleneck
                    // is the centre cut, ⌈S/2⌉·⌊S/2⌋ coordinate pairs per
                    // direction, (P/S)² node pairs each, across P/S lines.
                    let sum = s * (s * s - 1.0) / 3.0;
                    let s_half_lo = (partition.size(d) / 2) as f64;
                    let s_half_hi = partition.size(d).div_ceil(2) as f64;
                    (sum, s_half_lo * s_half_hi * (p / s))
                };
                DimLoad {
                    dim: d,
                    size: partition.size(d),
                    torus,
                    avg_hops: sum_hops / (s * s),
                    load_factor,
                }
            })
            .collect();
        AaLoadAnalysis { partition, dims }
    }

    /// The most-loaded dimension (the paper's bottleneck `M` dimension).
    /// Ties go to the earlier dimension.
    pub fn bottleneck(&self) -> &DimLoad {
        // Not `max_by`: that returns the *last* maximum, and the paper's
        // convention resolves ties towards X.
        self.dims
            .iter()
            .reduce(|best, d| {
                if d.load_factor > best.load_factor {
                    d
                } else {
                    best
                }
            })
            .expect("at least one dim")
    }

    /// The paper's contention parameter `C` (Equation 2's `M/8` for an even
    /// torus): per-byte time multiplier relative to an uncontended link.
    pub fn contention_factor(&self) -> f64 {
        self.bottleneck().load_factor / self.partition.num_nodes() as f64
    }

    /// Bytes crossing the globally most-loaded directed link when every node
    /// sends `m` bytes to every other node.
    pub fn bottleneck_link_bytes(&self, m: u64) -> f64 {
        self.bottleneck().load_factor * m as f64
    }

    /// Peak (network-bound) all-to-all time, in units of one link's
    /// byte-time: `T_peak/β = load_factor · m`. Multiply by β for seconds,
    /// or divide by the chunk size for simulator cycles.
    pub fn peak_time_byte_times(&self, m: u64) -> f64 {
        self.bottleneck_link_bytes(m)
    }

    /// Peak per-node injection bandwidth (bytes per link byte-time): the
    /// aggregate rate at which one node sends during a peak-rate all-to-all,
    /// `(P-1)·m / T_peak`. Multiplying by the physical link bandwidth gives
    /// the "peak bisection bandwidth per node" curve of Figure 3.
    pub fn peak_per_node_rate(&self) -> f64 {
        let p = self.partition.num_nodes() as f64;
        (p - 1.0) / self.bottleneck().load_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyse(s: &str) -> AaLoadAnalysis {
        AaLoadAnalysis::new(s.parse::<Partition>().unwrap())
    }

    #[test]
    fn even_torus_matches_equation_2() {
        // P·M/8 per unit payload.
        for (s, want) in [
            ("8x8x8", 512.0 * 8.0 / 8.0),
            ("16x16x16", 4096.0 * 16.0 / 8.0),
            ("40x32x16", 20480.0 * 40.0 / 8.0),
            ("8x32x16", 4096.0 * 32.0 / 8.0),
        ] {
            let a = analyse(s);
            assert_eq!(a.bottleneck().load_factor, want, "{s}");
        }
    }

    #[test]
    fn bottleneck_is_longest_torus_dim() {
        assert_eq!(analyse("8x32x16").bottleneck().dim, Dim::Y);
        assert_eq!(analyse("40x32x16").bottleneck().dim, Dim::X);
        assert_eq!(analyse("8x8x16").bottleneck().dim, Dim::Z);
    }

    #[test]
    fn contention_factor_is_m_over_8() {
        assert_eq!(analyse("8x8x8").contention_factor(), 1.0);
        assert_eq!(analyse("16x16x16").contention_factor(), 2.0);
        assert_eq!(analyse("8x32x16").contention_factor(), 4.0);
    }

    #[test]
    fn mesh_dimension_doubles_load() {
        // 8x8x4M: Z mesh of 4 has load 2·2·(P/4) = P — equal to the X/Y
        // torus load P·8/8 = P.
        let a = analyse("8x8x4M");
        let p = 256.0;
        assert_eq!(a.dims[0].load_factor, p);
        assert_eq!(a.dims[2].load_factor, 2.0 * 2.0 * (p / 4.0));
        // A mesh dim of size 8 is twice the torus load.
        let a = analyse("8Mx8x8");
        assert_eq!(a.dims[0].load_factor, 2.0 * a.dims[1].load_factor);
    }

    #[test]
    fn mesh_size_2_is_half_torus_8_load() {
        // 8x8x2M (the paper's midplane half): Z mesh-2 centre cut carries
        // 1·1·(P/2)·m; X/Y tori carry P·m — X/Y are the bottleneck.
        let a = analyse("8x8x2M");
        assert_eq!(a.bottleneck().dim, Dim::X);
        assert_eq!(a.dims[2].load_factor, 128.0 / 2.0);
    }

    #[test]
    fn avg_hops() {
        let a = analyse("8x8x8");
        for d in &a.dims {
            assert!(
                (d.avg_hops - 2.0).abs() < 1e-12,
                "even torus avg hops = S/4"
            );
        }
        // Mesh avg hops = (S²-1)/(3S).
        let a = analyse("8Mx8x8");
        assert!((a.dims[0].avg_hops - 63.0 / 24.0).abs() < 1e-12);
        // Odd torus: (S²-1)/(4S).
        let a = analyse("5x1x1");
        assert!((a.dims[0].avg_hops - 24.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn odd_torus_load() {
        // S=5 line, P=5: per-link load = P(S²-1)/(8S) = 5·24/40 = 3.
        let a = AaLoadAnalysis::new(Partition::torus_nd(&[5]));
        assert!((a.dims[0].load_factor - 3.0).abs() < 1e-12);
    }

    #[test]
    fn line_and_plane_loads() {
        // 8-line: P·S/8 = 8.
        let line = AaLoadAnalysis::new(Partition::torus_nd(&[8]));
        assert_eq!(line.bottleneck().load_factor, 8.0);
        // 16x16 plane: P·16/8 = 512.
        assert_eq!(analyse("16x16").bottleneck().load_factor, 512.0);
    }

    #[test]
    fn higher_dim_loads_follow_equation_2() {
        // Equation 2 per dimension at any arity: even-torus load P·S/8.
        let a = analyse("4x4x4x4");
        assert_eq!(a.dims.len(), 4);
        for d in &a.dims {
            assert_eq!(d.load_factor, 256.0 * 4.0 / 8.0, "{}", d.dim);
        }
        // BG/Q-style 5D: the bottleneck is any of the size-4 dims (ties
        // to X), with load P·4/8.
        let a = analyse("4x4x4x4x2");
        assert_eq!(a.dims.len(), 5);
        assert_eq!(a.bottleneck().dim, Dim::X);
        assert_eq!(a.bottleneck().load_factor, 512.0 * 4.0 / 8.0);
        // The size-2 dimension is lighter: P·2/8.
        assert_eq!(a.dims[4].load_factor, 512.0 * 2.0 / 8.0);
    }

    #[test]
    fn peak_time_scales_linearly_in_m() {
        let a = analyse("8x8x8");
        assert_eq!(
            a.peak_time_byte_times(2048),
            2.0 * a.peak_time_byte_times(1024)
        );
    }

    #[test]
    fn per_node_rate_drops_with_longest_dim() {
        // Per-node peak rate ≈ 8/M, so 16³ halves 8³'s rate.
        let r512 = analyse("8x8x8").peak_per_node_rate();
        let r4k = analyse("16x16x16").peak_per_node_rate();
        assert!((r512 / r4k - 2.0).abs() < 0.01, "{r512} vs {r4k}");
    }

    #[test]
    fn size_one_dims_carry_no_load() {
        let a = analyse("16x1x1");
        assert_eq!(a.dims[1].load_factor, 0.0);
        assert_eq!(a.dims[2].load_factor, 0.0);
    }
}
