//! Coordinates, dimensions and link directions on a 3-D partition.

use serde::{Deserialize, Serialize};

/// One of the three torus dimensions.
///
/// BG/L routes deterministically in the order X, then Y, then Z; the
/// `u8` discriminants give that order, so `Dim::X < Dim::Y < Dim::Z`
/// iterates dimension-ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Dim {
    /// The X dimension (routed first under dimension order).
    X = 0,
    /// The Y dimension.
    Y = 1,
    /// The Z dimension (routed last).
    Z = 2,
}

/// All dimensions in dimension (X, Y, Z) order.
pub const ALL_DIMS: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

impl Dim {
    /// Index of the dimension (X=0, Y=1, Z=2), for indexing `[T; 3]` state.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dimension from an index in `0..3`.
    ///
    /// # Panics
    /// Panics if `i >= 3`.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        match i {
            0 => Dim::X,
            1 => Dim::Y,
            2 => Dim::Z,
            _ => panic!("dimension index {i} out of range 0..3"),
        }
    }

    /// Short lowercase name ("x", "y" or "z").
    pub const fn name(self) -> &'static str {
        match self {
            Dim::X => "x",
            Dim::Y => "y",
            Dim::Z => "z",
        }
    }

    /// The two dimensions other than `self`, in (X, Y, Z) order.
    #[inline]
    pub const fn others(self) -> [Dim; 2] {
        match self {
            Dim::X => [Dim::Y, Dim::Z],
            Dim::Y => [Dim::X, Dim::Z],
            Dim::Z => [Dim::X, Dim::Y],
        }
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name().to_uppercase().as_str())
    }
}

/// Direction of travel along a dimension: towards higher (`Plus`) or lower
/// (`Minus`) coordinates. On a torus dimension travel wraps around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Sign {
    /// Towards increasing coordinate (with wrap on a torus dimension).
    Plus = 0,
    /// Towards decreasing coordinate (with wrap on a torus dimension).
    Minus = 1,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub const fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// One of the six link directions leaving a node (`X+`, `X-`, `Y+`, `Y-`,
/// `Z+`, `Z-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Direction {
    /// Dimension the link runs along.
    pub dim: Dim,
    /// Orientation along that dimension.
    pub sign: Sign,
}

/// All six directions, ordered X+, X-, Y+, Y-, Z+, Z- (matching
/// [`Direction::index`]).
pub const ALL_DIRECTIONS: [Direction; 6] = [
    Direction {
        dim: Dim::X,
        sign: Sign::Plus,
    },
    Direction {
        dim: Dim::X,
        sign: Sign::Minus,
    },
    Direction {
        dim: Dim::Y,
        sign: Sign::Plus,
    },
    Direction {
        dim: Dim::Y,
        sign: Sign::Minus,
    },
    Direction {
        dim: Dim::Z,
        sign: Sign::Plus,
    },
    Direction {
        dim: Dim::Z,
        sign: Sign::Minus,
    },
];

impl Direction {
    /// Construct a direction.
    #[inline]
    pub const fn new(dim: Dim, sign: Sign) -> Direction {
        Direction { dim, sign }
    }

    /// Dense index in `0..6` (X+=0, X-=1, Y+=2, Y-=3, Z+=4, Z-=5), used to
    /// index per-port state in the simulator.
    #[inline]
    pub const fn index(self) -> usize {
        (self.dim as usize) * 2 + (self.sign as usize)
    }

    /// Direction from a dense index in `0..6`.
    ///
    /// # Panics
    /// Panics if `i >= 6`.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        assert!(i < 6, "direction index {i} out of range 0..6");
        ALL_DIRECTIONS[i]
    }

    /// The reverse direction (the direction a packet *arrives from* when it
    /// was sent in `self` from the neighbour).
    #[inline]
    pub const fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.flip(),
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.sign {
            Sign::Plus => "+",
            Sign::Minus => "-",
        };
        write!(f, "{}{}", self.dim, s)
    }
}

/// A node coordinate on a 3-D partition.
///
/// Coordinates are `u16` per dimension; BG/L partitions never exceeded 64
/// nodes per dimension, and `u16` keeps [`Coord`] at 6 bytes so packet
/// headers in the simulator stay small.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// X coordinate.
    pub x: u16,
    /// Y coordinate.
    pub y: u16,
    /// Z coordinate.
    pub z: u16,
}

impl Coord {
    /// Construct a coordinate.
    #[inline]
    pub const fn new(x: u16, y: u16, z: u16) -> Coord {
        Coord { x, y, z }
    }

    /// Component along `dim`.
    #[inline]
    pub const fn get(self, dim: Dim) -> u16 {
        match dim {
            Dim::X => self.x,
            Dim::Y => self.y,
            Dim::Z => self.z,
        }
    }

    /// Return a copy with the component along `dim` replaced by `v`.
    #[inline]
    pub fn with(self, dim: Dim, v: u16) -> Coord {
        let mut c = self;
        c.set(dim, v);
        c
    }

    /// Set the component along `dim`.
    #[inline]
    pub fn set(&mut self, dim: Dim, v: u16) {
        match dim {
            Dim::X => self.x = v,
            Dim::Y => self.y = v,
            Dim::Z => self.z = v,
        }
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_indices_roundtrip() {
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), *d);
        }
    }

    #[test]
    fn dim_order_is_dimension_order() {
        assert!(Dim::X < Dim::Y);
        assert!(Dim::Y < Dim::Z);
    }

    #[test]
    fn dim_others_excludes_self() {
        for d in ALL_DIMS {
            let o = d.others();
            assert_ne!(o[0], d);
            assert_ne!(o[1], d);
            assert_ne!(o[0], o[1]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dim_from_bad_index_panics() {
        let _ = Dim::from_index(3);
    }

    #[test]
    fn direction_indices_roundtrip() {
        for (i, d) in ALL_DIRECTIONS.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Direction::from_index(i), *d);
        }
    }

    #[test]
    fn direction_opposite_is_involution() {
        for d in ALL_DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().dim, d.dim);
            assert_ne!(d.opposite().sign, d.sign);
        }
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }

    #[test]
    fn coord_get_set_with() {
        let mut c = Coord::new(1, 2, 3);
        assert_eq!(c.get(Dim::X), 1);
        assert_eq!(c.get(Dim::Y), 2);
        assert_eq!(c.get(Dim::Z), 3);
        c.set(Dim::Y, 9);
        assert_eq!(c, Coord::new(1, 9, 3));
        assert_eq!(c.with(Dim::Z, 7), Coord::new(1, 9, 7));
        // `with` does not mutate.
        assert_eq!(c.z, 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dim::X.to_string(), "X");
        assert_eq!(Direction::new(Dim::Y, Sign::Minus).to_string(), "Y-");
        assert_eq!(Coord::new(4, 0, 15).to_string(), "(4,0,15)");
    }

    #[test]
    fn coord_is_small() {
        assert_eq!(std::mem::size_of::<Coord>(), 6);
    }
}
