//! Coordinates, dimensions and link directions on a k-ary n-dimensional
//! partition.
//!
//! The machine dimension is *runtime data*, not a type-level constant: a
//! [`Dim`] is an index newtype in `0..MAX_DIMS`, a [`Coord`] carries one
//! component per dimension, and a node on an n-dimensional partition has
//! `2n` link [`Direction`]s. The first three dimensions keep their BG/L
//! names (`x`, `y`, `z`); higher ones are named `d3`, `d4`, `d5`.

use serde::{Deserialize, Serialize};

/// Hard upper bound on the number of torus dimensions the workspace
/// models.
///
/// Six covers every machine in the lineage (BG/L's 3D torus, BG/Q's 5D,
/// 2D planes and meshes) while letting [`Coord`] and
/// [`HopPlan`](crate::HopPlan) stay fixed-size `Copy` values in packet
/// headers — no per-packet allocation on the simulator's hot path.
pub const MAX_DIMS: usize = 6;

/// Hard upper bound on directed links per node (`2 · MAX_DIMS`).
pub const MAX_PORTS: usize = 2 * MAX_DIMS;

/// One torus dimension, as a dense index in `0..MAX_DIMS`.
///
/// Dimension-ordered routing visits dimensions in increasing index order,
/// so `Dim::X < Dim::Y < Dim::Z` iterates dimension-ordered exactly as
/// the old 3D enum did; dimensions `3..6` extend the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dim(u8);

impl Dim {
    /// The first dimension (BG/L's X, routed first under dimension order).
    pub const X: Dim = Dim(0);
    /// The second dimension (BG/L's Y).
    pub const Y: Dim = Dim(1);
    /// The third dimension (BG/L's Z).
    pub const Z: Dim = Dim(2);

    /// Dimension from an index in `0..MAX_DIMS`.
    ///
    /// # Panics
    /// Panics if `i >= MAX_DIMS`.
    #[inline]
    pub const fn new(i: usize) -> Dim {
        assert!(i < MAX_DIMS, "dimension index out of range");
        Dim(i as u8)
    }

    /// Index of the dimension, for indexing per-dimension state.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Dimension from a dense index (alias of [`Dim::new`], kept for the
    /// symmetry with [`Direction::from_index`]).
    ///
    /// # Panics
    /// Panics if `i >= MAX_DIMS`.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        assert!(
            i < MAX_DIMS,
            "dimension index {i} out of range 0..{MAX_DIMS}"
        );
        Dim(i as u8)
    }

    /// The first `n` dimensions in dimension order.
    ///
    /// # Panics
    /// Panics if `n > MAX_DIMS`.
    #[inline]
    pub fn all(n: usize) -> impl Iterator<Item = Dim> + Clone {
        assert!(
            n <= MAX_DIMS,
            "dimension count {n} out of range 0..={MAX_DIMS}"
        );
        (0..n as u8).map(Dim)
    }

    /// Short lowercase name: `x`, `y`, `z` for the BG/L dimensions, then
    /// `d3`, `d4`, `d5`.
    pub const fn name(self) -> &'static str {
        match self.0 {
            0 => "x",
            1 => "y",
            2 => "z",
            3 => "d3",
            4 => "d4",
            5 => "d5",
            _ => unreachable!(),
        }
    }

    /// Uppercase name (`X`, `Y`, `Z`, `D3`, `D4`, `D5`), the wire and
    /// display spelling.
    pub const fn name_upper(self) -> &'static str {
        match self.0 {
            0 => "X",
            1 => "Y",
            2 => "Z",
            3 => "D3",
            4 => "D4",
            5 => "D5",
            _ => unreachable!(),
        }
    }

    /// The dimensions of an `n`-dimensional machine other than `self`, in
    /// dimension order.
    #[inline]
    pub fn others(self, n: usize) -> impl Iterator<Item = Dim> + Clone {
        Dim::all(n).filter(move |&d| d != self)
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name_upper())
    }
}

/// Serializes with the historical enum spelling (`"X"`, `"Y"`, `"Z"`) so
/// committed golden RunKeys keep their bytes; higher dimensions use
/// `"D3"`..`"D5"`.
impl Serialize for Dim {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name_upper().to_string())
    }
}

impl Deserialize for Dim {
    fn from_value(v: &serde::Value) -> Result<Dim, serde::Error> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "X" | "x" => Ok(Dim::X),
                "Y" | "y" => Ok(Dim::Y),
                "Z" | "z" => Ok(Dim::Z),
                "D3" | "d3" => Ok(Dim(3)),
                "D4" | "d4" => Ok(Dim(4)),
                "D5" | "d5" => Ok(Dim(5)),
                other => Err(serde::Error::custom(format!("unknown dimension {other:?}"))),
            },
            serde::Value::U64(i) if (*i as usize) < MAX_DIMS => Ok(Dim(*i as u8)),
            other => Err(serde::Error::custom(format!(
                "expected dimension name, got {other:?}"
            ))),
        }
    }
}

/// Direction of travel along a dimension: towards higher (`Plus`) or lower
/// (`Minus`) coordinates. On a torus dimension travel wraps around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Sign {
    /// Towards increasing coordinate (with wrap on a torus dimension).
    Plus = 0,
    /// Towards decreasing coordinate (with wrap on a torus dimension).
    Minus = 1,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub const fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// One of the `2n` link directions leaving a node of an n-dimensional
/// partition (`X+`, `X-`, `Y+`, `Y-`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Direction {
    /// Dimension the link runs along.
    pub dim: Dim,
    /// Orientation along that dimension.
    pub sign: Sign,
}

impl Direction {
    /// Construct a direction.
    #[inline]
    pub const fn new(dim: Dim, sign: Sign) -> Direction {
        Direction { dim, sign }
    }

    /// Dense index in `0..2n` (X+=0, X-=1, Y+=2, Y-=3, …), used to index
    /// per-port state in the simulator.
    #[inline]
    pub const fn index(self) -> usize {
        self.dim.index() * 2 + (self.sign as usize)
    }

    /// Direction from a dense index in `0..MAX_PORTS`.
    ///
    /// # Panics
    /// Panics if `i >= MAX_PORTS`.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        assert!(
            i < MAX_PORTS,
            "direction index {i} out of range 0..{MAX_PORTS}"
        );
        Direction {
            dim: Dim((i / 2) as u8),
            sign: if i.is_multiple_of(2) {
                Sign::Plus
            } else {
                Sign::Minus
            },
        }
    }

    /// The `2n` directions of an `n`-dimensional machine, in dense-index
    /// order (X+, X-, Y+, Y-, …).
    ///
    /// # Panics
    /// Panics if `n > MAX_DIMS`.
    #[inline]
    pub fn all(n: usize) -> impl Iterator<Item = Direction> + Clone {
        assert!(
            n <= MAX_DIMS,
            "dimension count {n} out of range 0..={MAX_DIMS}"
        );
        (0..2 * n).map(Direction::from_index)
    }

    /// The reverse direction (the direction a packet *arrives from* when it
    /// was sent in `self` from the neighbour).
    #[inline]
    pub const fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.flip(),
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self.sign {
            Sign::Plus => "+",
            Sign::Minus => "-",
        };
        write!(f, "{}{}", self.dim, s)
    }
}

/// A node coordinate on an n-dimensional partition.
///
/// Components are `u16` per dimension and stored in a fixed
/// `[u16; MAX_DIMS]` so [`Coord`] stays a 12-byte `Copy` value in packet
/// headers; components beyond a partition's dimensionality are zero and
/// ignore-equal (a 2D coordinate and the same point embedded in 3D with
/// z = 0 compare equal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    c: [u16; MAX_DIMS],
}

impl Coord {
    /// A 3D coordinate (the BG/L convenience; higher components zero).
    #[inline]
    pub const fn new(x: u16, y: u16, z: u16) -> Coord {
        Coord {
            c: [x, y, z, 0, 0, 0],
        }
    }

    /// The origin.
    #[inline]
    pub const fn zero() -> Coord {
        Coord { c: [0; MAX_DIMS] }
    }

    /// A coordinate from explicit components (missing components zero).
    ///
    /// # Panics
    /// Panics if more than `MAX_DIMS` components are given.
    pub fn from_slice(components: &[u16]) -> Coord {
        assert!(
            components.len() <= MAX_DIMS,
            "coordinate has {} components, max {MAX_DIMS}",
            components.len()
        );
        let mut c = [0u16; MAX_DIMS];
        c[..components.len()].copy_from_slice(components);
        Coord { c }
    }

    /// Component along `dim`.
    #[inline]
    pub const fn get(self, dim: Dim) -> u16 {
        self.c[dim.index()]
    }

    /// Return a copy with the component along `dim` replaced by `v`.
    #[inline]
    pub fn with(self, dim: Dim, v: u16) -> Coord {
        let mut c = self;
        c.set(dim, v);
        c
    }

    /// Set the component along `dim`.
    #[inline]
    pub fn set(&mut self, dim: Dim, v: u16) {
        self.c[dim.index()] = v;
    }

    /// All `MAX_DIMS` components (trailing ones zero for lower-dimensional
    /// coordinates).
    #[inline]
    pub fn components(&self) -> &[u16; MAX_DIMS] {
        &self.c
    }
}

impl std::fmt::Display for Coord {
    /// Prints the components up to the last nonzero one, minimum three —
    /// so 3D coordinates render exactly as they always did (`(4,0,15)`)
    /// and higher-dimensional ones extend the same form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = (3..MAX_DIMS)
            .rev()
            .find(|&i| self.c[i] != 0)
            .map_or(3, |i| i + 1);
        write!(f, "(")?;
        for (i, v) in self.c[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Serializes as a plain array of `MAX_DIMS` components. [`Coord`] never
/// appears in committed golden files (packets and faults are rank-based
/// on the wire), so the representation is free to be the simplest one.
impl Serialize for Coord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.c
                .iter()
                .map(|&v| serde::Value::U64(v as u64))
                .collect(),
        )
    }
}

impl Deserialize for Coord {
    fn from_value(v: &serde::Value) -> Result<Coord, serde::Error> {
        match v {
            serde::Value::Array(items) if items.len() <= MAX_DIMS => {
                let mut c = [0u16; MAX_DIMS];
                for (i, item) in items.iter().enumerate() {
                    c[i] = u16::from_value(item)?;
                }
                Ok(Coord { c })
            }
            // Legacy 3D object form `{"x":..,"y":..,"z":..}`.
            serde::Value::Object(_) => Ok(Coord::new(
                serde::de_field(v, "x")?,
                serde::de_field(v, "y")?,
                serde::de_field(v, "z")?,
            )),
            other => Err(serde::Error::custom(format!(
                "expected coordinate array, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_indices_roundtrip() {
        for (i, d) in Dim::all(MAX_DIMS).enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), d);
        }
        assert_eq!(Dim::X.index(), 0);
        assert_eq!(Dim::Y.index(), 1);
        assert_eq!(Dim::Z.index(), 2);
    }

    #[test]
    fn dim_order_is_dimension_order() {
        assert!(Dim::X < Dim::Y);
        assert!(Dim::Y < Dim::Z);
        assert!(Dim::Z < Dim::new(3));
    }

    #[test]
    fn dim_others_excludes_self() {
        for n in 2..=MAX_DIMS {
            for d in Dim::all(n) {
                let o: Vec<Dim> = d.others(n).collect();
                assert_eq!(o.len(), n - 1);
                assert!(!o.contains(&d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dim_from_bad_index_panics() {
        let _ = Dim::from_index(MAX_DIMS);
    }

    #[test]
    fn dim_serde_keeps_legacy_spelling_and_extends() {
        assert_eq!(Dim::X.to_value(), serde::Value::Str("X".into()));
        assert_eq!(Dim::new(4).to_value(), serde::Value::Str("D4".into()));
        for d in Dim::all(MAX_DIMS) {
            assert_eq!(Dim::from_value(&d.to_value()).unwrap(), d);
        }
        assert!(Dim::from_value(&serde::Value::Str("Q".into())).is_err());
    }

    #[test]
    fn direction_indices_roundtrip() {
        for (i, d) in Direction::all(MAX_DIMS).enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Direction::from_index(i), d);
        }
        assert_eq!(Direction::all(3).count(), 6);
        assert_eq!(Direction::all(5).count(), 10);
    }

    #[test]
    fn direction_opposite_is_involution() {
        for d in Direction::all(MAX_DIMS) {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().dim, d.dim);
            assert_ne!(d.opposite().sign, d.sign);
        }
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
    }

    #[test]
    fn coord_get_set_with() {
        let mut c = Coord::new(1, 2, 3);
        assert_eq!(c.get(Dim::X), 1);
        assert_eq!(c.get(Dim::Y), 2);
        assert_eq!(c.get(Dim::Z), 3);
        c.set(Dim::Y, 9);
        assert_eq!(c, Coord::new(1, 9, 3));
        assert_eq!(c.with(Dim::Z, 7), Coord::new(1, 9, 7));
        // `with` does not mutate.
        assert_eq!(c.get(Dim::Z), 3);
    }

    #[test]
    fn coord_from_slice_pads_with_zeros() {
        assert_eq!(Coord::from_slice(&[4, 7]), Coord::new(4, 7, 0));
        assert_eq!(Coord::from_slice(&[]), Coord::zero());
        let five = Coord::from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(five.get(Dim::new(4)), 5);
        assert_eq!(five.get(Dim::new(5)), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dim::X.to_string(), "X");
        assert_eq!(Dim::new(3).to_string(), "D3");
        assert_eq!(Direction::new(Dim::Y, Sign::Minus).to_string(), "Y-");
        assert_eq!(Coord::new(4, 0, 15).to_string(), "(4,0,15)");
        assert_eq!(Coord::zero().to_string(), "(0,0,0)");
        assert_eq!(
            Coord::from_slice(&[1, 2, 3, 4, 5]).to_string(),
            "(1,2,3,4,5)"
        );
    }

    #[test]
    fn coord_is_small_and_copy() {
        assert_eq!(std::mem::size_of::<Coord>(), 2 * MAX_DIMS);
        fn assert_copy<T: Copy>() {}
        assert_copy::<Coord>();
    }

    #[test]
    fn coord_serde_roundtrip_and_legacy_object() {
        let c = Coord::from_slice(&[3, 1, 4, 1, 5]);
        assert_eq!(Coord::from_value(&c.to_value()).unwrap(), c);
        // Coordinates serialized by the old 3D representation keep
        // deserializing.
        let legacy = serde::Value::Object(vec![
            ("x".into(), serde::Value::U64(4)),
            ("y".into(), serde::Value::U64(0)),
            ("z".into(), serde::Value::U64(15)),
        ]);
        assert_eq!(Coord::from_value(&legacy).unwrap(), Coord::new(4, 0, 15));
    }
}
