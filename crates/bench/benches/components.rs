//! Microbenchmarks of the simulator's and library's hot components:
//! routing math, packetization, schedule generation, virtual-mesh mapping,
//! raw engine cycle throughput.

use bgl_core::{destination_schedule, packetize};
use bgl_model::MachineParams;
use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig};
use bgl_torus::{AaLoadAnalysis, Coord, HopPlan, Partition, TieBreak, VirtualMesh, VmeshLayout};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_routing_math(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_math");
    let part: Partition = "40x32x16".parse().unwrap();
    g.bench_function("hop_plan_new", |b| {
        let src = Coord::new(1, 2, 3);
        let dst = Coord::new(33, 30, 9);
        b.iter(|| black_box(HopPlan::new(&part, src, dst, TieBreak::SrcParity)))
    });
    g.bench_function("rank_coord_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in (0..part.num_nodes()).step_by(97) {
                acc += part.rank_of(part.coord_of(r)) as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("aa_load_analysis", |b| {
        b.iter(|| black_box(AaLoadAnalysis::new(part)))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    let params = MachineParams::bgl();
    g.bench_function("packetize_4k", |b| {
        b.iter(|| black_box(packetize(4096, 48, 64, &params)))
    });
    g.bench_function("destination_schedule_4096", |b| {
        b.iter(|| black_box(destination_schedule(17, 4096, 4095, 42)))
    });
    g.bench_function("destination_schedule_sampled", |b| {
        b.iter(|| black_box(destination_schedule(17, 20480, 320, 42)))
    });
    g.finish();
}

fn bench_vmesh_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("vmesh_mapping");
    let part: Partition = "8x32x16".parse().unwrap();
    let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
    g.bench_function("row_pos_roundtrip", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for r in (0..part.num_nodes()).step_by(131) {
                let c = part.coord_of(r);
                acc ^= vm.pos_in_row(c) + vm.row_of(c);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Raw engine throughput: a saturated ring stream, reported per full run.
fn bench_engine_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("ring8_stream_2000_packets", |b| {
        b.iter(|| {
            let part: Partition = "8x1x1".parse().unwrap();
            let cfg = SimConfig::new(part);
            let programs: Vec<Box<dyn NodeProgram>> = (0..8u32)
                .map(|r| {
                    let next = (r + 1) % 8;
                    Box::new(ScriptedProgram::new(
                        (0..250).map(|_| SendSpec::adaptive(next, 8, 240)).collect(),
                        250,
                    )) as Box<dyn NodeProgram>
                })
                .collect();
            black_box(Engine::new(cfg, programs).run().expect("completes"))
        })
    });
    g.bench_function("uniform_4x4x4_one_packet", |b| {
        b.iter(|| {
            let part: Partition = "4x4x4".parse().unwrap();
            let cfg = SimConfig::new(part);
            let programs: Vec<Box<dyn NodeProgram>> = (0..64u32)
                .map(|r| {
                    let sends: Vec<SendSpec> = (0..64u32)
                        .filter(|&d| d != r)
                        .map(|d| SendSpec::adaptive(d, 8, 240))
                        .collect();
                    Box::new(ScriptedProgram::new(sends, 63)) as Box<dyn NodeProgram>
                })
                .collect();
            black_box(Engine::new(cfg, programs).run().expect("completes"))
        })
    });
    g.finish();
}

criterion_group!(
    components,
    bench_routing_math,
    bench_workload,
    bench_vmesh_mapping,
    bench_engine_cycles
);
criterion_main!(components);
