//! Engine scaling: per-cycle cost must track *active* nodes, not
//! partition size. Each workload runs under all three engine modes
//! (`SimConfig::engine`): the reference full-scan core, the default
//! active-set core, and the event-driven skip-ahead core — so the
//! criterion report shows the win in the sparse regime and the (absence
//! of) overhead in the dense one. `engine-bench` produces the same
//! comparison as a one-shot JSON (`BENCH_engine.json`).

use bgl_core::{run_aa, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{Engine, EngineMode, NodeProgram, ScriptedProgram, SendSpec, SimConfig};
use bgl_torus::Partition;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn modes() -> [(&'static str, EngineMode); 3] {
    [
        ("full_scan", EngineMode::FullScan),
        ("active_set", EngineMode::ActiveSet),
        ("event", EngineMode::EventDriven),
    ]
}

/// Sparse extreme: two long streams on an otherwise idle 16x8x8
/// partition — 4 of 1024 nodes ever hold work.
fn bench_sparse_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling/sparse_streams_16x8x8");
    g.sample_size(10);
    for (label, engine) in modes() {
        g.bench_function(label, |b| {
            b.iter(|| {
                let part: Partition = "16x8x8".parse().unwrap();
                let p = part.num_nodes();
                let mut cfg = SimConfig::new(part);
                cfg.engine = engine;
                let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
                    .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
                    .collect();
                for (src, dst) in [(0u32, p - 1), (1, p - 2)] {
                    programs[src as usize] = Box::new(ScriptedProgram::new(
                        (0..100).map(|_| SendSpec::adaptive(dst, 8, 240)).collect(),
                        0,
                    ));
                    programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], 100));
                }
                black_box(Engine::new(cfg, programs).run().expect("completes"))
            })
        });
    }
    g.finish();
}

/// Table 4 shape: latency-bound 1-byte all-to-all. Injection finishes
/// almost immediately; the long drain tail is where the active sets pay
/// off.
fn bench_one_byte_aa(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling/aa_1byte_8x8x8");
    g.sample_size(10);
    let params = MachineParams::bgl();
    for (label, engine) in modes() {
        g.bench_function(label, |b| {
            b.iter(|| {
                let part: Partition = "8x8x8".parse().unwrap();
                let mut cfg = SimConfig::new(part);
                cfg.engine = engine;
                black_box(
                    run_aa(
                        part,
                        &AaWorkload::full(1),
                        &StrategyKind::ar(),
                        &params,
                        cfg,
                    )
                    .expect("run completes"),
                )
            })
        });
    }
    g.finish();
}

/// Dense regression guard: saturating full-coverage all-to-all where
/// every node stays busy and the active sets can only add bookkeeping.
fn bench_dense_aa(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling/aa_dense_4x4x4_m912");
    g.sample_size(10);
    let params = MachineParams::bgl();
    for (label, engine) in modes() {
        g.bench_function(label, |b| {
            b.iter(|| {
                let part: Partition = "4x4x4".parse().unwrap();
                let mut cfg = SimConfig::new(part);
                cfg.engine = engine;
                black_box(
                    run_aa(
                        part,
                        &AaWorkload::full(912),
                        &StrategyKind::ar(),
                        &params,
                        cfg,
                    )
                    .expect("run completes"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    engine_scaling,
    bench_sparse_streams,
    bench_one_byte_aa,
    bench_dense_aa
);
criterion_main!(engine_scaling);
