//! Tracer overhead: with `SimConfig::trace` unset, the engine pays one
//! predictable branch per cycle; this group pins that the disabled cost
//! is within noise, and shows the (modest) cost of active sampling at
//! the default and an aggressive interval. `trace-bench` produces the
//! same comparison as a one-shot JSON (`BENCH_trace.json`).

use bgl_core::{run_aa, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{SimConfig, TraceConfig};
use bgl_torus::Partition;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn variants() -> [(&'static str, Option<u64>); 3] {
    [
        ("disabled", None),
        ("interval_1k", Some(1000)),
        ("interval_100", Some(100)),
    ]
}

fn aa(shape: &str, m: u64, coverage: f64, trace_interval: Option<u64>) -> u64 {
    let part: Partition = shape.parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.trace = trace_interval.map(TraceConfig::every);
    let workload = if coverage >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, coverage)
    };
    run_aa(
        part,
        &workload,
        &StrategyKind::ar(),
        &MachineParams::bgl(),
        cfg,
    )
    .expect("run completes")
    .cycles
}

/// Dense all-to-all (every node busy every cycle): the regime where any
/// per-cycle tracing cost would be most visible.
fn bench_dense_aa(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer_overhead/aa_dense_4x4x4_m912");
    g.sample_size(10);
    for (label, interval) in variants() {
        g.bench_function(label, |b| {
            b.iter(|| black_box(aa("4x4x4", 912, 1.0, interval)))
        });
    }
    g.finish();
}

/// Sparse sampled run: the active-set engine skips most nodes, so the
/// relative weight of a sampling sweep is highest.
fn bench_sampled_aa(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer_overhead/aa_sampled_8x8x8_m912");
    g.sample_size(10);
    for (label, interval) in variants() {
        g.bench_function(label, |b| {
            b.iter(|| black_box(aa("8x8x8", 912, 1.0 / 16.0, interval)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dense_aa, bench_sampled_aa);
criterion_main!(benches);
