//! One Criterion group per paper *table*, benchmarking the simulation
//! kernel that regenerates it at a reduced scale. (Full-scale regeneration
//! is `cargo run --release -p bgl-harness --bin repro -- all --scale paper`;
//! these benches keep each iteration in the tens of milliseconds.)

use bgl_core::{AaRun, AaWorkload, StrategyKind};
use bgl_torus::Partition;
use criterion::{criterion_group, criterion_main, Criterion};

fn aa(shape: &str, strategy: &StrategyKind, m: u64, cov: f64) -> f64 {
    let part: Partition = shape.parse().unwrap();
    let w = if cov >= 1.0 {
        AaWorkload::full(m)
    } else {
        AaWorkload::sampled(m, cov)
    };
    AaRun::builder(part, w)
        .strategy(strategy.clone())
        .run()
        .expect("simulation completes")
        .percent_of_peak
}

/// Table 1 kernel: AR on a symmetric plane, large messages.
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_ar_symmetric");
    g.sample_size(10);
    g.bench_function("ar_8x8_m432", |b| {
        b.iter(|| aa("8x8", &StrategyKind::ar(), 432, 1.0))
    });
    g.bench_function("ar_line16_m912", |b| {
        b.iter(|| aa("16x1x1", &StrategyKind::ar(), 912, 1.0))
    });
    g.finish();
}

/// Table 2 kernel: AR on asymmetric shapes (torus and mesh dimensions).
fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_ar_asymmetric");
    g.sample_size(10);
    g.bench_function("ar_8x4x4_m432", |b| {
        b.iter(|| aa("8x4x4", &StrategyKind::ar(), 432, 1.0))
    });
    g.bench_function("ar_8x8x2M_m432", |b| {
        b.iter(|| aa("8x8x2M", &StrategyKind::ar(), 432, 1.0))
    });
    g.finish();
}

/// Table 3 kernel: the Two Phase Schedule on an asymmetric torus.
fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_tps");
    g.sample_size(10);
    let tps = StrategyKind::tps();
    g.bench_function("tps_8x4x4_m432", |b| b.iter(|| aa("8x4x4", &tps, 432, 1.0)));
    g.bench_function("tps_4x4x8_m432", |b| b.iter(|| aa("4x4x8", &tps, 432, 1.0)));
    g.finish();
}

/// Table 4 kernel: 1-byte-latency runs, TPS vs AR.
fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_latency");
    g.sample_size(10);
    let tps = StrategyKind::tps();
    g.bench_function("ar_4x4x4_m1", |b| {
        b.iter(|| aa("4x4x4", &StrategyKind::ar(), 1, 1.0))
    });
    g.bench_function("tps_4x4x4_m1", |b| b.iter(|| aa("4x4x4", &tps, 1, 1.0)));
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4
);
criterion_main!(tables);
