//! Ablation benches: how the design choices DESIGN.md calls out move the
//! bottom line (time to drain a fixed asymmetric all-to-all).

use bgl_core::{AaRun, AaWorkload, CreditConfig, Pacer, StrategyKind};
use bgl_sim::SimConfig;
use bgl_torus::Partition;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn aa_with(
    shape: &str,
    strategy: &StrategyKind,
    m: u64,
    tweak: impl FnOnce(&mut SimConfig) + 'static,
) -> u64 {
    let part: Partition = shape.parse().unwrap();
    AaRun::builder(part, AaWorkload::full(m))
        .strategy(strategy.clone())
        .sim(tweak)
        .run()
        .expect("simulation completes")
        .cycles
}

/// VC FIFO depth sweep under asymmetric load.
fn bench_vc_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vc_depth");
    g.sample_size(10);
    for depth in [16u32, 64, 256] {
        g.bench_function(format!("vc{depth}_8x4x4"), |b| {
            b.iter(|| {
                black_box(aa_with("8x4x4", &StrategyKind::ar(), 432, move |c| {
                    c.router.vc_fifo_chunks = depth
                }))
            })
        });
    }
    g.finish();
}

/// Longest-first hint shaping on/off.
fn bench_bias(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_longest_first");
    g.sample_size(10);
    for (name, bias) in [("on", Some(true)), ("off", Some(false))] {
        g.bench_function(format!("bias_{name}_8x4x4"), |b| {
            b.iter(|| {
                black_box(aa_with("8x4x4", &StrategyKind::ar(), 432, move |c| {
                    c.router.longest_first_bias = bias
                }))
            })
        });
    }
    g.finish();
}

/// TPS with and without reserved injection FIFOs, and with credit flow
/// control.
fn bench_tps_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_tps");
    g.sample_size(10);
    let tps = StrategyKind::tps();
    let tps_credit = StrategyKind::tps().with_pacer(Pacer::CreditWindow {
        credit: CreditConfig::default(),
    });
    g.bench_function("tps_reserved_fifos", |b| {
        b.iter(|| black_box(aa_with("8x4x4", &tps, 432, |_| {})))
    });
    g.bench_function("tps_shared_fifos", |b| {
        b.iter(|| {
            black_box(aa_with("8x4x4", &tps, 432, |c| {
                c.inj_class_masks = vec![u8::MAX; c.inj_fifo_count as usize]
            }))
        })
    });
    g.bench_function("tps_credit_window", |b| {
        b.iter(|| black_box(aa_with("8x4x4", &tps_credit, 432, |_| {})))
    });
    g.finish();
}

/// Equator tie-break policies.
fn bench_tie_break(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_injection");
    g.sample_size(10);
    g.bench_function("transit_priority_on", |b| {
        b.iter(|| {
            black_box(aa_with("8x4x4", &StrategyKind::ar(), 432, |c| {
                c.router.transit_priority = true
            }))
        })
    });
    g.bench_function("transit_priority_off", |b| {
        b.iter(|| {
            black_box(aa_with("8x4x4", &StrategyKind::ar(), 432, |c| {
                c.router.transit_priority = false
            }))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_vc_depth,
    bench_bias,
    bench_tps_variants,
    bench_tie_break
);
criterion_main!(ablations);
