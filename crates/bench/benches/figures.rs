//! One Criterion group per paper *figure*, benchmarking its reduced-scale
//! simulation kernel (Figure 5 is pure model evaluation).

use bgl_core::{AaRun, AaWorkload, StrategyKind};
use bgl_model::{direct, vmesh as vmesh_model, MachineParams};
use bgl_torus::{Partition, VirtualMesh, VmeshLayout};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn aa(shape: &str, strategy: &StrategyKind, m: u64) -> f64 {
    let part: Partition = shape.parse().unwrap();
    AaRun::builder(part, AaWorkload::full(m))
        .strategy(strategy.clone())
        .run()
        .expect("simulation completes")
        .percent_of_peak
}

/// Figures 1 & 2 kernel: AR across message sizes plus the model curve.
fn bench_fig1_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_fig2_ar_vs_model");
    g.sample_size(10);
    for m in [64u64, 432] {
        g.bench_function(format!("ar_4x4x4_m{m}"), |b| {
            b.iter(|| aa("4x4x4", &StrategyKind::ar(), m))
        });
    }
    g.bench_function("model_curve_eval", |b| {
        let part: Partition = "8x8x8".parse().unwrap();
        let params = MachineParams::bgl();
        let sizes: Vec<u64> = (0..20).map(|i| 16 << (i % 10)).collect();
        b.iter(|| black_box(direct::model_curve(&part, &sizes, &params)))
    });
    g.finish();
}

/// Figure 3 kernel: one-packet AA bandwidth.
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_throughput");
    g.sample_size(10);
    g.bench_function("ar_one_packet_4x4x4", |b| {
        b.iter(|| aa("4x4x4", &StrategyKind::ar(), 192))
    });
    g.finish();
}

/// Figure 4 kernel: the three direct strategies on an asymmetric torus.
fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_direct_strategies");
    g.sample_size(10);
    g.bench_function("ar_8x4x4", |b| {
        b.iter(|| aa("8x4x4", &StrategyKind::ar(), 432))
    });
    g.bench_function("dr_8x4x4", |b| {
        b.iter(|| aa("8x4x4", &StrategyKind::dr(), 432))
    });
    g.bench_function("throttled_8x4x4", |b| {
        b.iter(|| aa("8x4x4", &StrategyKind::throttled(1.0), 432))
    });
    g.finish();
}

/// Figure 5 kernel: Equation-4 model evaluation and crossover solving.
fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_vmesh_model");
    let part: Partition = "8x8x8".parse().unwrap();
    let params = MachineParams::bgl();
    let vm = VirtualMesh::choose(part, VmeshLayout::Auto);
    g.bench_function("vmesh_model_curve", |b| {
        let sizes: Vec<u64> = (1..=64).collect();
        b.iter(|| black_box(vmesh_model::model_curve(&vm, &sizes, &params)))
    });
    g.bench_function("crossover_exact", |b| {
        b.iter(|| black_box(vmesh_model::crossover_exact(&vm, &params)))
    });
    g.finish();
}

/// Figures 6 & 7 kernel: short-message strategies measured.
fn bench_fig6_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_short_messages");
    g.sample_size(10);
    let vmesh = StrategyKind::vmesh();
    let tps = StrategyKind::tps();
    g.bench_function("vmesh_4x4x4_m8", |b| b.iter(|| aa("4x4x4", &vmesh, 8)));
    g.bench_function("ar_4x4x4_m8", |b| {
        b.iter(|| aa("4x4x4", &StrategyKind::ar(), 8))
    });
    g.bench_function("tps_4x8x4_m8", |b| b.iter(|| aa("4x8x4", &tps, 8)));
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7
);
criterion_main!(figures);
