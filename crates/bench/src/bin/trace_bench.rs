//! `trace-bench` — wall-clock cost of the time-series tracer on the
//! dense 8x8x8 adaptive-randomized all-to-all (m = 912 B, full
//! coverage): trace disabled vs sampling every 1000 cycles. The
//! acceptance bar is that the *disabled* path costs nothing measurable
//! (≤ 2 % vs the pre-tracer engine — it adds one predictable branch per
//! cycle), and the JSON also records what enabling sampling costs.
//!
//! ```text
//! trace-bench [--reps N] [--out FILE]
//! ```
//!
//! Writes `BENCH_trace.json` (default) with min-of-`reps` wall-clock
//! per variant plus a `"host"` stamp (logical CPUs, git commit, argv);
//! methodology in EXPERIMENTS.md.

use bgl_bench::host_meta_json;
use bgl_core::{run_aa, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{SimConfig, TraceConfig};
use bgl_torus::Partition;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("trace-bench: {msg}");
    std::process::exit(2);
}

/// One dense AR all-to-all; returns (cycles, samples recorded).
fn run_once(trace_interval: Option<u64>) -> (u64, usize) {
    let part: Partition = "8x8x8".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.trace = trace_interval.map(TraceConfig::every);
    let report = run_aa(
        part,
        &AaWorkload::full(912),
        &StrategyKind::ar(),
        &MachineParams::bgl(),
        cfg,
    )
    .expect("run completes");
    let samples = report.trace.as_ref().map_or(0, |t| t.samples.len());
    (report.cycles, samples)
}

/// Min wall-clock over `reps`, with the cycle count asserted stable.
fn time_runs(reps: u32, interval: Option<u64>) -> (f64, u64, usize) {
    let mut best = f64::INFINITY;
    let (mut cycles, mut samples) = (0u64, 0usize);
    for rep in 0..reps {
        let t0 = Instant::now();
        let (c, s) = run_once(interval);
        best = best.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            (cycles, samples) = (c, s);
        } else {
            assert_eq!(c, cycles, "nondeterministic cycle count");
        }
    }
    (best, cycles, samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5u32;
    let mut out = "BENCH_trace.json".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                let v = it.next().unwrap_or_default();
                reps = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => fail(&format!("--reps needs a positive integer, got {v:?}")),
                };
            }
            "--out" => match it.next() {
                Some(p) if !p.is_empty() && !p.starts_with("--") => out = p,
                _ => fail("--out needs a file path"),
            },
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!("trace-bench: dense 8x8x8 AR all-to-all (m=912, full coverage), {reps} reps");
    let (disabled_secs, cycles, _) = time_runs(reps, None);
    eprintln!("  trace disabled : {disabled_secs:.3}s ({cycles} cycles)");
    let (traced_secs, traced_cycles, samples) = time_runs(reps, Some(1000));
    eprintln!("  every 1k cycles: {traced_secs:.3}s ({samples} samples)");
    assert_eq!(cycles, traced_cycles, "tracing must not change the run");
    let overhead = 100.0 * (traced_secs / disabled_secs - 1.0);
    eprintln!("  sampling overhead: {overhead:+.1} %");

    let body = format!(
        "{{\n  \"benchmark\": \"tracer overhead, dense 8x8x8 AR all-to-all m=912\",\n  \
         \"tool\": \"trace-bench\",\n  \"reps_per_variant\": {reps},\n  {host},\n  \
         \"metric\": \"min wall-clock seconds per full simulation\",\n  \
         \"simulated_cycles\": {cycles},\n  \"variants\": [\n    \
         {{\"name\": \"trace_disabled\", \"secs\": {disabled_secs:.4}}},\n    \
         {{\"name\": \"trace_interval_1000\", \"secs\": {traced_secs:.4}, \
         \"samples\": {samples}}}\n  ],\n  \
         \"sampling_overhead_percent\": {overhead:.2}\n}}\n",
        host = host_meta_json(),
    );
    if let Err(e) = std::fs::write(&out, &body) {
        fail(&format!("cannot write {out}: {e}"));
    }
    eprintln!("wrote {out}");
}
