//! `engine-bench` — wall-clock comparison of the three engine modes
//! (`SimConfig::engine`, see [`EngineMode`]): the reference `full-scan`
//! core, the default `active-set` core (per-cycle cost scales with
//! *active* nodes), and the `event`-driven core (cycles with no state
//! change are skipped outright). Workloads span the sparse regime, where
//! both optimizations should win, and the dense regime, where their
//! bookkeeping must not regress.
//!
//! ```text
//! engine-bench [--reps N] [--out FILE] [--full-scale] [--shards N]
//!              [--engine full-scan|active-set|event] [--perf]
//! ```
//!
//! Writes a JSON report (default `BENCH_engine.json` in the current
//! directory): per workload, the minimum-of-`reps` wall-clock for each
//! mode, the active-set-vs-full-scan and event-vs-active-set speedups,
//! a fourth *sharded* column (the active-set core split across
//! `--shards` slab threads, default 4 — byte-identical results, see
//! `SimConfig::shards`), and the (identical) simulated cycle counts.
//! `--full-scale` adds the paper's full 20,480-node machine (32x32x20,
//! Table 2) and a dense 4,096-node machine (8x32x16) as final rows,
//! timed once per mode regardless of `--reps`. `--engine` narrows the
//! run to a single mode (a profiling aid: the JSON then carries one
//! seconds column and no speedups, timed at `--shards`); an unknown
//! mode or a zero shard count exits with status 2.
//!
//! `--perf` enables `SimConfig::perf` host profiling inside every timed
//! run. Results stay byte-identical (the cycle assertions still hold);
//! the point is to measure what profiling itself costs — diff a `--perf`
//! report against a plain one. The JSON records the flag, and every
//! report carries a `"host"` stamp (logical CPUs, git commit, argv) so
//! committed numbers stay interpretable.

use bgl_bench::{host_meta_json, json_escape};
use bgl_core::{run_aa, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{
    Engine, EngineMode, FlowSpec, NodeProgram, PerfConfig, ScriptedProgram, SendSpec, SimConfig,
};
use bgl_torus::{Coord, Partition};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The sequential baseline: one shard.
const ONE: NonZeroUsize = NonZeroUsize::MIN;

/// Whether `--perf` was passed: every timed run then collects a host
/// profile (the overhead-measurement mode; results stay byte-identical).
static PERF: AtomicBool = AtomicBool::new(false);

/// The `SimConfig::perf` knob for the current invocation.
fn perf_knob() -> Option<PerfConfig> {
    PERF.load(Ordering::Relaxed).then(PerfConfig::default)
}

fn fail(msg: &str) -> ! {
    eprintln!("engine-bench: {msg}");
    std::process::exit(2);
}

struct Outcome {
    name: &'static str,
    description: &'static str,
    cycles: u64,
    full_scan_secs: f64,
    active_set_secs: f64,
    event_secs: f64,
    sharded_secs: f64,
}

impl Outcome {
    /// Active-set win over the reference core.
    fn active_speedup(&self) -> f64 {
        self.full_scan_secs / self.active_set_secs
    }

    /// Event-driven win over the already-optimized active-set core.
    fn event_speedup(&self) -> f64 {
        self.active_set_secs / self.event_secs
    }

    /// Slab-sharding win over the single-thread active-set core.
    fn shard_speedup(&self) -> f64 {
        self.active_set_secs / self.sharded_secs
    }
}

/// Minimum wall-clock over `reps` runs plus the simulated cycle count
/// (asserted stable across repetitions).
fn time_runs(reps: u32, mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0u64;
    for rep in 0..reps {
        let t0 = Instant::now();
        let c = run();
        best = best.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            cycles = c;
        } else {
            assert_eq!(c, cycles, "nondeterministic cycle count");
        }
    }
    (best, cycles)
}

/// Time one workload in all three engine modes and check they simulate
/// the exact same number of cycles (the equivalence tests pin full
/// stats; here the cycle count guards against benchmarking two
/// different runs).
fn compare(
    name: &'static str,
    description: &'static str,
    reps: u32,
    shards: NonZeroUsize,
    run: impl Fn(EngineMode, NonZeroUsize) -> u64,
) -> Outcome {
    let (full_scan_secs, full_cycles) = time_runs(reps, || run(EngineMode::FullScan, ONE));
    let (active_set_secs, active_cycles) = time_runs(reps, || run(EngineMode::ActiveSet, ONE));
    let (event_secs, event_cycles) = time_runs(reps, || run(EngineMode::EventDriven, ONE));
    let (sharded_secs, sharded_cycles) = time_runs(reps, || run(EngineMode::ActiveSet, shards));
    assert_eq!(
        active_cycles, full_cycles,
        "{name}: active-set disagrees with full-scan on cycles"
    );
    assert_eq!(
        event_cycles, full_cycles,
        "{name}: event-driven disagrees with full-scan on cycles"
    );
    assert_eq!(
        sharded_cycles, full_cycles,
        "{name}: sharded active-set disagrees with full-scan on cycles"
    );
    eprintln!(
        "  {name}: full-scan {full_scan_secs:.3}s  active-set {active_set_secs:.3}s  \
         event {event_secs:.3}s  shards={shards} {sharded_secs:.3}s  \
         (active {:.2}x, event {:.2}x, shard {:.2}x, {full_cycles} cycles)",
        full_scan_secs / active_set_secs,
        active_set_secs / event_secs,
        active_set_secs / sharded_secs
    );
    Outcome {
        name,
        description,
        cycles: full_cycles,
        full_scan_secs,
        active_set_secs,
        event_secs,
        sharded_secs,
    }
}

fn aa_cycles(
    shape: &str,
    strategy: &StrategyKind,
    workload: &AaWorkload,
    engine: EngineMode,
    shards: NonZeroUsize,
) -> u64 {
    let part: Partition = shape.parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.engine = engine;
    cfg.shards = shards;
    cfg.perf = perf_knob();
    run_aa(part, workload, strategy, &MachineParams::bgl(), cfg)
        .expect("run completes")
        .cycles
}

/// A handful of long rate-paced point-to-point streams on an otherwise
/// idle 16x8x8 partition: the extreme sparse case (8 of 1024 nodes ever
/// active), with the injection window throttled to 1/32 chunk per cycle
/// so even the busy nodes spend most cycles waiting — the regime the
/// event-driven core skips outright.
fn stream_cycles(engine: EngineMode, shards: NonZeroUsize) -> u64 {
    let part: Partition = "16x8x8".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.engine = engine;
    cfg.shards = shards;
    cfg.perf = perf_knob();
    cfg.flow = FlowSpec::Rate {
        chunks_per_cycle: 1.0 / 32.0,
    };
    let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
        .collect();
    let pairs = [(0u32, p - 1), (1, p - 2), (p / 2, 2), (p / 2 + 1, 3)];
    for (src, dst) in pairs {
        programs[src as usize] = Box::new(ScriptedProgram::new(
            (0..400).map(|_| SendSpec::adaptive(dst, 8, 240)).collect(),
            0,
        ));
        programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], 400));
    }
    Engine::new(cfg, programs)
        .run()
        .expect("completes")
        .completion_cycle
}

/// Table 4-style latency shape: a 1-byte all-to-all among an 8-node
/// subcommunicator (the paper's smallest Table 4 partition) embedded in
/// an otherwise idle 2048-node machine, repeated 200 times back-to-back
/// the way latency benchmarks measure — long run, 8 active nodes.
fn subcomm_aa_cycles(engine: EngineMode, shards: NonZeroUsize) -> u64 {
    let part: Partition = "16x16x8".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.engine = engine;
    cfg.shards = shards;
    cfg.perf = perf_knob();
    let comm: Vec<u32> = (0..8u16)
        .map(|x| part.rank_of(Coord::new(x, 0, 0)))
        .collect();
    let programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|r| {
            if comm.contains(&r) {
                let sends: Vec<SendSpec> = (0..200)
                    .flat_map(|_| {
                        comm.iter()
                            .filter(move |&&d| d != r)
                            .map(|&d| SendSpec::adaptive(d, 1, 1))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                Box::new(ScriptedProgram::new(sends, 7 * 200)) as Box<dyn NodeProgram>
            } else {
                Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>
            }
        })
        .collect();
    Engine::new(cfg, programs)
        .run()
        .expect("completes")
        .completion_cycle
}

/// One benchmark row: name, description, reps, and the run closure
/// (returns the simulated cycle count, asserted equal across modes).
type Workload = (
    &'static str,
    &'static str,
    u32,
    Box<dyn Fn(EngineMode, NonZeroUsize) -> u64>,
);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 3u32;
    let mut out = "BENCH_engine.json".to_string();
    let mut full_scale = false;
    let mut only: Option<EngineMode> = None;
    let mut shards = NonZeroUsize::new(4).unwrap();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                let v = it.next().unwrap_or_default();
                reps = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => fail(&format!("--reps needs a positive integer, got {v:?}")),
                };
            }
            "--out" => match it.next() {
                Some(p) if !p.is_empty() && !p.starts_with("--") => out = p,
                _ => fail("--out needs a file path"),
            },
            "--full-scale" => full_scale = true,
            "--perf" => PERF.store(true, Ordering::Relaxed),
            "--engine" => {
                let v = it.next().unwrap_or_default();
                only = Some(v.parse().unwrap_or_else(|e: String| fail(&e)));
            }
            "--shards" => {
                let v = it.next().unwrap_or_default();
                shards = v
                    .parse::<usize>()
                    .ok()
                    .and_then(NonZeroUsize::new)
                    .unwrap_or_else(|| {
                        fail(&format!("--shards needs a positive integer, got {v:?}"))
                    });
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!(
        "engine-bench: {reps} reps per mode, sharded column at {shards} shards, \
         min wall-clock reported"
    );
    let ar = StrategyKind::ar();
    let tps = StrategyKind::tps();
    let mut workloads: Vec<Workload> = vec![
        (
            "sparse_streams_16x8x8",
            "4 long rate-paced adaptive streams (1/32 chunk per cycle) on an idle \
             1024-node partition (8 nodes ever active)",
            reps,
            Box::new(stream_cycles),
        ),
        (
            "subcomm_aa_1byte_16x16x8",
            "Table 4 latency shape: 200 back-to-back 1-byte all-to-alls among an \
             8-node subcommunicator of an idle 2048-node machine",
            reps,
            Box::new(subcomm_aa_cycles),
        ),
        (
            "aa_1byte_8x8x8_ar",
            "Table 4 shape: 1-byte all-to-all on 8x8x8, adaptive randomized",
            reps,
            Box::new({
                let ar = ar.clone();
                move |e, s| aa_cycles("8x8x8", &ar, &AaWorkload::full(1), e, s)
            }),
        ),
        (
            "aa_sampled_8x8x8_m912_tps",
            "sampled Table 3 shape: m=912 on 8x8x8 at 1/16 coverage, two-phase schedule",
            reps,
            Box::new(move |e, s| {
                aa_cycles("8x8x8", &tps, &AaWorkload::sampled(912, 1.0 / 16.0), e, s)
            }),
        ),
        (
            "aa_dense_8x8x8_m912_ar",
            "dense regression guard: full-coverage m=912 all-to-all on 8x8x8",
            reps,
            Box::new({
                let ar = ar.clone();
                move |e, s| aa_cycles("8x8x8", &ar, &AaWorkload::full(912), e, s)
            }),
        ),
        (
            "aa_4d_4x4x4x4_m64_ar",
            "4-D torus row: full-coverage m=64 all-to-all on 4x4x4x4 \
             (256 nodes, 8 links per node) — the arity-generalized router path",
            reps,
            Box::new({
                let ar = ar.clone();
                move |e, s| aa_cycles("4x4x4x4", &ar, &AaWorkload::full(64), e, s)
            }),
        ),
    ];
    if full_scale {
        // The full BG/L machine of the paper's Table 2: 20,480 nodes.
        // Destination sampling (16 per node) keeps the run in budget;
        // one rep per mode — the full-scan reference alone is minutes.
        workloads.push((
            "table2_full_machine_32x32x20_ar",
            "paper's full 20,480-node machine (32x32x20, Table 2): sampled \
             1-byte adaptive all-to-all, 16 destinations per node",
            1,
            Box::new({
                let ar = ar.clone();
                move |e, s| {
                    aa_cycles(
                        "32x32x20",
                        &ar,
                        &AaWorkload::sampled(1, 16.0 / 20_479.0),
                        e,
                        s,
                    )
                }
            }),
        ));
        // The shard-scaling headline: a dense 4,096-node run where every
        // node stays active every cycle, so the active sets and event
        // skips buy nothing and slab sharding is the only lever left.
        // 32 m=912 destinations per node keeps one rep in budget.
        workloads.push((
            "aa_dense_8x32x16_m912_ar",
            "dense 4,096-node machine (8x32x16): sampled m=912 adaptive all-to-all, \
             32 destinations per node, every node active — the shard-scaling row",
            1,
            Box::new(move |e, s| {
                aa_cycles(
                    "8x32x16",
                    &ar,
                    &AaWorkload::sampled(912, 32.0 / 4_095.0),
                    e,
                    s,
                )
            }),
        ));
    }

    let body = match only {
        Some(mode) => {
            // Single-mode profiling run: one seconds column, no speedups.
            let mut body = String::from("{\n");
            body.push_str(&format!("  \"benchmark\": \"engine {mode} mode\",\n"));
            body.push_str("  \"tool\": \"engine-bench\",\n");
            body.push_str(&format!("  \"engine\": \"{mode}\",\n"));
            body.push_str(&format!("  \"reps_per_mode\": {reps},\n"));
            body.push_str(&format!("  \"shards\": {shards},\n"));
            body.push_str(&format!("  \"perf\": {},\n", PERF.load(Ordering::Relaxed)));
            body.push_str(&format!("  {},\n", host_meta_json()));
            body.push_str("  \"metric\": \"min wall-clock seconds per full simulation\",\n");
            body.push_str("  \"workloads\": [\n");
            let last = workloads.len();
            for (i, (name, description, reps, run)) in workloads.iter().enumerate() {
                let (secs, cycles) = time_runs(*reps, || run(mode, shards));
                eprintln!("  {name}: {mode} {secs:.3}s ({cycles} cycles)");
                body.push_str(&format!(
                    "    {{\"name\": \"{}\", \"description\": \"{}\", \"cycles\": {}, \
                     \"secs\": {:.4}}}{}\n",
                    json_escape(name),
                    json_escape(description),
                    cycles,
                    secs,
                    if i + 1 == last { "" } else { "," },
                ));
            }
            body.push_str("  ]\n}\n");
            body
        }
        None => {
            let results: Vec<Outcome> = workloads
                .iter()
                .map(|(name, description, reps, run)| {
                    compare(name, description, *reps, shards, run)
                })
                .collect();
            let mut body = String::from("{\n");
            body.push_str(
                "  \"benchmark\": \"engine modes: full-scan vs active-set vs event-driven \
                 vs sharded active-set\",\n",
            );
            body.push_str("  \"tool\": \"engine-bench\",\n");
            body.push_str(&format!("  \"reps_per_mode\": {reps},\n"));
            body.push_str(&format!("  \"shards\": {shards},\n"));
            body.push_str(&format!("  \"perf\": {},\n", PERF.load(Ordering::Relaxed)));
            body.push_str(&format!("  {},\n", host_meta_json()));
            body.push_str("  \"metric\": \"min wall-clock seconds per full simulation\",\n");
            body.push_str("  \"workloads\": [\n");
            for (i, r) in results.iter().enumerate() {
                body.push_str(&format!(
                    "    {{\"name\": \"{}\", \"description\": \"{}\", \"cycles\": {}, \
                     \"full_scan_secs\": {:.4}, \"active_set_secs\": {:.4}, \"event_secs\": {:.4}, \
                     \"sharded_secs\": {:.4}, \"active_speedup\": {:.3}, \
                     \"event_speedup\": {:.3}, \"shard_speedup\": {:.3}}}{}\n",
                    json_escape(r.name),
                    json_escape(r.description),
                    r.cycles,
                    r.full_scan_secs,
                    r.active_set_secs,
                    r.event_secs,
                    r.sharded_secs,
                    r.active_speedup(),
                    r.event_speedup(),
                    r.shard_speedup(),
                    if i + 1 == results.len() { "" } else { "," },
                ));
            }
            body.push_str("  ]\n}\n");
            body
        }
    };
    if let Err(e) = std::fs::write(&out, &body) {
        fail(&format!("cannot write {out}: {e}"));
    }
    eprintln!("wrote {out}");
}
