//! `engine-bench` — before/after wall-clock comparison of the engine's
//! reference full-scan mode (`SimConfig::full_scan_engine = true`)
//! against the default active-set mode, on workloads spanning the sparse
//! regime (where per-cycle cost should scale with *active* nodes) and
//! the dense regime (where the bookkeeping must not regress).
//!
//! ```text
//! engine-bench [--reps N] [--out FILE]
//! ```
//!
//! Writes a JSON report (default `BENCH_engine.json` in the current
//! directory): per workload, the minimum-of-`reps` wall-clock for each
//! mode, the speedup, and the (identical) simulated cycle counts.

use bgl_core::{run_aa, AaWorkload, StrategyKind};
use bgl_model::MachineParams;
use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig};
use bgl_torus::{Coord, Partition};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("engine-bench: {msg}");
    std::process::exit(2);
}

struct Outcome {
    name: &'static str,
    description: &'static str,
    cycles: u64,
    full_scan_secs: f64,
    active_set_secs: f64,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.full_scan_secs / self.active_set_secs
    }
}

/// Minimum wall-clock over `reps` runs plus the simulated cycle count
/// (asserted stable across repetitions).
fn time_runs(reps: u32, mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0u64;
    for rep in 0..reps {
        let t0 = Instant::now();
        let c = run();
        best = best.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            cycles = c;
        } else {
            assert_eq!(c, cycles, "nondeterministic cycle count");
        }
    }
    (best, cycles)
}

/// Time one workload in both engine modes and check they simulate the
/// exact same number of cycles (the equivalence tests pin full stats;
/// here the cycle count guards against benchmarking two different runs).
fn compare(
    name: &'static str,
    description: &'static str,
    reps: u32,
    run: impl Fn(bool) -> u64,
) -> Outcome {
    let (full_scan_secs, full_cycles) = time_runs(reps, || run(true));
    let (active_set_secs, active_cycles) = time_runs(reps, || run(false));
    assert_eq!(
        active_cycles, full_cycles,
        "{name}: modes disagree on cycles"
    );
    eprintln!(
        "  {name}: full-scan {full_scan_secs:.3}s  active-set {active_set_secs:.3}s  \
         ({:.2}x, {full_cycles} cycles)",
        full_scan_secs / active_set_secs
    );
    Outcome {
        name,
        description,
        cycles: full_cycles,
        full_scan_secs,
        active_set_secs,
    }
}

fn aa_cycles(shape: &str, strategy: &StrategyKind, workload: &AaWorkload, full_scan: bool) -> u64 {
    let part: Partition = shape.parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.full_scan_engine = full_scan;
    run_aa(part, workload, strategy, &MachineParams::bgl(), cfg)
        .expect("run completes")
        .cycles
}

/// A handful of long point-to-point streams on an otherwise idle 16x8x8
/// partition: the extreme sparse case (8 of 1024 nodes ever active).
fn stream_cycles(full_scan: bool) -> u64 {
    let part: Partition = "16x8x8".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.full_scan_engine = full_scan;
    let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
        .collect();
    let pairs = [(0u32, p - 1), (1, p - 2), (p / 2, 2), (p / 2 + 1, 3)];
    for (src, dst) in pairs {
        programs[src as usize] = Box::new(ScriptedProgram::new(
            (0..400).map(|_| SendSpec::adaptive(dst, 8, 240)).collect(),
            0,
        ));
        programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], 400));
    }
    Engine::new(cfg, programs)
        .run()
        .expect("completes")
        .completion_cycle
}

/// Table 4-style latency shape: a 1-byte all-to-all among an 8-node
/// subcommunicator (the paper's smallest Table 4 partition) embedded in
/// an otherwise idle 2048-node machine, repeated 200 times back-to-back
/// the way latency benchmarks measure — long run, 8 active nodes.
fn subcomm_aa_cycles(full_scan: bool) -> u64 {
    let part: Partition = "16x16x8".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.full_scan_engine = full_scan;
    let comm: Vec<u32> = (0..8u16)
        .map(|x| part.rank_of(Coord::new(x, 0, 0)))
        .collect();
    let programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|r| {
            if comm.contains(&r) {
                let sends: Vec<SendSpec> = (0..200)
                    .flat_map(|_| {
                        comm.iter()
                            .filter(move |&&d| d != r)
                            .map(|&d| SendSpec::adaptive(d, 1, 1))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                Box::new(ScriptedProgram::new(sends, 7 * 200)) as Box<dyn NodeProgram>
            } else {
                Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>
            }
        })
        .collect();
    Engine::new(cfg, programs)
        .run()
        .expect("completes")
        .completion_cycle
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 3u32;
    let mut out = "BENCH_engine.json".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                let v = it.next().unwrap_or_default();
                reps = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => fail(&format!("--reps needs a positive integer, got {v:?}")),
                };
            }
            "--out" => match it.next() {
                Some(p) if !p.is_empty() && !p.starts_with("--") => out = p,
                _ => fail("--out needs a file path"),
            },
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!("engine-bench: {reps} reps per mode, min wall-clock reported");
    let ar = StrategyKind::ar();
    let tps = StrategyKind::tps();
    let results = [
        compare(
            "sparse_streams_16x8x8",
            "4 long adaptive streams on an idle 1024-node partition (8 nodes ever active)",
            reps,
            stream_cycles,
        ),
        compare(
            "subcomm_aa_1byte_16x16x8",
            "Table 4 latency shape: 200 back-to-back 1-byte all-to-alls among an \
             8-node subcommunicator of an idle 2048-node machine",
            reps,
            subcomm_aa_cycles,
        ),
        compare(
            "aa_1byte_8x8x8_ar",
            "Table 4 shape: 1-byte all-to-all on 8x8x8, adaptive randomized",
            reps,
            |fs| aa_cycles("8x8x8", &ar, &AaWorkload::full(1), fs),
        ),
        compare(
            "aa_sampled_8x8x8_m912_tps",
            "sampled Table 3 shape: m=912 on 8x8x8 at 1/16 coverage, two-phase schedule",
            reps,
            |fs| aa_cycles("8x8x8", &tps, &AaWorkload::sampled(912, 1.0 / 16.0), fs),
        ),
        compare(
            "aa_dense_8x8x8_m912_ar",
            "dense regression guard: full-coverage m=912 all-to-all on 8x8x8",
            reps,
            |fs| aa_cycles("8x8x8", &ar, &AaWorkload::full(912), fs),
        ),
    ];

    let mut body = String::from("{\n");
    body.push_str("  \"benchmark\": \"engine full-scan vs active-set\",\n");
    body.push_str("  \"tool\": \"engine-bench\",\n");
    body.push_str(&format!("  \"reps_per_mode\": {reps},\n"));
    body.push_str("  \"metric\": \"min wall-clock seconds per full simulation\",\n");
    body.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"description\": \"{}\", \"cycles\": {}, \
             \"full_scan_secs\": {:.4}, \"active_set_secs\": {:.4}, \"speedup\": {:.3}}}{}\n",
            json_escape(r.name),
            json_escape(r.description),
            r.cycles,
            r.full_scan_secs,
            r.active_set_secs,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &body) {
        fail(&format!("cannot write {out}: {e}"));
    }
    eprintln!("wrote {out}");
}
