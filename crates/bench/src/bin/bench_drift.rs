//! `bench-drift` — warn-only comparison of a fresh `engine-bench` JSON
//! report against a committed baseline (`BENCH_engine.json`).
//!
//! ```text
//! bench-drift <baseline.json> <fresh.json> [--tolerance X]
//! ```
//!
//! For each workload present in both reports, every shared `*_secs`
//! column is compared as a ratio; anything outside `[1/X, X]` (default
//! 3.0 — wall-clock on shared CI runners is noisy, so the net is wide)
//! is reported as drift. A changed cycle count is also flagged: that is
//! never noise, it means the simulation itself changed. The exit status
//! is 0 in every comparable case — this is a canary, not a gate — and 2
//! only for unusable input (missing file, bad JSON, bad flags).

use serde::Value;

fn fail(msg: &str) -> ! {
    eprintln!("bench-drift: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path:?}: {e}")));
    serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("cannot parse {path:?}: {e}")))
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// The report's workload rows keyed by name.
fn workloads<'a>(report: &'a Value, path: &str) -> Vec<(&'a str, &'a Value)> {
    report
        .get("workloads")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&format!("{path:?} has no \"workloads\" array")))
        .iter()
        .filter_map(|w| w.get("name").and_then(as_str).map(|n| (n, w)))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = 3.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it.next().unwrap_or_default();
                tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| *x > 1.0 && x.is_finite())
                    .unwrap_or_else(|| fail(&format!("--tolerance needs a ratio > 1, got {v:?}")));
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = &paths[..] else {
        fail("usage: bench-drift <baseline.json> <fresh.json> [--tolerance X]");
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let base_rows = workloads(&baseline, baseline_path);
    let fresh_rows = workloads(&fresh, fresh_path);

    let mut drifts = 0u32;
    let mut compared = 0u32;
    for (name, base) in &base_rows {
        let Some((_, new)) = fresh_rows.iter().find(|(n, _)| n == name) else {
            eprintln!("bench-drift: note: workload {name:?} absent from fresh report");
            continue;
        };
        let base_fields = base.as_object().unwrap_or(&[]);
        for (key, bv) in base_fields {
            if key == "cycles" {
                if new.get(key) != Some(bv) {
                    drifts += 1;
                    eprintln!(
                        "bench-drift: WARNING {name}: cycle count changed \
                         ({:?} -> {:?}) — the simulation itself differs",
                        bv,
                        new.get(key),
                    );
                }
                continue;
            }
            if !key.ends_with("_secs") {
                continue;
            }
            let (Some(b), Some(f)) = (as_f64(bv), new.get(key).and_then(as_f64)) else {
                continue;
            };
            compared += 1;
            if b <= 0.0 || f <= 0.0 {
                continue;
            }
            let ratio = f / b;
            if ratio > tolerance || ratio < 1.0 / tolerance {
                drifts += 1;
                eprintln!(
                    "bench-drift: WARNING {name}.{key}: {b:.4}s -> {f:.4}s \
                     ({ratio:.2}x, tolerance {tolerance:.1}x)"
                );
            }
        }
    }
    if drifts == 0 {
        eprintln!(
            "bench-drift: OK — {compared} timing column(s) within {tolerance:.1}x \
             of {baseline_path}"
        );
    } else {
        eprintln!(
            "bench-drift: {drifts} drift warning(s) over {compared} timing column(s) \
             (warn-only; not failing the build)"
        );
    }
}
