//! Shared helpers for the bench binaries (`engine-bench`, `trace-bench`,
//! `bench-drift`): JSON string escaping and the host-metadata stamp that
//! makes a committed `BENCH_*.json` interpretable later — wall-clock
//! numbers mean nothing without knowing the machine and flags that
//! produced them. The criterion benches live in `benches/`.

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The short git commit of the working tree, or `"unknown"` when git (or
/// the repository) is unavailable — bench reports must never fail over
/// provenance.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `"host": {...}` JSON object stamped into every bench report:
/// logical CPU count (the sharded columns are meaningless without it),
/// git commit, and the exact invocation. Rendered as one line, no
/// trailing comma or newline.
pub fn host_meta_json() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let argv: Vec<String> = std::env::args().collect();
    format!(
        "\"host\": {{\"logical_cpus\": {cpus}, \"git_commit\": \"{}\", \"argv\": \"{}\"}}",
        json_escape(&git_commit()),
        json_escape(&argv.join(" ")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn host_meta_is_valid_json_fragment() {
        let meta = format!("{{{}}}", host_meta_json());
        let v: serde::Value = serde_json::from_str(&meta).expect("parses");
        let host = v.get("host").expect("host key");
        assert!(host.get("logical_cpus").is_some());
        assert!(host.get("git_commit").is_some());
        assert!(host.get("argv").is_some());
    }
}
