//! CLI hardening for `engine-bench`: malformed input must produce a
//! one-line stderr message and exit status 2 — never a panic. (The
//! happy path runs minutes of simulation, so it is exercised by the
//! committed `BENCH_engine.json` rather than a test.)

use std::process::Command;

fn assert_clean_failure(args: &[&str], needle: &str) {
    let out = Command::new(env!("CARGO_BIN_EXE_engine-bench"))
        .args(args)
        .output()
        .expect("spawn engine-bench");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, stderr: {stderr}"
    );
    assert_eq!(stderr.trim_end().lines().count(), 1, "{args:?}: {stderr:?}");
    assert!(
        stderr.contains(needle),
        "{args:?} stderr {stderr:?} lacks {needle:?}"
    );
    assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
}

#[test]
fn engine_bench_rejects_malformed_input() {
    assert_clean_failure(&["--reps", "0"], "positive integer");
    assert_clean_failure(&["--reps", "three"], "positive integer");
    assert_clean_failure(&["--out"], "needs a file path");
    assert_clean_failure(&["--out", "--reps"], "needs a file path");
    assert_clean_failure(&["--frobnicate"], "unknown argument");
    assert_clean_failure(&["--engine", "warp"], "unknown engine");
    assert_clean_failure(&["--engine", ""], "unknown engine");
}
