//! Fault-injection soak: a long adaptive run on a 4x4x4 torus with links
//! failing and recovering mid-flight, oracle on. Exercises the full
//! degraded-mode path — arbitration refusal, detours, in-flight drops,
//! recovery — and pins the accounting identity `injected == delivered +
//! dropped_by_fault` plus byte-equality across all three engine modes.

use bgl_sim::{
    Engine, EngineMode, FaultPlan, LinkFault, NetStats, NodeProgram, ScriptedProgram, SendSpec,
    SimConfig,
};
use bgl_torus::{Dim, Direction, Partition, Sign};

/// Uniform adaptive all-to-all: every node sends `k` packets of `chunks`
/// chunks to every other node.
fn uniform(part: &Partition, k: u64, chunks: u8) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| SendSpec::adaptive(d, chunks, chunks as u32 * 30))
                })
                .collect();
            let expect = (p as u64 - 1) * k;
            Box::new(ScriptedProgram::new(sends, expect)) as Box<dyn NodeProgram>
        })
        .collect()
}

fn dir(dim: Dim, sign: Sign) -> Direction {
    Direction { dim, sign }
}

/// Fail→recover→fail windows inside the ~2300-cycle healthy run (the
/// simulator is deterministic, so the healthy completion cycle is a
/// constant of the workload): two links die while traffic is heavy and
/// come back before the drain, a third dies and never recovers (AR
/// routes around it). The instants are chosen mid-flight so the drop
/// path is exercised, not just the arbitration-refusal path.
fn soak_plan() -> FaultPlan {
    FaultPlan {
        links: vec![
            LinkFault {
                node: 0,
                dir: dir(Dim::X, Sign::Plus),
                fail_at: 700,
                recover_at: Some(1400),
            },
            LinkFault {
                node: 21,
                dir: dir(Dim::Y, Sign::Minus),
                fail_at: 900,
                recover_at: Some(1600),
            },
            LinkFault {
                node: 42,
                dir: dir(Dim::Z, Sign::Plus),
                fail_at: 1158,
                recover_at: None,
            },
        ],
        nodes: vec![],
    }
}

fn run(part: Partition, mode: EngineMode, plan: &FaultPlan, oracle: bool) -> NetStats {
    let mut cfg = SimConfig::new(part);
    cfg.engine = mode;
    cfg.fault = plan.clone();
    cfg.check_invariants = oracle;
    Engine::new(cfg, uniform(&part, 4, 8))
        .run()
        .expect("soak run completes")
}

#[test]
fn fault_recovery_soak_oracle_green_and_accounting_telescopes() {
    let part: Partition = "4x4x4".parse().unwrap();
    let healthy = run(part, EngineMode::FullScan, &FaultPlan::default(), true);
    assert_eq!(healthy.dropped_by_fault, 0, "healthy runs never drop");
    assert!(
        healthy.completion_cycle > 1600,
        "the fault windows must sit inside the run; got {} cycles",
        healthy.completion_cycle
    );

    let plan = soak_plan();
    plan.validate(&part).unwrap();

    // Oracle-checked faulty run: the ledger (exactly-once delivery XOR
    // exactly-once drop, byte conservation, drop counts) is asserted
    // every cycle and at quiesce inside the engine.
    let faulty = run(part, EngineMode::FullScan, &plan, true);

    // Everything injected is either delivered or accounted to a fault.
    assert_eq!(
        faulty.packets_injected,
        faulty.packets_delivered + faulty.dropped_by_fault,
        "delivered + dropped_by_fault must telescope to injected"
    );
    assert_eq!(faulty.packets_injected, healthy.packets_injected);
    // The windows open while traffic is heavy: the run must actually have
    // exercised the drop path, not just the refusal path.
    assert!(
        faulty.dropped_by_fault > 0,
        "soak windows are placed mid-flight; expected in-flight drops"
    );

    // The three engine modes agree byte-for-byte under the same plan
    // (oracle off: the event/parallel paths are the ones being pinned).
    let full = run(part, EngineMode::FullScan, &plan, false);
    let active = run(part, EngineMode::ActiveSet, &plan, false);
    let event = run(part, EngineMode::EventDriven, &plan, false);
    assert_eq!(full, active);
    assert_eq!(full, event);
    // And the oracle never perturbs a faulty run.
    assert_eq!(full, faulty);
}

#[test]
fn node_fault_with_recovery_completes_and_accounts_drops() {
    use bgl_sim::NodeFault;
    let part: Partition = "4x4".parse().unwrap();
    let plan = FaultPlan {
        links: vec![],
        nodes: vec![NodeFault {
            rank: 5,
            fail_at: 10,
            recover_at: Some(600),
        }],
    };
    let mut cfg = SimConfig::new(part);
    cfg.fault = plan;
    cfg.check_invariants = true;
    let stats = Engine::new(cfg, uniform(&part, 2, 4))
        .run()
        .expect("traffic stranded at the dead node's edge drains after recovery");
    assert_eq!(
        stats.packets_injected,
        stats.packets_delivered + stats.dropped_by_fault
    );
    assert!(
        stats.dropped_by_fault > 0,
        "killing every link of a busy node mid-run must catch packets in flight"
    );
}

#[test]
fn permanent_node_fault_is_reported_unreachable_with_breakdown() {
    use bgl_sim::{NodeFault, SimError};
    let part: Partition = "4x4".parse().unwrap();
    let plan = FaultPlan {
        links: vec![],
        nodes: vec![NodeFault {
            rank: 5,
            fail_at: 10,
            recover_at: None,
        }],
    };
    let mut cfg = SimConfig::new(part);
    cfg.fault = plan;
    cfg.check_invariants = true;
    // Packets addressed to the isolated node that were not already in
    // flight on a dying link can be neither delivered nor dropped: the
    // run must end in Unreachable, never a silent hang, and every
    // blocking link in the breakdown must be incident to the dead node.
    match Engine::new(cfg, uniform(&part, 2, 4)).run() {
        Err(SimError::Unreachable {
            blocked_packets,
            faults,
            ..
        }) => {
            assert!(blocked_packets > 0);
            assert!(!faults.is_empty());
            for f in &faults {
                let touches_dead_node = f.node == 5
                    || part
                        .neighbor(part.coord_of(f.node), f.dir)
                        .map(|c| part.rank_of(c))
                        == Some(5);
                assert!(
                    touches_dead_node,
                    "fault {}:{} does not touch the dead node",
                    f.node, f.dir
                );
            }
        }
        other => panic!("expected Unreachable, got {other:?}"),
    }
}
