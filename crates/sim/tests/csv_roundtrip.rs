//! Parse what we print: the shared RFC-4180 reader (`bgl_sim::csv`)
//! reconstructs every [`TraceSample`] from `Trace::to_csv` output
//! exactly — floats included, because Rust's `Display` for `f64` emits
//! the shortest representation that parses back to the same bits. The
//! parser itself is exercised on the quoting edge cases the trace CSV
//! never needs (quoted commas, escaped quotes, embedded CRLF) so it
//! stays an honest RFC-4180 implementation rather than a split-on-comma.

use bgl_sim::csv::parse as parse_csv;
use bgl_sim::{OccStat, Trace, TraceSample};

/// Rebuild one sample from a parsed CSV row, pinning the column order of
/// `Trace::to_csv` (each `OccStat` expands to a mean,max cell pair).
fn sample_from_row(cells: &[String]) -> TraceSample {
    assert_eq!(cells.len(), 34, "row width must match the schema");
    let u = |i: usize| -> u64 { cells[i].parse().expect("u64 cell") };
    let f = |i: usize| -> f64 { cells[i].parse().expect("f64 cell") };
    let occ = |i: usize| OccStat {
        mean_chunks: f(i),
        max_chunks: cells[i + 1].parse().expect("u32 cell"),
    };
    TraceSample {
        cycle: u(0),
        link_busy_delta: vec![u(1), u(2), u(3)],
        hops_delta: vec![u(4), u(5), u(6)],
        cpu_busy_delta: f(7),
        reception_stall_delta: u(8),
        injected_delta: u(9),
        delivered_delta: u(10),
        pacing_blocked_delta: u(11),
        credit_blocked_delta: u(12),
        packets_in_flight: u(13),
        pending_sends: u(14),
        dyn_vc_occupancy: vec![occ(15), occ(17), occ(19)],
        bubble_vc_occupancy: vec![occ(21), occ(23), occ(25)],
        inj_occupancy: occ(27),
        reception_occupancy: occ(29),
        hol_blocked_heads: u(31),
        phase1_in_flight: u(32),
        phase2_in_flight: u(33),
    }
}

fn roundtrip(trace: &Trace) -> Trace {
    let rows = parse_csv(&trace.to_csv());
    assert!(!rows.is_empty(), "header row expected");
    assert_eq!(rows[0][0], "cycle", "header first column");
    Trace {
        interval_cycles: trace.interval_cycles,
        samples: rows[1..].iter().map(|r| sample_from_row(r)).collect(),
        truncated: trace.truncated,
    }
}

/// A cheap deterministic stream for sample fields.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

/// Dividing by small odd constants produces floats with long decimal
/// expansions, the hard case for print/parse exactness.
fn lcg_f64(state: &mut u64, div: u64) -> f64 {
    (lcg(state) % (1 << 20)) as f64 / div as f64
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(48))]

    /// Random traces survive print → parse exactly, floats included.
    #[test]
    fn trace_csv_round_trips(
        n in 0usize..6,
        interval in 1u64..5000,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut s = seed;
        let occ = |s: &mut u64, div: u64| OccStat {
            mean_chunks: lcg_f64(s, div),
            max_chunks: (lcg(s) % 512) as u32,
        };
        let samples: Vec<TraceSample> = (0..n)
            .map(|i| TraceSample {
                cycle: i as u64 * interval + lcg(&mut s) % interval.max(1),
                link_busy_delta: vec![lcg(&mut s), lcg(&mut s), lcg(&mut s)],
                hops_delta: vec![lcg(&mut s), lcg(&mut s), lcg(&mut s)],
                cpu_busy_delta: lcg_f64(&mut s, 7),
                reception_stall_delta: lcg(&mut s),
                injected_delta: lcg(&mut s),
                delivered_delta: lcg(&mut s),
                pacing_blocked_delta: lcg(&mut s),
                credit_blocked_delta: lcg(&mut s),
                packets_in_flight: lcg(&mut s),
                pending_sends: lcg(&mut s),
                dyn_vc_occupancy: vec![occ(&mut s, 3), occ(&mut s, 11), occ(&mut s, 13)],
                bubble_vc_occupancy: vec![occ(&mut s, 17), occ(&mut s, 19), occ(&mut s, 23)],
                inj_occupancy: occ(&mut s, 29),
                reception_occupancy: occ(&mut s, 31),
                hol_blocked_heads: lcg(&mut s),
                phase1_in_flight: lcg(&mut s),
                phase2_in_flight: lcg(&mut s),
            })
            .collect();
        let trace = Trace { interval_cycles: interval, samples, truncated: n % 2 == 0 };
        proptest::prop_assert_eq!(roundtrip(&trace), trace);
    }
}

/// A real engine run's trace round-trips too (integration of schema,
/// writer and reader on organically produced values).
#[test]
fn engine_trace_round_trips() {
    use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig, TraceConfig};
    let part: bgl_torus::Partition = "4x2x2".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.trace = Some(TraceConfig::every(64));
    let p = part.num_nodes();
    let programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .map(|d| SendSpec::adaptive(d, 8, 240))
                .collect();
            Box::new(ScriptedProgram::new(sends, p as u64 - 1)) as Box<dyn NodeProgram>
        })
        .collect();
    let mut engine = Engine::new(cfg, programs);
    engine.run().expect("run completes");
    let trace = engine.take_trace().expect("trace recorded");
    assert!(!trace.samples.is_empty());
    assert_eq!(roundtrip(&trace), trace);
}

// ---- The parser itself, on quoting edge cases the trace CSV avoids ----

#[test]
fn parser_handles_quoted_commas() {
    let rows = parse_csv("a,\"b,c\",d\r\n");
    assert_eq!(rows, vec![vec!["a", "b,c", "d"]]);
}

#[test]
fn parser_handles_escaped_quotes() {
    let rows = parse_csv("\"he said \"\"hi\"\"\",2\r\n");
    assert_eq!(rows, vec![vec!["he said \"hi\"", "2"]]);
}

#[test]
fn parser_handles_crlf_inside_quotes() {
    let rows = parse_csv("\"line1\r\nline2\",x\r\nnext,row\r\n");
    assert_eq!(rows, vec![vec!["line1\r\nline2", "x"], vec!["next", "row"]]);
}

#[test]
fn parser_handles_empty_cells_and_final_row_without_newline() {
    let rows = parse_csv("a,,b\r\nc,d,");
    assert_eq!(rows, vec![vec!["a", "", "b"], vec!["c", "d", ""]]);
}
