//! The invariant oracle (`SimConfig::check_invariants`): runs green on
//! random configurations in all three engine modes, never perturbs results,
//! composes with tracing, and tolerates error paths (a stalled run
//! reports its watchdog error rather than a spurious quiesce violation).

use bgl_sim::{
    Engine, EngineMode, NodeProgram, ScriptedProgram, SendSpec, SimConfig, SimError, TraceConfig,
};
use bgl_torus::Partition;

fn uniform(part: &Partition, k: u64, chunks: u8, deterministic: bool) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| {
                        if deterministic {
                            SendSpec::deterministic(d, chunks, chunks as u32 * 30)
                        } else {
                            SendSpec::adaptive(d, chunks, chunks as u32 * 30)
                        }
                    })
                })
                .collect();
            let expect = (p as u64 - 1) * k;
            Box::new(ScriptedProgram::new(sends, expect)) as Box<dyn NodeProgram>
        })
        .collect()
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(24))]

    /// Random shapes × routing modes × FIFO depths × all three engine
    /// modes: the
    /// oracle's conservation sweeps stay green end-to-end, and enabling
    /// them changes nothing observable.
    #[test]
    fn oracle_green_and_non_perturbing(
        shape_i in 0usize..4,
        vc_chunks in 16u32..128,
        deterministic in proptest::arbitrary::any::<bool>(),
        engine_i in 0usize..EngineMode::ALL.len(),
    ) {
        let shapes = ["4x4", "4x2x2", "8x1x1", "3x3x2"];
        let part: Partition = shapes[shape_i].parse().unwrap();
        let mut cfg = SimConfig::new(part);
        cfg.router.vc_fifo_chunks = vc_chunks;
        cfg.engine = EngineMode::ALL[engine_i];
        let plain = Engine::new(cfg.clone(), uniform(&part, 2, 8, deterministic))
            .run()
            .expect("plain run completes");
        cfg.check_invariants = true;
        let checked = Engine::new(cfg, uniform(&part, 2, 8, deterministic))
            .run()
            .expect("oracle-checked run completes");
        proptest::prop_assert_eq!(plain, checked);
    }
}

/// The oracle composes with tracing: all three observers (active-set
/// engine, tracer, oracle) agree with the bare run.
#[test]
fn oracle_composes_with_tracing() {
    let part: Partition = "4x2x2".parse().unwrap();
    let cfg = SimConfig::new(part);
    let plain = Engine::new(cfg.clone(), uniform(&part, 2, 8, false))
        .run()
        .expect("plain run completes");
    let mut cfg = cfg;
    cfg.check_invariants = true;
    cfg.trace = Some(TraceConfig::every(64));
    let mut engine = Engine::new(cfg, uniform(&part, 2, 8, false));
    let stats = engine.run().expect("checked traced run completes");
    let trace = engine.take_trace().expect("trace recorded");
    assert_eq!(plain, stats);
    assert_eq!(trace.link_busy_totals(), stats.link_busy_chunks);
}

/// A stalled run must surface the watchdog error, not an oracle panic:
/// the per-cycle checks hold right up to the stall and the quiesce sweep
/// only runs on successful completion.
#[test]
fn oracle_reports_stall_not_false_violation() {
    let part: Partition = "2x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 200;
    cfg.check_invariants = true;
    // Node 1 expects packets nobody sends.
    let programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(ScriptedProgram::idle()),
        Box::new(ScriptedProgram::new(vec![], 3)),
    ];
    match Engine::new(cfg, programs).run() {
        Err(SimError::Stalled { .. }) => {}
        other => panic!("expected stall, got {other:?}"),
    }
}
