//! Regression tests for the event-driven engine's hard corners: the
//! closed-form replay of per-cycle blocked counters under rate pacing,
//! credit stop-and-wait wake-ups (the ack is itself a packet), tracer
//! sample boundaries that do not divide the skip intervals, and the
//! watchdog firing at the same cycle whether or not cycles were stepped.
//!
//! Each test pins the event-driven engine byte-for-byte against the
//! full-scan reference and the active-set engine on a workload that
//! specifically exercises the skip-ahead machinery.

use std::collections::VecDeque;

use bgl_sim::{
    Engine, EngineMode, FlowSpec, NetStats, NodeApi, NodeProgram, Packet, PacketMeta, PollHint,
    ScriptedProgram, SendSpec, SimConfig, SimError, Trace, TraceConfig,
};
use bgl_torus::Partition;

/// Run the same workload under every [`EngineMode`]; assert byte-equal
/// `NetStats` and return the full-scan reference.
fn run_all_modes(cfg: &SimConfig, programs: impl Fn() -> Vec<Box<dyn NodeProgram>>) -> NetStats {
    let mut reference: Option<NetStats> = None;
    for mode in EngineMode::ALL {
        let mut c = cfg.clone();
        c.engine = mode;
        let stats = Engine::new(c, programs())
            .run()
            .unwrap_or_else(|e| panic!("{mode} run completes: {e}"));
        match &reference {
            None => reference = Some(stats),
            Some(r) => assert_eq!(&stats, r, "{mode} must match full-scan"),
        }
    }
    reference.expect("full-scan ran")
}

/// Sparse streams on an idle partition: the event engine's best case.
fn stream_programs(part: &Partition, packets: u64) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
        .collect();
    for (src, dst) in [(0u32, p - 1), (1, p / 2)] {
        programs[src as usize] = Box::new(ScriptedProgram::new(
            (0..packets)
                .map(|_| SendSpec::adaptive(dst, 8, 240))
                .collect(),
            0,
        ));
        programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], packets));
    }
    programs
}

/// Rate pacing makes `pacing_blocked_cycles` a per-cycle counter; in
/// event mode those cycles are skipped and replayed in closed form, so
/// any off-by-one in the replay window shows up as a counter mismatch.
#[test]
fn rate_paced_streams_replay_blocked_cycles_exactly() {
    let part: Partition = "8x4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.flow = FlowSpec::Rate {
        chunks_per_cycle: 1.0 / 64.0,
    };
    let reference = run_all_modes(&cfg, || stream_programs(&part, 24));
    assert!(
        reference.pacing_blocked_cycles > 0,
        "rate window must actually block: {reference:?}"
    );
    assert_eq!(reference.packets_delivered, 48);
}

/// Stop-and-wait source: one outstanding packet toward `dst`, each
/// acknowledged by a credit packet the sink sends back. Declines only
/// while the window is closed, which a delivery (the ack) reopens.
struct StopAndWaitSource {
    dst: u32,
    total: u32,
    sent: u32,
    acks: u32,
}

const KIND_ACK: u8 = 9;

impl NodeProgram for StopAndWaitSource {
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if self.sent >= self.total || !api.try_acquire_credit(self.dst) {
            return None;
        }
        self.sent += 1;
        Some(SendSpec::adaptive(self.dst, 8, 240))
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        if pkt.meta.kind == KIND_ACK {
            api.apply_credit(pkt.src_rank, pkt.meta.a);
            self.acks += 1;
        }
    }

    fn is_complete(&self) -> bool {
        self.sent >= self.total && self.acks >= self.total
    }
}

/// The sink half: counts data packets and queues one credit packet back
/// per receipt (window 1, ack every 1).
struct AckingSink {
    expect: u64,
    received: u64,
    pending: VecDeque<SendSpec>,
}

impl NodeProgram for AckingSink {
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }

    fn next_send(&mut self, _api: &mut NodeApi<'_>) -> Option<SendSpec> {
        self.pending.pop_front()
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        if pkt.meta.kind != KIND_ACK {
            self.received += 1;
            if let Some(n) = api.credit_receipt(pkt.src_rank) {
                let mut ack = SendSpec::adaptive(pkt.src_rank, 1, 1);
                ack.meta = PacketMeta {
                    kind: KIND_ACK,
                    a: n,
                    b: api.rank,
                };
                self.pending.push_back(ack);
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.received >= self.expect && self.pending.is_empty()
    }
}

/// Credit stop-and-wait is the hardest wake-up case: the source sleeps
/// with a closed window and *must* be woken by the ack delivery, while
/// `credit_blocked_events` accrues per denial per cycle — replayed in
/// closed form across skipped intervals.
#[test]
fn credit_stop_and_wait_matches_across_modes() {
    let part: Partition = "8x4x4".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.flow = FlowSpec::Credit {
        window_packets: 1,
        credit_every: 1,
    };
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        programs[0] = Box::new(StopAndWaitSource {
            dst: p - 1,
            total: 12,
            sent: 0,
            acks: 0,
        });
        programs[(p - 1) as usize] = Box::new(AckingSink {
            expect: 12,
            received: 0,
            pending: VecDeque::new(),
        });
        programs
    };
    let reference = run_all_modes(&cfg, programs);
    assert!(
        reference.credit_blocked_events > 0,
        "window of 1 must block between ack round-trips: {reference:?}"
    );
    // 12 data packets one way, 12 acks back.
    assert_eq!(reference.packets_delivered, 24);
}

/// A sampling interval that divides nothing forces the event engine to
/// segment every skip at tracer boundaries; the recorded series must be
/// identical to the cycle-stepped engines', sample for sample.
#[test]
fn traced_odd_interval_produces_identical_series() {
    let part: Partition = "8x4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.flow = FlowSpec::Rate {
        chunks_per_cycle: 1.0 / 32.0,
    };
    cfg.trace = Some(TraceConfig::every(7));
    let mut reference: Option<(NetStats, Trace)> = None;
    for mode in EngineMode::ALL {
        let mut c = cfg.clone();
        c.engine = mode;
        let mut engine = Engine::new(c, stream_programs(&part, 16));
        let stats = engine.run().unwrap_or_else(|e| panic!("{mode}: {e}"));
        let trace = engine.take_trace().expect("trace recorded");
        match &reference {
            None => reference = Some((stats, trace)),
            Some((r_stats, r_trace)) => {
                assert_eq!(&stats, r_stats, "{mode} stats");
                assert_eq!(&trace, r_trace, "{mode} trace series");
            }
        }
    }
}

/// Pin the link-release wake edge: `link_busy_until == now` means the
/// link was busy *through the previous cycle* and is usable this cycle,
/// so `arb_wake` must wake at exactly `busy_until`, not one later. A
/// back-to-back stream over a single link is paced purely by that edge —
/// one win every `chunks` cycles — so an off-by-one would delay every
/// subsequent win and shift the completion cycle visibly.
#[test]
fn link_release_edge_wakes_exactly_on_busy_until() {
    let part: Partition = "8x1x1".parse().unwrap();
    let cfg = SimConfig::new(part);
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..8)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        programs[0] = Box::new(ScriptedProgram::new(
            (0..16).map(|_| SendSpec::adaptive(1, 8, 240)).collect(),
            0,
        ));
        programs[1] = Box::new(ScriptedProgram::new(vec![], 16));
        programs
    };
    let reference = run_all_modes(&cfg, programs);
    assert_eq!(reference.packets_delivered, 16);
    // 16 packets × 8 chunks back-to-back over one link: the stream must
    // sustain one win per 8 cycles, so completion stays close to the
    // 128-cycle serialization floor. A wake-edge off-by-one adds a cycle
    // per packet and pushes this past the bound.
    assert!(
        reference.completion_cycle < 128 + 24,
        "link must go back-to-back at the busy_until edge: completed at {}",
        reference.completion_cycle
    );
}

/// Pin the watchdog clamp in `fast_forward`: with a *timed* wake far
/// beyond the watchdog horizon (a rate window that re-opens after tens
/// of thousands of cycles), the event engine must not jump past
/// `last_progress + watchdog_cycles + 1` — unclamped it would sail to
/// the rate wake, send the second packet, and *complete* instead of
/// reporting the same stall the cycle-stepped engines see.
#[test]
fn watchdog_clamps_skips_with_a_distant_timed_wake() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 300;
    cfg.flow = FlowSpec::Rate {
        chunks_per_cycle: 1.0 / 4096.0, // next_allowed jumps ~32k cycles per 8-chunk send
    };
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..16)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        programs[0] = Box::new(ScriptedProgram::new(
            (0..2).map(|_| SendSpec::adaptive(15, 8, 240)).collect(),
            0,
        ));
        programs[15] = Box::new(ScriptedProgram::new(vec![], 2));
        programs
    };
    let mut reference: Option<SimError> = None;
    for mode in EngineMode::ALL {
        let mut c = cfg.clone();
        c.engine = mode;
        let err = Engine::new(c, programs())
            .run()
            .expect_err("rate window far exceeds the watchdog: run must stall");
        match (&err, &reference) {
            (SimError::Stalled { cycle, .. }, None) => {
                // The stepped engines fire at the first cycle with
                // now − last_progress > watchdog_cycles; the clamp must
                // hold the event engine to the same horizon.
                assert!(
                    *cycle < 1000,
                    "{mode}: stall must fire near the watchdog horizon, not the rate wake \
                     (cycle {cycle})"
                );
                reference = Some(err);
            }
            (_, None) => panic!("{mode}: expected a stall, got {err}"),
            (_, Some(r)) => assert_eq!(&err, r, "{mode} must stall identically"),
        }
    }
}

/// A deadlocked workload must stall at the same watchdog cycle in every
/// mode: the event engine may never skip past `last_progress +
/// watchdog_cycles`, or the error (and its cycle stamp) would drift.
#[test]
fn watchdog_fires_at_the_same_cycle_in_event_mode() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 500;
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..16)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        // Node 5 waits for packets nobody sends, forever.
        programs[5] = Box::new(ScriptedProgram::new(vec![], 3));
        programs
    };
    let mut reference: Option<SimError> = None;
    for mode in EngineMode::ALL {
        let mut c = cfg.clone();
        c.engine = mode;
        let err = Engine::new(c, programs())
            .run()
            .expect_err("run must stall");
        assert!(matches!(err, SimError::Stalled { .. }), "{mode}: {err}");
        match &reference {
            None => reference = Some(err),
            Some(r) => assert_eq!(&err, r, "{mode} must stall identically"),
        }
    }
}
