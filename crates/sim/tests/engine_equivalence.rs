//! The active-set and event-driven engines must be pure optimizations:
//! for any workload, every statistic they produce — cycle counts,
//! histograms, per-link counters — is byte-identical to the reference
//! full-scan engine (see [`EngineMode`]).

use bgl_sim::{
    Engine, EngineMode, NetStats, NodeProgram, PerfConfig, ScriptedProgram, SendSpec, SimConfig,
};
use bgl_torus::Partition;
use std::num::NonZeroUsize;

fn uniform(part: &Partition, k: u64, chunks: u8, deterministic: bool) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| {
                        if deterministic {
                            SendSpec::deterministic(d, chunks, chunks as u32 * 30)
                        } else {
                            SendSpec::adaptive(d, chunks, chunks as u32 * 30)
                        }
                    })
                })
                .collect();
            let expect = (p as u64 - 1) * k;
            Box::new(ScriptedProgram::new(sends, expect)) as Box<dyn NodeProgram>
        })
        .collect()
}

/// Run the same workload under every [`EngineMode`] and assert all three
/// `NetStats` are byte-identical; returns the reference (full-scan) stats.
fn run_all_modes(cfg: &SimConfig, programs: impl Fn() -> Vec<Box<dyn NodeProgram>>) -> NetStats {
    let mut results = EngineMode::ALL.map(|mode| {
        let mut c = cfg.clone();
        c.engine = mode;
        Some(
            Engine::new(c, programs())
                .run()
                .unwrap_or_else(|e| panic!("{mode} run completes: {e}")),
        )
    });
    let reference = results[0].take().expect("full-scan ran");
    for (mode, got) in EngineMode::ALL.iter().zip(&results).skip(1) {
        assert_eq!(
            got.as_ref().expect("ran"),
            &reference,
            "{mode} must match full-scan"
        );
    }
    reference
}

/// Scripted all-to-alls across symmetric and asymmetric shapes, adaptive
/// and deterministic routing, sparse and saturating load: identical stats.
#[test]
fn scripted_workloads_match_across_modes() {
    let grid: [(&str, u64, u8, bool); 5] = [
        ("4x4x4", 1, 8, false), // symmetric, one round, adaptive
        ("8x4x4", 4, 8, false), // asymmetric, saturating, adaptive
        ("8x4x4", 2, 8, true),  // asymmetric, deterministic (bubble VC)
        ("8x1x1", 8, 8, false), // ring
        ("4x3x2", 1, 2, false), // odd shape, small packets
    ];
    for (shape, k, chunks, det) in grid {
        let part: Partition = shape.parse().unwrap();
        let cfg = SimConfig::new(part);
        run_all_modes(&cfg, || uniform(&part, k, chunks, det));
    }
}

/// Extremely sparse traffic — the regime the active sets and event skips
/// exist for — with detailed per-link stats enabled so the comparison
/// covers every counter.
#[test]
fn sparse_point_traffic_matches_across_modes() {
    let part: Partition = "8x8x4".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.detailed_link_stats = true;
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        // Three long streams in an otherwise silent partition (all six
        // endpoints distinct).
        let pairs = [(0u32, p - 1), (1, p - 2), (p / 2, 2)];
        for (src, dst) in pairs {
            programs[src as usize] = Box::new(ScriptedProgram::new(
                (0..20).map(|_| SendSpec::adaptive(dst, 8, 240)).collect(),
                0,
            ));
            programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], 20));
        }
        programs
    };
    let reference = run_all_modes(&cfg, programs);
    assert_eq!(reference.packets_delivered, 60);
    assert!(
        !reference.link_busy_per_link.is_empty(),
        "detailed stats compared"
    );
}

/// Pinned shard-count grid: the same workloads under every engine mode ×
/// shard count in {1, 2, 4, 7} (even splits and a prime that leaves
/// uneven slabs) must produce one byte-identical `NetStats`. This is the
/// committed regression for the sharded engine's ordering guarantees —
/// staged-arrival drain order, the section-B id fix-up, deferred credit
/// releases — independent of the randomized fuzzer.
#[test]
fn shard_counts_are_invisible() {
    let grid: [(&str, u64, u8, bool); 3] = [
        ("8x4x4", 2, 8, false), // asymmetric, saturating, adaptive
        ("4x4x4", 1, 4, true),  // symmetric, deterministic (bubble VC)
        ("4x3x2", 1, 2, false), // odd shape: 7 shards > 24/7 nodes each
    ];
    for (shape, k, chunks, det) in grid {
        let part: Partition = shape.parse().unwrap();
        let mut reference: Option<NetStats> = None;
        for shards in [1usize, 2, 4, 7] {
            for mode in EngineMode::ALL {
                let mut cfg = SimConfig::new(part);
                cfg.engine = mode;
                cfg.shards = NonZeroUsize::new(shards).unwrap();
                cfg.detailed_link_stats = true;
                let stats = Engine::new(cfg, uniform(&part, k, chunks, det))
                    .run()
                    .unwrap_or_else(|e| panic!("{shape} shards={shards} {mode}: {e}"));
                match &reference {
                    None => reference = Some(stats),
                    Some(r) => {
                        assert_eq!(&stats, r, "{shape} shards={shards} {mode} must match");
                    }
                }
            }
        }
    }
}

/// The invariant oracle must hold on a sharded engine too (it forces the
/// sharded structure onto one thread and additionally checks per-cell
/// credit conservation every cycle), and its presence must not change
/// results.
#[test]
fn sharded_run_passes_the_oracle() {
    let part: Partition = "8x4x4".parse().unwrap();
    let mut reference: Option<NetStats> = None;
    for (shards, check) in [(1, false), (1, true), (4, true), (7, true)] {
        let mut cfg = SimConfig::new(part);
        cfg.shards = NonZeroUsize::new(shards).unwrap();
        cfg.check_invariants = check;
        let stats = Engine::new(cfg, uniform(&part, 2, 8, false))
            .run()
            .unwrap_or_else(|e| panic!("shards={shards} oracle={check}: {e}"));
        match &reference {
            None => reference = Some(stats),
            Some(r) => assert_eq!(&stats, r, "shards={shards} oracle={check} must match"),
        }
    }
}

/// Host profiling must be provably non-perturbing: the same workload with
/// `SimConfig::perf` on and off, across every engine mode × shard count
/// in {1, 4}, produces byte-identical `NetStats` — and the collected
/// profile is internally consistent (every stepped cycle classified as
/// wide or inline, one record per shard, event counters present exactly
/// in event mode, per-shard busy time bounded by the run's wall-clock;
/// wall-clock bounds are deliberately loose upper bounds — threaded
/// shards time in parallel, so only gross misattribution would trip
/// them).
#[test]
fn perf_profiling_is_invisible_and_consistent() {
    let grid: [(&str, u64, u8, bool); 2] = [
        ("8x4x4", 2, 8, false), // asymmetric, saturating, adaptive
        ("4x3x2", 1, 2, true),  // odd shape, deterministic (bubble VC)
    ];
    for (shape, k, chunks, det) in grid {
        let part: Partition = shape.parse().unwrap();
        for shards in [1usize, 4] {
            for mode in EngineMode::ALL {
                let mut cfg = SimConfig::new(part);
                cfg.engine = mode;
                cfg.shards = NonZeroUsize::new(shards).unwrap();
                cfg.detailed_link_stats = true;
                let plain = Engine::new(cfg.clone(), uniform(&part, k, chunks, det))
                    .run()
                    .unwrap_or_else(|e| panic!("{shape} shards={shards} {mode} plain: {e}"));
                cfg.perf = Some(PerfConfig::default());
                let mut engine = Engine::new(cfg, uniform(&part, k, chunks, det));
                let profiled = engine
                    .run()
                    .unwrap_or_else(|e| panic!("{shape} shards={shards} {mode} profiled: {e}"));
                assert_eq!(
                    profiled, plain,
                    "{shape} shards={shards} {mode}: --perf must not perturb NetStats"
                );
                let p = engine.take_perf().expect("profile collected");
                let ctx = format!("{shape} shards={shards} {mode}");
                assert_eq!(
                    p.wide_cycles + p.inline_cycles,
                    p.stepped_cycles,
                    "{ctx}: every stepped cycle is wide or inline"
                );
                assert!(p.stepped_cycles > 0, "{ctx}: cycles were stepped");
                assert_eq!(p.shards.len(), shards, "{ctx}: one record per shard");
                assert_eq!(
                    p.event.is_some(),
                    mode == EngineMode::EventDriven,
                    "{ctx}: event counters iff event mode"
                );
                assert!(p.total_secs > 0.0, "{ctx}: wall-clock measured");
                assert!(
                    p.active_occupancy_mean <= p.active_occupancy_max as f64,
                    "{ctx}: occupancy mean bounded by max"
                );
                // Loose timing sanity: phase laps are disjoint slices of
                // each shard thread's time, so no shard's busy total can
                // (grossly) exceed the whole run's wall-clock. A little
                // slack absorbs clock quantization on near-zero laps.
                let slack = 1e-3 + p.total_secs;
                for (i, s) in p.shards.iter().enumerate() {
                    assert!(
                        s.busy_secs() <= slack,
                        "{ctx}: shard {i} busy {} vs total {}",
                        s.busy_secs(),
                        p.total_secs
                    );
                }
                // Outside event mode every stepped cycle's work happens
                // inside a timed phase lap, so the phase sum must account
                // for the bulk of the wall-clock (10 % is far below the
                // ~90 % seen in practice; event mode spends its time in
                // fast-forward, which is deliberately not a phase).
                if mode != EngineMode::EventDriven {
                    assert!(
                        p.busy_secs() >= 0.1 * p.total_secs,
                        "{ctx}: phases sum to {} of total {}",
                        p.busy_secs(),
                        p.total_secs
                    );
                }
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(12))]

    /// Randomized equivalence fuzzer with a perf on/off dimension: any
    /// (shape, routing, engine mode, shard count, perf) cell must match
    /// the byte-identical reference stats of its perf-off sibling.
    #[test]
    fn fuzzed_configs_match_with_and_without_perf(
        shape_i in 0usize..4,
        deterministic in proptest::arbitrary::any::<bool>(),
        engine_i in 0usize..EngineMode::ALL.len(),
        shards_i in 0usize..3,
        perf in proptest::arbitrary::any::<bool>(),
    ) {
        let shapes = ["4x4", "4x2x2", "8x1x1", "3x3x2"];
        let part: Partition = shapes[shape_i].parse().unwrap();
        let mut cfg = SimConfig::new(part);
        cfg.engine = EngineMode::ALL[engine_i];
        cfg.shards = NonZeroUsize::new([1usize, 2, 4][shards_i]).unwrap();
        let reference = Engine::new(cfg.clone(), uniform(&part, 1, 4, deterministic))
            .run()
            .expect("reference run completes");
        cfg.perf = perf.then(PerfConfig::default);
        let got = Engine::new(cfg, uniform(&part, 1, 4, deterministic))
            .run()
            .expect("run completes");
        proptest::prop_assert_eq!(got, reference);
    }
}

/// Backpressure corner: a hot sink with a tiny reception FIFO exercises
/// blocked-delivery retries and CPU re-activation; stats stay identical.
#[test]
fn hotspot_backpressure_matches_across_modes() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.reception_fifo_chunks = 8;
    cfg.cpu.chunks_per_cycle = 0.5;
    let programs = || {
        (0..16u32)
            .map(|r| {
                if r == 0 {
                    Box::new(ScriptedProgram::new(vec![], 15 * 10)) as Box<dyn NodeProgram>
                } else {
                    Box::new(ScriptedProgram::new(
                        (0..10).map(|_| SendSpec::adaptive(0, 8, 240)).collect(),
                        0,
                    ))
                }
            })
            .collect()
    };
    let reference = run_all_modes(&cfg, programs);
    assert!(reference.reception_stall_events > 0);
}
