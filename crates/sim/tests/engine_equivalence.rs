//! The active-set and event-driven engines must be pure optimizations:
//! for any workload, every statistic they produce — cycle counts,
//! histograms, per-link counters — is byte-identical to the reference
//! full-scan engine (see [`EngineMode`]).

use bgl_sim::{Engine, EngineMode, NetStats, NodeProgram, ScriptedProgram, SendSpec, SimConfig};
use bgl_torus::Partition;
use std::num::NonZeroUsize;

fn uniform(part: &Partition, k: u64, chunks: u8, deterministic: bool) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| {
                        if deterministic {
                            SendSpec::deterministic(d, chunks, chunks as u32 * 30)
                        } else {
                            SendSpec::adaptive(d, chunks, chunks as u32 * 30)
                        }
                    })
                })
                .collect();
            let expect = (p as u64 - 1) * k;
            Box::new(ScriptedProgram::new(sends, expect)) as Box<dyn NodeProgram>
        })
        .collect()
}

/// Run the same workload under every [`EngineMode`] and assert all three
/// `NetStats` are byte-identical; returns the reference (full-scan) stats.
fn run_all_modes(cfg: &SimConfig, programs: impl Fn() -> Vec<Box<dyn NodeProgram>>) -> NetStats {
    let mut results = EngineMode::ALL.map(|mode| {
        let mut c = cfg.clone();
        c.engine = mode;
        Some(
            Engine::new(c, programs())
                .run()
                .unwrap_or_else(|e| panic!("{mode} run completes: {e}")),
        )
    });
    let reference = results[0].take().expect("full-scan ran");
    for (mode, got) in EngineMode::ALL.iter().zip(&results).skip(1) {
        assert_eq!(
            got.as_ref().expect("ran"),
            &reference,
            "{mode} must match full-scan"
        );
    }
    reference
}

/// Scripted all-to-alls across symmetric and asymmetric shapes, adaptive
/// and deterministic routing, sparse and saturating load: identical stats.
#[test]
fn scripted_workloads_match_across_modes() {
    let grid: [(&str, u64, u8, bool); 5] = [
        ("4x4x4", 1, 8, false), // symmetric, one round, adaptive
        ("8x4x4", 4, 8, false), // asymmetric, saturating, adaptive
        ("8x4x4", 2, 8, true),  // asymmetric, deterministic (bubble VC)
        ("8", 8, 8, false),     // ring
        ("4x3x2", 1, 2, false), // odd shape, small packets
    ];
    for (shape, k, chunks, det) in grid {
        let part: Partition = shape.parse().unwrap();
        let cfg = SimConfig::new(part);
        run_all_modes(&cfg, || uniform(&part, k, chunks, det));
    }
}

/// Extremely sparse traffic — the regime the active sets and event skips
/// exist for — with detailed per-link stats enabled so the comparison
/// covers every counter.
#[test]
fn sparse_point_traffic_matches_across_modes() {
    let part: Partition = "8x8x4".parse().unwrap();
    let p = part.num_nodes();
    let mut cfg = SimConfig::new(part);
    cfg.detailed_link_stats = true;
    let programs = || {
        let mut programs: Vec<Box<dyn NodeProgram>> = (0..p)
            .map(|_| Box::new(ScriptedProgram::idle()) as Box<dyn NodeProgram>)
            .collect();
        // Three long streams in an otherwise silent partition (all six
        // endpoints distinct).
        let pairs = [(0u32, p - 1), (1, p - 2), (p / 2, 2)];
        for (src, dst) in pairs {
            programs[src as usize] = Box::new(ScriptedProgram::new(
                (0..20).map(|_| SendSpec::adaptive(dst, 8, 240)).collect(),
                0,
            ));
            programs[dst as usize] = Box::new(ScriptedProgram::new(vec![], 20));
        }
        programs
    };
    let reference = run_all_modes(&cfg, programs);
    assert_eq!(reference.packets_delivered, 60);
    assert!(
        !reference.link_busy_per_link.is_empty(),
        "detailed stats compared"
    );
}

/// Pinned shard-count grid: the same workloads under every engine mode ×
/// shard count in {1, 2, 4, 7} (even splits and a prime that leaves
/// uneven slabs) must produce one byte-identical `NetStats`. This is the
/// committed regression for the sharded engine's ordering guarantees —
/// staged-arrival drain order, the section-B id fix-up, deferred credit
/// releases — independent of the randomized fuzzer.
#[test]
fn shard_counts_are_invisible() {
    let grid: [(&str, u64, u8, bool); 3] = [
        ("8x4x4", 2, 8, false), // asymmetric, saturating, adaptive
        ("4x4x4", 1, 4, true),  // symmetric, deterministic (bubble VC)
        ("4x3x2", 1, 2, false), // odd shape: 7 shards > 24/7 nodes each
    ];
    for (shape, k, chunks, det) in grid {
        let part: Partition = shape.parse().unwrap();
        let mut reference: Option<NetStats> = None;
        for shards in [1usize, 2, 4, 7] {
            for mode in EngineMode::ALL {
                let mut cfg = SimConfig::new(part);
                cfg.engine = mode;
                cfg.shards = NonZeroUsize::new(shards).unwrap();
                cfg.detailed_link_stats = true;
                let stats = Engine::new(cfg, uniform(&part, k, chunks, det))
                    .run()
                    .unwrap_or_else(|e| panic!("{shape} shards={shards} {mode}: {e}"));
                match &reference {
                    None => reference = Some(stats),
                    Some(r) => {
                        assert_eq!(&stats, r, "{shape} shards={shards} {mode} must match");
                    }
                }
            }
        }
    }
}

/// The invariant oracle must hold on a sharded engine too (it forces the
/// sharded structure onto one thread and additionally checks per-cell
/// credit conservation every cycle), and its presence must not change
/// results.
#[test]
fn sharded_run_passes_the_oracle() {
    let part: Partition = "8x4x4".parse().unwrap();
    let mut reference: Option<NetStats> = None;
    for (shards, check) in [(1, false), (1, true), (4, true), (7, true)] {
        let mut cfg = SimConfig::new(part);
        cfg.shards = NonZeroUsize::new(shards).unwrap();
        cfg.check_invariants = check;
        let stats = Engine::new(cfg, uniform(&part, 2, 8, false))
            .run()
            .unwrap_or_else(|e| panic!("shards={shards} oracle={check}: {e}"));
        match &reference {
            None => reference = Some(stats),
            Some(r) => assert_eq!(&stats, r, "shards={shards} oracle={check} must match"),
        }
    }
}

/// Backpressure corner: a hot sink with a tiny reception FIFO exercises
/// blocked-delivery retries and CPU re-activation; stats stay identical.
#[test]
fn hotspot_backpressure_matches_across_modes() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.reception_fifo_chunks = 8;
    cfg.cpu.chunks_per_cycle = 0.5;
    let programs = || {
        (0..16u32)
            .map(|r| {
                if r == 0 {
                    Box::new(ScriptedProgram::new(vec![], 15 * 10)) as Box<dyn NodeProgram>
                } else {
                    Box::new(ScriptedProgram::new(
                        (0..10).map(|_| SendSpec::adaptive(0, 8, 240)).collect(),
                        0,
                    ))
                }
            })
            .collect()
    };
    let reference = run_all_modes(&cfg, programs);
    assert!(reference.reception_stall_events > 0);
}
