//! Invariants of the time-series tracer: sample stamps are strictly
//! monotone, counter deltas telescope to the run's `NetStats` totals,
//! occupancy snapshots respect the configured FIFO capacities, and the
//! watchdog's stall error carries the trace tail.

use bgl_sim::{
    Engine, EngineMode, NodeProgram, ScriptedProgram, SendSpec, SimConfig, SimError, Trace,
    TraceConfig,
};
use bgl_torus::Partition;

fn uniform(part: &Partition, k: u64, chunks: u8, deterministic: bool) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| {
                        if deterministic {
                            SendSpec::deterministic(d, chunks, chunks as u32 * 30)
                        } else {
                            SendSpec::adaptive(d, chunks, chunks as u32 * 30)
                        }
                    })
                })
                .collect();
            let expect = (p as u64 - 1) * k;
            Box::new(ScriptedProgram::new(sends, expect)) as Box<dyn NodeProgram>
        })
        .collect()
}

fn traced_run(cfg: &SimConfig, interval: u64) -> (bgl_sim::NetStats, Trace) {
    let mut cfg = cfg.clone();
    cfg.trace = Some(TraceConfig::every(interval));
    let part = cfg.partition;
    let mut engine = Engine::new(cfg, uniform(&part, 2, 8, false));
    let stats = engine.run().expect("run completes");
    let trace = engine.take_trace().expect("trace recorded");
    (stats, trace)
}

/// Every invariant the trace schema promises, checked on one run.
fn check_invariants(cfg: &SimConfig, stats: &bgl_sim::NetStats, trace: &Trace) {
    // Monotone, strictly increasing cycle stamps; none past completion.
    for pair in trace.samples.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "stamps must increase");
    }
    if let Some(last) = trace.samples.last() {
        assert!(last.cycle <= stats.completion_cycle + 1);
    }

    // Exact telescoping of every u64 counter.
    assert_eq!(trace.link_busy_totals(), stats.link_busy_chunks);
    let mut hops = vec![0u64; stats.hops_taken.len()];
    let (mut stalls, mut injected, mut delivered, mut cpu) = (0u64, 0u64, 0u64, 0.0f64);
    for s in &trace.samples {
        for (d, h) in hops.iter_mut().enumerate() {
            *h += s.hops_delta[d];
        }
        stalls += s.reception_stall_delta;
        injected += s.injected_delta;
        delivered += s.delivered_delta;
        cpu += s.cpu_busy_delta;
    }
    assert_eq!(hops, stats.hops_taken);
    assert_eq!(stalls, stats.reception_stall_events);
    assert_eq!(injected, stats.packets_injected);
    assert_eq!(delivered, stats.packets_delivered);
    // f64 telescoping is exact up to rounding of the running sum.
    let tol = 1e-6 * stats.cpu_busy_cycles.max(1.0);
    assert!(
        (cpu - stats.cpu_busy_cycles).abs() <= tol,
        "cpu {cpu} vs {}",
        stats.cpu_busy_cycles
    );

    // Occupancies bounded by the configured capacities; mean ≤ max.
    for s in &trace.samples {
        for occ in s.dyn_vc_occupancy.iter().chain(&s.bubble_vc_occupancy) {
            assert!(occ.max_chunks <= cfg.router.vc_fifo_chunks);
            assert!(occ.mean_chunks <= occ.max_chunks as f64 + 1e-12);
            assert!(occ.mean_chunks >= 0.0);
        }
        assert!(s.inj_occupancy.max_chunks <= cfg.inj_fifo_chunks);
        assert!(s.reception_occupancy.max_chunks <= cfg.reception_fifo_chunks);
        // A quiesced network at the final sample: nothing left in flight.
        assert!(s.phase1_in_flight + s.phase2_in_flight <= s.packets_in_flight + s.pending_sends);
    }
    if let Some(last) = trace.samples.last() {
        assert_eq!(last.packets_in_flight, 0, "run completed — nothing alive");
        assert_eq!(last.hol_blocked_heads, 0);
    }
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(24))]

    /// Random shapes × FIFO depths × sampling intervals: the schema
    /// invariants hold for every configuration, in all three engine modes.
    #[test]
    fn trace_invariants_hold(
        shape_i in 0usize..4,
        interval in 1u64..2000,
        vc_chunks in 16u32..128,
        engine_i in 0usize..EngineMode::ALL.len(),
    ) {
        let shapes = ["4x4", "4x2x2", "8x1x1", "3x3x2"];
        let part: Partition = shapes[shape_i].parse().unwrap();
        let mut cfg = SimConfig::new(part);
        cfg.router.vc_fifo_chunks = vc_chunks;
        cfg.engine = EngineMode::ALL[engine_i];
        let (stats, trace) = traced_run(&cfg, interval);
        proptest::prop_assert_eq!(trace.interval_cycles, interval);
        check_invariants(&cfg, &stats, &trace);
    }
}

/// The sample cap truncates the periodic series but the forced final
/// sample still lands, so the delta sums stay exact.
#[test]
fn sample_cap_truncates_but_totals_stay_exact() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.trace = Some(TraceConfig {
        interval_cycles: 10,
        max_samples: 3,
    });
    let mut engine = Engine::new(cfg.clone(), uniform(&part, 2, 8, false));
    let stats = engine.run().expect("run completes");
    let trace = engine.take_trace().expect("trace recorded");
    assert!(trace.truncated, "cap must mark the series truncated");
    assert!(trace.samples.len() <= 4, "3 periodic + 1 forced final");
    assert_eq!(trace.link_busy_totals(), stats.link_busy_chunks);
    check_invariants(&cfg, &stats, &trace);
}

/// Tracing changes nothing observable: the exact `NetStats` equality is
/// pinned broadly in `tests/engine_equivalence.rs`; this is the minimal
/// in-crate version.
#[test]
fn tracing_does_not_perturb_stats() {
    let part: Partition = "4x2x2".parse().unwrap();
    let cfg = SimConfig::new(part);
    let plain = Engine::new(cfg.clone(), uniform(&part, 2, 8, false))
        .run()
        .expect("run completes");
    let (stats, _) = traced_run(&cfg, 128);
    assert_eq!(plain, stats);
}

/// With tracing on, the watchdog error's Display carries the last few
/// samples so a deadlock is debuggable from stderr alone.
#[test]
fn stall_error_includes_trace_tail() {
    let part: Partition = "2x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 200;
    cfg.trace = Some(TraceConfig::every(100));
    // Node 1 expects packets nobody sends.
    let programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(ScriptedProgram::idle()),
        Box::new(ScriptedProgram::new(vec![], 3)),
    ];
    match Engine::new(cfg, programs).run() {
        Err(err @ SimError::Stalled { .. }) => {
            let text = err.to_string();
            assert!(text.contains("trace cycle"), "{text}");
            assert!(text.contains("inflight"), "{text}");
        }
        other => panic!("expected stall, got {other:?}"),
    }
}

/// Without tracing, the stall error stays a single line (no tail).
#[test]
fn stall_error_without_tracing_has_no_tail() {
    let part: Partition = "2x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 200;
    let programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(ScriptedProgram::idle()),
        Box::new(ScriptedProgram::new(vec![], 3)),
    ];
    match Engine::new(cfg, programs).run() {
        Err(err @ SimError::Stalled { .. }) => {
            assert!(!err.to_string().contains('\n'), "{err}");
        }
        other => panic!("expected stall, got {other:?}"),
    }
}
