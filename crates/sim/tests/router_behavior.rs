//! Router microarchitecture behavior tests: bubble rule, escape usage,
//! backpressure, shaping, and watchdog diagnostics.

use bgl_sim::{Engine, NodeProgram, ScriptedProgram, SendSpec, SimConfig, SimError};
use bgl_torus::{Coord, Partition};

fn boxed(p: ScriptedProgram) -> Box<dyn NodeProgram> {
    Box::new(p)
}

/// Build a uniform AA program set: every node sends `k` packets of
/// `chunks` to every other node.
fn uniform(part: &Partition, k: u64, chunks: u8) -> Vec<Box<dyn NodeProgram>> {
    let p = part.num_nodes();
    (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| {
                    (0..k).map(move |_| SendSpec::adaptive(d, chunks, chunks as u32 * 30))
                })
                .collect();
            boxed(ScriptedProgram::new(sends, (p as u64 - 1) * k))
        })
        .collect()
}

/// Tight reception FIFO throttles but never wedges: heavy fan-in to one
/// node drains with a tiny reception buffer and a slow CPU.
#[test]
fn reception_backpressure_throttles_not_deadlocks() {
    let part: Partition = "4x4".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.reception_fifo_chunks = 8; // one max packet
    cfg.cpu.chunks_per_cycle = 0.5;
    let programs: Vec<Box<dyn NodeProgram>> = (0..16u32)
        .map(|r| {
            if r == 0 {
                boxed(ScriptedProgram::new(vec![], 15 * 10))
            } else {
                boxed(ScriptedProgram::new(
                    (0..10).map(|_| SendSpec::adaptive(0, 8, 240)).collect(),
                    0,
                ))
            }
        })
        .collect();
    let stats = Engine::new(cfg, programs)
        .run()
        .expect("drains under backpressure");
    assert_eq!(stats.packets_delivered, 150);
    assert!(
        stats.reception_stall_events > 0,
        "backpressure must be visible"
    );
}

/// The bubble escape carries traffic when the dynamic VCs are squeezed.
/// Note the FIFO must be at least `packet + slack` (16 chunks) deep or the
/// bubble rule can never admit a full packet and the escape stays closed.
#[test]
fn escape_vc_used_under_pressure() {
    // An asymmetric torus under a full exchange drives the long-dimension
    // dynamic VCs to sustained fullness — the regime the escape exists for.
    let part: Partition = "8x4x4".parse().unwrap();
    let cfg = SimConfig::new(part);
    let stats = Engine::new(cfg, uniform(&part, 4, 8))
        .run()
        .expect("drains");
    assert!(
        stats.bubble_hops > 0,
        "escape should engage when dynamics are full"
    );
    assert!(
        stats.dynamic_hops > stats.bubble_hops,
        "escape stays the minority path"
    );
}

/// With FIFOs shallower than packet+slack, the bubble rule can never admit
/// a packet: adaptive traffic must survive on dynamic credits alone (and
/// does, on a line).
#[test]
fn sub_slack_fifos_close_the_escape() {
    let part: Partition = "8x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.router.vc_fifo_chunks = 8;
    let stats = Engine::new(cfg, uniform(&part, 8, 8))
        .run()
        .expect("drains");
    assert_eq!(stats.bubble_hops, 0);
    assert_eq!(stats.packets_delivered, 8 * 7 * 8);
}

/// Deterministic traffic on a congested ring survives on the bubble rule
/// alone.
#[test]
fn deterministic_ring_congestion_drains() {
    let part: Partition = "8x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.router.vc_fifo_chunks = 16;
    let p = part.num_nodes();
    let programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| (0..6).map(move |_| SendSpec::deterministic(d, 8, 240)))
                .collect();
            boxed(ScriptedProgram::new(sends, (p as u64 - 1) * 6))
        })
        .collect();
    let stats = Engine::new(cfg, programs)
        .run()
        .expect("bubble rule keeps the ring live");
    assert_eq!(stats.dynamic_hops, 0);
    assert_eq!(stats.packets_delivered, (p as u64) * (p as u64 - 1) * 6);
}

/// Bubble-escape regression on a 2-ary dimension: with size 2 and
/// wraparound, a dimension's plus and minus links both reach the *same*
/// neighbor, the degenerate case for the bubble rule's cyclic-dependency
/// argument. Deterministic (bubble-VC-only) traffic on minimally deep
/// FIFOs (packet + slack) must still drain without deadlock, with the
/// invariant oracle confirming full conservation.
#[test]
fn two_ary_wraparound_deterministic_drains() {
    let part: Partition = "4x2".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.router.vc_fifo_chunks = 16; // the minimum admitting packet + slack
    cfg.check_invariants = true;
    let p = part.num_nodes();
    let k = 8u64;
    let programs: Vec<Box<dyn NodeProgram>> = (0..p)
        .map(|r| {
            let sends: Vec<SendSpec> = (0..p)
                .filter(|&d| d != r)
                .flat_map(|d| (0..k).map(move |_| SendSpec::deterministic(d, 8, 240)))
                .collect();
            boxed(ScriptedProgram::new(sends, (p as u64 - 1) * k))
        })
        .collect();
    let stats = Engine::new(cfg, programs)
        .run()
        .expect("bubble rule keeps the 2-ary wraparound live");
    assert_eq!(
        stats.dynamic_hops, 0,
        "deterministic traffic is bubble-only"
    );
    assert_eq!(stats.packets_delivered, p as u64 * (p as u64 - 1) * k);
    // Every Y crossing is exactly one hop on the 2-ary dimension.
    assert!(
        stats.hops_taken[1] > 0,
        "wraparound dimension must carry traffic"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(16))]

    /// Generalization of `two_ary_wraparound_deterministic_drains` to
    /// random k-ary n-dimensional tori (n in 2..=5, mixed extents
    /// including the degenerate 2-ary wraparound where both links of a
    /// dimension reach the same neighbor). Deterministic bubble-VC-only
    /// traffic on minimally deep FIFOs (packet + slack) must drain
    /// without deadlock with the invariant oracle on, every packet
    /// reaching its destination.
    #[test]
    fn bubble_rule_drains_random_nd_tori(
        raw in proptest::collection::vec(2u16..=4, 2..6),
        k in 1u64..=3,
    ) {
        // Cap the node count so the cycle-level run stays fast; excess
        // dimensions collapse to extent 1 (the arity under test is kept).
        let mut dims = raw.clone();
        let mut nodes: u32 = 1;
        for d in dims.iter_mut() {
            if nodes * (*d as u32) > 32 {
                *d = 1;
            }
            nodes *= *d as u32;
        }
        let part = Partition::torus_nd(&dims);
        let mut cfg = SimConfig::new(part);
        cfg.router.vc_fifo_chunks = 16; // the minimum admitting packet + slack
        cfg.check_invariants = true;
        let p = part.num_nodes();
        let programs: Vec<Box<dyn NodeProgram>> = (0..p)
            .map(|r| {
                let sends: Vec<SendSpec> = (0..p)
                    .filter(|&d| d != r)
                    .flat_map(|d| {
                        (0..k).map(move |_| SendSpec::deterministic(d, 8, 240))
                    })
                    .collect();
                boxed(ScriptedProgram::new(sends, (p as u64 - 1) * k))
            })
            .collect();
        let stats = Engine::new(cfg, programs)
            .run()
            .expect("bubble rule keeps the random torus live");
        proptest::prop_assert_eq!(
            stats.dynamic_hops, 0,
            "deterministic traffic is bubble-only"
        );
        proptest::prop_assert_eq!(
            stats.packets_delivered,
            p as u64 * (p as u64 - 1) * k
        );
        proptest::prop_assert_eq!(
            stats.payload_bytes_delivered,
            p as u64 * (p as u64 - 1) * k * 240
        );
    }
}

/// Longest-first shaping override: forcing it on reduces short-dimension
/// hops taken early... observable as identical totals (hops are minimal
/// either way) but a different, valid completion. Both drain and deliver
/// identical payloads.
#[test]
fn shaping_override_preserves_delivery() {
    let part: Partition = "8x4x4".parse().unwrap();
    let run = |bias: Option<bool>| {
        let mut cfg = SimConfig::new(part);
        cfg.router.longest_first_bias = bias;
        Engine::new(cfg, uniform(&part, 2, 8))
            .run()
            .expect("drains")
    };
    let off = run(Some(false));
    let on = run(Some(true));
    assert_eq!(off.packets_delivered, on.packets_delivered);
    assert_eq!(off.payload_bytes_delivered, on.payload_bytes_delivered);
    // Minimal routing: per-dimension hop totals match exactly.
    assert_eq!(off.hops_taken, on.hops_taken);
}

/// Watchdog diagnostics carry useful numbers.
#[test]
fn watchdog_reports_live_packets() {
    let part: Partition = "2x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.watchdog_cycles = 200;
    // Node 1 expects a packet nobody sends.
    let programs = vec![
        boxed(ScriptedProgram::idle()),
        boxed(ScriptedProgram::new(vec![], 3)),
    ];
    match Engine::new(cfg, programs).run() {
        Err(SimError::Stalled {
            cycle,
            live_packets,
            incomplete_programs,
            ..
        }) => {
            assert!(cycle >= 200);
            assert_eq!(live_packets, 0);
            assert_eq!(incomplete_programs, 1);
        }
        other => panic!("expected stall, got {other:?}"),
    }
}

/// Cycle limit aborts runaway configurations.
#[test]
fn cycle_limit_enforced() {
    let part: Partition = "4x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.max_cycles = 50;
    cfg.watchdog_cycles = 1_000_000;
    // Ensure there is more traffic than 50 cycles can drain.
    match Engine::new(cfg, uniform(&part, 50, 8)).run() {
        Err(SimError::CycleLimit { limit }) => assert_eq!(limit, 50),
        other => panic!("expected cycle limit, got {other:?}"),
    }
}

/// Per-dimension hop statistics equal the analytic minimal hop sums for a
/// full AA (conservation of routing work).
#[test]
fn hop_statistics_match_minimal_routing() {
    let part: Partition = "4x3x2".parse().unwrap();
    let cfg = SimConfig::new(part);
    let stats = Engine::new(cfg, uniform(&part, 1, 2))
        .run()
        .expect("drains");
    let mut want = [0u64; 3];
    for a in part.coords() {
        for b in part.coords() {
            if a == b {
                continue;
            }
            for d in part.dims() {
                want[d.index()] += part.dim_hops(d, a.get(d), b.get(d)) as u64;
            }
        }
    }
    assert_eq!(stats.hops_taken, want);
}

/// Corner placement: traffic between opposite corners of a mesh crosses
/// the full diameter (no wrap shortcut exists).
#[test]
fn mesh_corner_latency_reflects_diameter() {
    let part: Partition = "4Mx4Mx1".parse().unwrap();
    let src = part.rank_of(Coord::new(0, 0, 0));
    let dst = part.rank_of(Coord::new(3, 3, 0));
    let cfg = SimConfig::new(part);
    let mut programs: Vec<Box<dyn NodeProgram>> =
        (0..16).map(|_| boxed(ScriptedProgram::idle())).collect();
    programs[src as usize] = boxed(ScriptedProgram::new(
        vec![SendSpec::adaptive(dst, 1, 30)],
        0,
    ));
    programs[dst as usize] = boxed(ScriptedProgram::new(vec![], 1));
    let stats = Engine::new(cfg, programs).run().expect("drains");
    assert_eq!(stats.hops_taken.iter().sum::<u64>(), 6);
    // Each hop costs at least the packet's wire time.
    assert!(stats.max_latency_cycles >= 6);
}
