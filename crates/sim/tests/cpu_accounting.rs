//! Regression tests for the engine's CPU-timeline accounting.
//!
//! The per-node `cpu_free` timeline is an absolute clock; every charge must
//! anchor at `max(cpu_free, now)`. A node that has been idle carries a
//! `cpu_free` far in the past, and an unanchored `cpu_free += cost` lets it
//! absorb new work retroactively — paying nothing in wall-clock.

use bgl_sim::{Engine, NodeApi, NodeProgram, ScriptedProgram, SendSpec, SimConfig, SimError};
use bgl_torus::Partition;

/// Wakes up at cycle `release` after a long idle stretch, charges `charge`
/// CPU cycles with the first of two sends (a paced sender paying a batch
/// bookkeeping cost), then follows with an uncharged second send.
struct LateCharger {
    release: u64,
    charge: f64,
    sent: u8,
}

impl NodeProgram for LateCharger {
    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        if api.now < self.release || self.sent == 2 {
            return None;
        }
        self.sent += 1;
        if self.sent == 1 {
            api.charge_cpu(self.charge);
        }
        Some(SendSpec::adaptive(1, 1, 32))
    }

    fn is_complete(&self) -> bool {
        self.sent == 2
    }
}

/// An idle node that charges CPU at cycle `t` must pay the full charge
/// *from `t`*, not from its stale `cpu_free`. With the backdating bug,
/// `cpu_free ≈ 0 + charge` lands in the past, the charge is absorbed
/// entirely, and the follow-up send injects at `release` instead of
/// `release + charge` — visible as an early completion cycle.
#[test]
fn idle_node_cannot_absorb_extra_cpu_retroactively() {
    let part: Partition = "2x1x1".parse().unwrap();
    let release = 500u64;
    let charge = 100.0;
    let cfg = SimConfig::new(part);
    let programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(LateCharger {
            release,
            charge,
            sent: 0,
        }),
        Box::new(ScriptedProgram::new(vec![], 2)),
    ];
    let stats = Engine::new(cfg, programs).run().expect("completes");
    // The second send cannot leave the CPU before the first send's
    // 100-cycle charge is served: completion lands after cycle 600.
    assert!(
        stats.completion_cycle >= release + charge as u64,
        "completion {} absorbed the late CPU charge",
        stats.completion_cycle
    );
    // ... but the charge is not paid twice either: wire time for a 1-chunk
    // packet plus bookkeeping is well under 40 cycles.
    assert!(
        stats.completion_cycle < release + charge as u64 + 40,
        "{}",
        stats.completion_cycle
    );
    // The busy-cycle counter saw the charge regardless of anchoring.
    assert!(stats.cpu_busy_cycles >= charge, "{}", stats.cpu_busy_cycles);
}

/// A program whose only queued packet can never inject (no injection FIFO
/// accepts its class) stalls the watchdog — as `Stalled`, never
/// `CycleLimit` — and the diagnostics count the stuck packet and the
/// incomplete receiver exactly.
#[test]
fn stuck_program_reports_stalled_with_accurate_counts() {
    let part: Partition = "2x1x1".parse().unwrap();
    let mut cfg = SimConfig::new(part);
    cfg.inj_fifo_count = 2;
    cfg.inj_class_masks = vec![0b01, 0b01]; // class 3 has no home
    cfg.watchdog_cycles = 1_000;
    cfg.max_cycles = 1_000_000; // plenty: the watchdog must fire first
    let programs: Vec<Box<dyn NodeProgram>> = vec![
        Box::new(ScriptedProgram::new(
            vec![SendSpec::adaptive(1, 1, 32).with_class(3)],
            0,
        )),
        Box::new(ScriptedProgram::new(vec![], 1)),
    ];
    match Engine::new(cfg, programs).run() {
        Err(SimError::Stalled {
            cycle,
            live_packets,
            incomplete_programs,
            ..
        }) => {
            assert!(cycle > 1_000, "watchdog fired early at {cycle}");
            assert_eq!(live_packets, 1, "exactly the class-3 packet is stuck");
            assert_eq!(incomplete_programs, 1, "exactly the receiver is incomplete");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}
