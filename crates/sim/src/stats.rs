//! Simulation statistics: completion time, per-dimension link utilization,
//! latency distribution and stall accounting.

use bgl_torus::{Dim, Direction, Partition};
use serde::{Deserialize, Serialize};

/// Number of power-of-two latency histogram buckets (bucket `i` counts
/// deliveries with latency in `[2^i, 2^(i+1))` cycles).
pub const LATENCY_BUCKETS: usize = 24;

/// Statistics accumulated by a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Cycle at which the last payload packet was delivered (== total
    /// all-to-all time in cycles).
    pub completion_cycle: u64,
    /// Packets injected into the network.
    pub packets_injected: u64,
    /// Packets delivered to their destination programs.
    pub packets_delivered: u64,
    /// Payload bytes delivered.
    pub payload_bytes_delivered: u64,
    /// Chunk-cycles each dimension's links spent transmitting, one entry
    /// per partition dimension (index = `Dim::index()`). Serializes as a
    /// plain JSON array, exactly as the old fixed `[u64; 3]` did on 3D
    /// partitions, so committed golden fingerprints are unchanged.
    pub link_busy_chunks: Vec<u64>,
    /// Packet-hops taken per dimension (same indexing).
    pub hops_taken: Vec<u64>,
    /// Hops taken on the bubble (escape/deterministic) VC.
    pub bubble_hops: u64,
    /// Hops taken on the dynamic VCs.
    pub dynamic_hops: u64,
    /// Sum over delivered packets of (delivery − injection) cycles.
    pub total_latency_cycles: u64,
    /// Worst single-packet latency.
    pub max_latency_cycles: u64,
    /// Cycles some delivery was blocked on a full reception FIFO.
    pub reception_stall_events: u64,
    /// Node-cycles the engine's rate window (`SimConfig::flow` =
    /// [`FlowSpec::Rate`](crate::FlowSpec::Rate)) kept a node from pulling
    /// new sends from its program.
    pub pacing_blocked_cycles: u64,
    /// Credit acquisitions denied because an intermediate's window was
    /// full (`SimConfig::flow` =
    /// [`FlowSpec::Credit`](crate::FlowSpec::Credit)); one event per
    /// declined `NodeApi::try_acquire_credit` call.
    pub credit_blocked_events: u64,
    /// Packets that were in flight on a link the moment a fault killed it
    /// (see [`crate::fault`]). Such packets leave the network accounted
    /// here — never silently lost: the invariant oracle checks
    /// `injected == delivered + dropped_by_fault` at quiesce. Always zero
    /// on a healthy run.
    pub dropped_by_fault: u64,
    /// CPU-cycles (in simulation-cycle units) the node CPUs were busy.
    pub cpu_busy_cycles: f64,
    /// Power-of-two latency histogram (see [`LATENCY_BUCKETS`]).
    pub latency_histogram: Vec<u64>,
    /// Per-directed-link busy chunk-cycles, indexed `node·2n + direction`
    /// where `2n` is the partition's port count; empty unless
    /// `SimConfig::detailed_link_stats` was set.
    pub link_busy_per_link: Vec<u64>,
}

impl NetStats {
    /// Mean delivered-packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.packets_delivered as f64
        }
    }

    /// Mean utilization of the links of `dim` over the run: busy
    /// chunk-cycles divided by (directed links × completion cycles).
    pub fn dim_utilization(&self, part: &Partition, dim: Dim) -> f64 {
        let links = part.directed_links(dim);
        if links == 0 || self.completion_cycle == 0 {
            return 0.0;
        }
        let busy = self.link_busy_chunks.get(dim.index()).copied().unwrap_or(0);
        busy as f64 / (links as f64 * self.completion_cycle as f64)
    }

    /// Utilization of the busiest dimension.
    pub fn peak_dim_utilization(&self, part: &Partition) -> f64 {
        part.dims()
            .map(|d| self.dim_utilization(part, d))
            .fold(0.0, f64::max)
    }

    /// Approximate latency percentile (cycles) from the power-of-two
    /// histogram: returns the upper bound of the bucket containing the
    /// `q`-quantile delivery (`q` in `[0,1]`).
    pub fn latency_percentile(&self, q: f64) -> u64 {
        let total: u64 = self.latency_histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let want = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.latency_histogram.iter().enumerate() {
            seen += c;
            if seen >= want {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// The `n` busiest directed links as `(node, direction, utilization)`,
    /// sorted hottest first; ties break by ascending (node, direction) so
    /// the order is total and reproducible. Sorting happens on the integer
    /// busy counters, never on derived floats, so equal-busy links can
    /// never reorder between runs and nothing here can panic on a
    /// non-finite comparison. Empty unless detailed link stats were
    /// collected. `ports` is the partition's directed-port count (`2n`),
    /// the stride of `link_busy_per_link`.
    pub fn hottest_links(&self, ports: usize, n: usize) -> Vec<(u32, Direction, f64)> {
        if self.completion_cycle == 0 || ports == 0 {
            return Vec::new();
        }
        let mut v: Vec<(u64, u32, usize)> = self
            .link_busy_per_link
            .iter()
            .enumerate()
            .filter(|&(_, &busy)| busy > 0)
            .map(|(i, &busy)| (busy, (i / ports) as u32, i % ports))
            .collect();
        v.sort_by_key(|&(busy, node, dir)| (std::cmp::Reverse(busy), node, dir));
        v.truncate(n);
        v.into_iter()
            .map(|(busy, node, dir)| {
                (
                    node,
                    Direction::from_index(dir),
                    busy as f64 / self.completion_cycle as f64,
                )
            })
            .collect()
    }

    /// Fraction of delivered hops that used the bubble VC.
    pub fn bubble_fraction(&self) -> f64 {
        let total = self.bubble_hops + self.dynamic_hops;
        if total == 0 {
            0.0
        } else {
            self.bubble_hops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_zero_packets() {
        let s = NetStats::default();
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn mean_latency_divides() {
        let s = NetStats {
            packets_delivered: 4,
            total_latency_cycles: 100,
            ..Default::default()
        };
        assert_eq!(s.mean_latency(), 25.0);
    }

    #[test]
    fn utilization_accounts_links_and_cycles() {
        let part: Partition = "8x8x8".parse().unwrap();
        let s = NetStats {
            completion_cycle: 100,
            link_busy_chunks: vec![51_200, 0, 0], // half of 1024 X-links × 100 cycles
            ..Default::default()
        };
        assert!((s.dim_utilization(&part, Dim::X) - 0.5).abs() < 1e-12);
        assert_eq!(s.dim_utilization(&part, Dim::Y), 0.0);
        assert_eq!(
            s.peak_dim_utilization(&part),
            s.dim_utilization(&part, Dim::X)
        );
    }

    #[test]
    fn utilization_zero_for_degenerate_cases() {
        let part = Partition::torus_nd(&[8]);
        let s = NetStats::default();
        assert_eq!(s.dim_utilization(&part, Dim::Y), 0.0); // no links
        assert_eq!(s.dim_utilization(&part, Dim::X), 0.0); // no cycles
    }

    #[test]
    fn utilization_generalizes_beyond_three_dims() {
        let part = Partition::torus_nd(&[4, 4, 4, 4]);
        let s = NetStats {
            completion_cycle: 100,
            link_busy_chunks: vec![0, 0, 0, 25_600], // half of 512 directed D3-links × 100
            ..Default::default()
        };
        assert!((s.dim_utilization(&part, Dim::from_index(3)) - 0.5).abs() < 1e-12);
        assert_eq!(
            s.peak_dim_utilization(&part),
            s.dim_utilization(&part, Dim::from_index(3))
        );
    }

    #[test]
    fn latency_percentile_from_histogram() {
        let mut h = vec![0u64; LATENCY_BUCKETS];
        h[3] = 50; // latencies 8..16
        h[6] = 50; // latencies 64..128
        let s = NetStats {
            latency_histogram: h,
            ..Default::default()
        };
        assert_eq!(s.latency_percentile(0.25), 16);
        assert_eq!(s.latency_percentile(0.75), 128);
        assert_eq!(NetStats::default().latency_percentile(0.5), 0);
    }

    #[test]
    fn hottest_links_sorted() {
        let mut per_link = vec![0u64; 12];
        per_link[3] = 90;
        per_link[7] = 100;
        let s = NetStats {
            completion_cycle: 100,
            link_busy_per_link: per_link,
            ..Default::default()
        };
        let hot = s.hottest_links(6, 2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, 1); // link index 7 = node 1
        assert!((hot[0].2 - 1.0).abs() < 1e-12);
        assert_eq!(hot[1].0, 0);
    }

    #[test]
    fn hottest_links_ties_break_by_node_then_direction() {
        // Four links with identical busy counters: the order must be the
        // total (node, direction) order, not insertion or sort-internal
        // order.
        let mut per_link = vec![0u64; 24];
        per_link[14] = 50; // node 2, dir 2
        per_link[3] = 50; // node 0, dir 3
        per_link[13] = 50; // node 2, dir 1
        per_link[7] = 50; // node 1, dir 1
        let s = NetStats {
            completion_cycle: 100,
            link_busy_per_link: per_link,
            ..Default::default()
        };
        let hot = s.hottest_links(6, 10);
        let order: Vec<(u32, usize)> = hot.iter().map(|&(n, d, _)| (n, d.index())).collect();
        assert_eq!(order, vec![(0, 3), (1, 1), (2, 1), (2, 2)]);
        assert!(hot.iter().all(|&(_, _, u)| (u - 0.5).abs() < 1e-12));
    }

    #[test]
    fn bubble_fraction() {
        let s = NetStats {
            bubble_hops: 1,
            dynamic_hops: 3,
            ..Default::default()
        };
        assert_eq!(s.bubble_fraction(), 0.25);
        assert_eq!(NetStats::default().bubble_fraction(), 0.0);
    }
}
