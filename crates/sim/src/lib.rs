//! Cycle-level simulator of the Blue Gene/L torus interconnect.
//!
//! This crate is the hardware substrate of the reproduction: it models the
//! BG/L network at the granularity the paper's phenomena live at —
//! input-queued routers with per-(port, VC) finite FIFOs, credit flow
//! control, two dynamic VCs with join-shortest-queue adaptive routing, the
//! dimension-ordered "bubble normal" escape VC with the bubble
//! deadlock-avoidance rule, injection/reception FIFOs, and a DMA-less node
//! CPU that pays for every packet it touches.
//!
//! Time is counted in cycles of one 32-byte chunk per link
//! (≈ 207 ns ≈ 145 CPU cycles on the real machine; see
//! `bgl_model::MachineParams` for conversions). Runs are deterministic:
//! identical configuration and programs produce identical cycle counts.
//!
//! The all-to-all strategies themselves live in `bgl-core` as
//! [`NodeProgram`]s; this crate only moves packets.
//!
//! # Example: two nodes exchanging one packet each
//!
//! ```
//! use bgl_sim::{Engine, SimConfig, ScriptedProgram, SendSpec, NodeProgram};
//!
//! let cfg = SimConfig::new("2x1x1".parse().unwrap());
//! let programs: Vec<Box<dyn NodeProgram>> = vec![
//!     Box::new(ScriptedProgram::new(vec![SendSpec::adaptive(1, 2, 64)], 1)),
//!     Box::new(ScriptedProgram::new(vec![SendSpec::adaptive(0, 2, 64)], 1)),
//! ];
//! let stats = Engine::new(cfg, programs).run().unwrap();
//! assert_eq!(stats.packets_delivered, 2);
//! assert_eq!(stats.payload_bytes_delivered, 128);
//! ```

pub mod config;
pub mod csv;
pub mod engine;
pub mod fault;
pub mod fifo;
pub mod flow;
pub mod node;
pub mod packet;
pub mod perf;
pub mod program;
pub mod stats;
pub mod trace;

pub use config::{CpuConfig, EngineMode, RouterConfig, SimConfig, Vc, NUM_VCS};
pub use engine::{Engine, FaultBlock, SimError, StallBreakdown};
pub use fault::{FaultPlan, LinkFault, LinkSchedule, NodeFault};
pub use fifo::ChunkFifo;
pub use flow::{FlowLedger, FlowSpec};
pub use packet::{Packet, PacketMeta, RoutingMode, SendSpec, NO_DETOUR};
pub use perf::{EventPerf, PerfConfig, PerfProfile, PhaseSecs, ProgressConfig, ShardPerf};
pub use program::{NodeApi, NodeProgram, PollHint, ScriptedProgram};
pub use stats::NetStats;
pub use trace::{OccStat, Trace, TraceConfig, TraceSample};

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::{Coord, Dim, Partition};

    fn boxed(p: ScriptedProgram) -> Box<dyn NodeProgram> {
        Box::new(p)
    }

    /// All nodes idle: completes instantly at cycle 0.
    #[test]
    fn empty_simulation_completes_immediately() {
        let cfg = SimConfig::new("4x4x4".parse().unwrap());
        let programs = (0..64).map(|_| boxed(ScriptedProgram::idle())).collect();
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.packets_injected, 0);
        assert_eq!(stats.completion_cycle, 0);
    }

    #[test]
    #[should_panic(expected = "one program per node")]
    fn wrong_program_count_panics() {
        let cfg = SimConfig::new("4x1x1".parse().unwrap());
        let _ = Engine::new(cfg, vec![boxed(ScriptedProgram::idle())]);
    }

    /// One packet, one hop: delivery happens and latency is sane.
    #[test]
    fn single_packet_single_hop() {
        let cfg = SimConfig::new("2x1x1".parse().unwrap());
        let programs = vec![
            boxed(ScriptedProgram::new(vec![SendSpec::adaptive(1, 8, 240)], 0)),
            boxed(ScriptedProgram::new(vec![], 1)),
        ];
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.packets_injected, 1);
        assert_eq!(stats.packets_delivered, 1);
        assert_eq!(stats.payload_bytes_delivered, 240);
        // 8 chunks on the wire + hop latency + injection/drain bookkeeping:
        // completion within a small constant of the wire time.
        assert!(stats.completion_cycle >= 8);
        assert!(stats.completion_cycle < 32, "{}", stats.completion_cycle);
        assert_eq!(stats.hops_taken, [1, 0, 0]);
    }

    /// Packets are conserved: everything injected is delivered exactly once.
    #[test]
    fn packet_conservation_ring_traffic() {
        let part: Partition = "8x1x1".parse().unwrap();
        let cfg = SimConfig::new(part);
        let programs: Vec<Box<dyn NodeProgram>> = (0..8u32)
            .map(|r| {
                // Each node sends 5 packets to every other node.
                let sends: Vec<SendSpec> = (0..8u32)
                    .filter(|&d| d != r)
                    .flat_map(|d| (0..5).map(move |_| SendSpec::adaptive(d, 4, 128)))
                    .collect();
                boxed(ScriptedProgram::new(sends, 35))
            })
            .collect();
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.packets_injected, 8 * 7 * 5);
        assert_eq!(stats.packets_delivered, 8 * 7 * 5);
        assert_eq!(stats.payload_bytes_delivered, 8 * 7 * 5 * 128);
    }

    /// Deterministic routing visits dimensions in X→Y→Z order; the hop
    /// counters prove every dimension was traversed minimally.
    #[test]
    fn deterministic_routing_hop_counts() {
        let part: Partition = "4x4x4".parse().unwrap();
        let src = 0u32;
        let dstc = Coord::new(1, 2, 1);
        let dst = part.rank_of(dstc);
        let cfg = SimConfig::new(part);
        let mut programs: Vec<Box<dyn NodeProgram>> =
            (0..64).map(|_| boxed(ScriptedProgram::idle())).collect();
        programs[src as usize] = boxed(ScriptedProgram::new(
            vec![SendSpec::deterministic(dst, 2, 64)],
            0,
        ));
        programs[dst as usize] = boxed(ScriptedProgram::new(vec![], 1));
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.hops_taken, [1, 2, 1]);
        // Deterministic packets ride the bubble VC exclusively.
        assert_eq!(stats.bubble_hops, 4);
        assert_eq!(stats.dynamic_hops, 0);
    }

    /// Adaptive packets use the dynamic VCs on an uncontended network.
    #[test]
    fn adaptive_routing_uses_dynamic_vcs() {
        let part: Partition = "4x4x4".parse().unwrap();
        let dst = part.rank_of(Coord::new(2, 2, 2));
        let cfg = SimConfig::new(part);
        let mut programs: Vec<Box<dyn NodeProgram>> =
            (0..64).map(|_| boxed(ScriptedProgram::idle())).collect();
        programs[0] = boxed(ScriptedProgram::new(
            vec![SendSpec::adaptive(dst, 2, 64)],
            0,
        ));
        programs[dst as usize] = boxed(ScriptedProgram::new(vec![], 1));
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.hops_taken.iter().sum::<u64>(), 6);
        assert_eq!(stats.dynamic_hops, 6);
        assert_eq!(stats.bubble_hops, 0);
    }

    /// Identical (config, programs) runs produce identical statistics.
    #[test]
    fn determinism() {
        let run = || {
            let part: Partition = "4x4".parse().unwrap();
            let cfg = SimConfig::new(part);
            let programs: Vec<Box<dyn NodeProgram>> = (0..16u32)
                .map(|r| {
                    let sends: Vec<SendSpec> = (0..16u32)
                        .filter(|&d| d != r)
                        .map(|d| SendSpec::adaptive(d, 3, 96))
                        .collect();
                    boxed(ScriptedProgram::new(sends, 15))
                })
                .collect();
            Engine::new(cfg, programs).run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    /// A node that expects a packet that never comes trips the watchdog.
    #[test]
    fn watchdog_fires_on_stuck_program() {
        let mut cfg = SimConfig::new("2x1x1".parse().unwrap());
        cfg.watchdog_cycles = 500;
        let programs = vec![
            boxed(ScriptedProgram::idle()),
            boxed(ScriptedProgram::new(vec![], 1)),
        ];
        match Engine::new(cfg, programs).run() {
            Err(SimError::Stalled {
                incomplete_programs,
                ..
            }) => {
                assert_eq!(incomplete_programs, 1);
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    /// Mesh edges have no links: traffic between far ends must route
    /// through the middle, never wrapping.
    #[test]
    fn mesh_does_not_wrap() {
        let part: Partition = "4Mx1x1".parse().unwrap();
        let cfg = SimConfig::new(part);
        let programs = vec![
            boxed(ScriptedProgram::new(vec![SendSpec::adaptive(3, 1, 32)], 0)),
            boxed(ScriptedProgram::idle()),
            boxed(ScriptedProgram::idle()),
            boxed(ScriptedProgram::new(vec![], 1)),
        ];
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.hops_taken, [3, 0, 0]);
    }

    /// Heavy hotspot traffic (all nodes to one destination) still drains:
    /// backpressure and the reception FIFO throttle but never deadlock.
    #[test]
    fn hotspot_drains_without_deadlock() {
        let part: Partition = "4x4".parse().unwrap();
        let cfg = SimConfig::new(part);
        let programs: Vec<Box<dyn NodeProgram>> = (0..16u32)
            .map(|r| {
                if r == 0 {
                    boxed(ScriptedProgram::new(vec![], 15 * 20))
                } else {
                    boxed(ScriptedProgram::new(
                        (0..20).map(|_| SendSpec::adaptive(0, 8, 240)).collect(),
                        0,
                    ))
                }
            })
            .collect();
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.packets_delivered, 15 * 20);
        // The sink's links are the bottleneck: 300 packets × 8 chunks over
        // 4 incoming links ≥ 600 cycles.
        assert!(stats.completion_cycle >= 600, "{}", stats.completion_cycle);
    }

    /// Utilization accounting: a saturated one-way ring line reaches high
    /// X-link utilization.
    #[test]
    fn neighbor_stream_saturates_link() {
        let part: Partition = "8x1x1".parse().unwrap();
        let cfg = SimConfig::new(part);
        let npkts = 200u64;
        let programs: Vec<Box<dyn NodeProgram>> = (0..8u32)
            .map(|r| {
                let next = (r + 1) % 8;
                boxed(ScriptedProgram::new(
                    (0..npkts)
                        .map(|_| SendSpec::adaptive(next, 8, 240))
                        .collect(),
                    npkts,
                ))
            })
            .collect();
        let stats = Engine::new(cfg, programs).run().unwrap();
        let part: Partition = "8x1x1".parse().unwrap();
        // Every node streams to its +1 neighbour: the 8 plus-links carry
        // 200×8 chunks each; utilization of the dimension (16 directed
        // links, half idle) approaches 0.5.
        let util = stats.dim_utilization(&part, Dim::X);
        assert!(util > 0.4, "utilization {util}");
        assert_eq!(stats.packets_delivered, 8 * npkts);
    }

    /// Injection classes: a packet of class 1 may only use FIFOs whose
    /// mask includes class 1.
    #[test]
    fn injection_class_reservation() {
        let mut cfg = SimConfig::new("2x1x1".parse().unwrap());
        cfg.inj_fifo_count = 2;
        // FIFO 0 takes only class 0; FIFO 1 only class 1.
        cfg.inj_class_masks = vec![0b01, 0b10];
        let programs = vec![
            boxed(ScriptedProgram::new(
                vec![
                    SendSpec::adaptive(1, 1, 32).with_class(0),
                    SendSpec::adaptive(1, 1, 32).with_class(1),
                ],
                0,
            )),
            boxed(ScriptedProgram::new(vec![], 2)),
        ];
        let stats = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(stats.packets_delivered, 2);
    }

    /// CPU bandwidth limits injection: starving the CPU visibly slows an
    /// uncontended stream.
    #[test]
    fn cpu_bandwidth_bounds_injection_rate() {
        let time_with_bw = |bw: f64| {
            let mut cfg = SimConfig::new("2x1x1".parse().unwrap());
            cfg.cpu.chunks_per_cycle = bw;
            cfg.cpu.per_packet_inject_cycles = 0.0;
            cfg.cpu.per_packet_receive_cycles = 0.0;
            let n = 400;
            let programs = vec![
                boxed(ScriptedProgram::new(
                    (0..n).map(|_| SendSpec::adaptive(1, 8, 240)).collect(),
                    0,
                )),
                boxed(ScriptedProgram::new(vec![], n)),
            ];
            Engine::new(cfg, programs).run().unwrap().completion_cycle as f64
        };
        // On a 2-node line only one +X link exists, so the wire needs 8
        // cycles/packet; at 0.5 chunks/cycle the CPU needs 16 and becomes
        // the bottleneck.
        let fast = time_with_bw(4.0);
        let slow = time_with_bw(0.5);
        assert!(slow / fast > 1.6, "fast={fast} slow={slow}");
    }
}
