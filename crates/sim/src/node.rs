//! Per-node simulator state: VC FIFOs, injection FIFOs, reception FIFO and
//! CPU accounting.

use crate::config::{SimConfig, NUM_VCS};
use crate::fifo::ChunkFifo;
use crate::flow::FlowLedger;
use crate::packet::SendSpec;
use bgl_torus::{Coord, MAX_PORTS};
use std::collections::VecDeque;

/// Index of the VC FIFO for (input port, VC). The number of ports — and so
/// the number of VC FIFOs, `2n · NUM_VCS` — is the partition's, not a
/// constant: a 2D node has 12 transit FIFOs, a 3D node 18, a 6D node 36.
#[inline]
pub fn vc_fifo_index(port: usize, vc: usize) -> usize {
    port * NUM_VCS + vc
}

/// All simulator state for one node.
pub struct NodeState {
    /// Node coordinate.
    pub coord: Coord,
    /// Input VC FIFOs, indexed by [`vc_fifo_index`].
    pub vcs: Vec<ChunkFifo>,
    /// Bitmask of non-empty VC FIFOs (bit `i` ⇔ `vcs[i]` non-empty). At the
    /// 6-dimension maximum there are 12 ports × 3 VCs = 36 FIFOs, so this
    /// must be wider than 32 bits.
    pub vc_mask: u64,
    /// Injection FIFOs.
    pub inj: Vec<ChunkFifo>,
    /// Bitmask of non-empty injection FIFOs (bit `f` ⇔ `inj[f]` non-empty),
    /// mirroring [`vc_mask`](Self::vc_mask) so arbitration never probes
    /// empty FIFOs.
    pub inj_mask: u32,
    /// Per-injection-FIFO class masks: FIFO `f` accepts class `c` iff
    /// `inj_class[f] & (1 << c) != 0`.
    pub inj_class: Vec<u8>,
    /// Reception FIFO.
    pub reception: ChunkFifo,
    /// Reactive sends queued by the program (api.send from hooks), not yet
    /// paid for / injected.
    pub pending: VecDeque<SendSpec>,
    /// Sends pulled from the program's own schedule (`next_send`), kept
    /// separate so a backlog of reactive forwards can never starve a
    /// node's proactive stream (and vice versa).
    pub pulled: VecDeque<SendSpec>,
    /// Absolute time (cycles, fractional) the CPU becomes free.
    pub cpu_free: f64,
    /// Total CPU-cycles this node has been charged so far. Kept per node
    /// (not accumulated straight into `NetStats`) so the global
    /// `cpu_busy_cycles` float is always the ascending-node-order fold of
    /// these values — an order that does not depend on how the torus is
    /// sharded, keeping the statistic byte-identical for any shard count.
    pub cpu_busy: f64,
    /// Round-robin arbitration pointers, one per output direction (only the
    /// first `2n` entries are used).
    pub rr: [u8; MAX_PORTS],
    /// Round-robin pointer over injection FIFOs for placement.
    pub inj_rr: u8,
    /// VC FIFO indices whose head is deliverable but found the reception
    /// FIFO full; retried after the CPU drains a packet.
    pub blocked_deliveries: Vec<u8>,
    /// Injection flow-control state (see [`crate::flow`]): the engine's
    /// rate window and the program-visible credit ledger.
    pub flow: FlowLedger,
    /// Cached program completion flag.
    pub program_done: bool,
}

impl NodeState {
    /// Fresh state per `cfg`, with `ports = 2n` transit input ports.
    pub fn new(coord: Coord, cfg: &SimConfig, ports: usize) -> NodeState {
        debug_assert!(ports <= MAX_PORTS && ports.is_multiple_of(2));
        let vcs = (0..ports * NUM_VCS)
            .map(|_| ChunkFifo::new(cfg.router.vc_fifo_chunks))
            .collect();
        let inj = (0..cfg.inj_fifo_count)
            .map(|_| ChunkFifo::new(cfg.inj_fifo_chunks))
            .collect();
        let inj_class = if cfg.inj_class_masks.is_empty() {
            vec![u8::MAX; cfg.inj_fifo_count as usize]
        } else {
            assert_eq!(
                cfg.inj_class_masks.len(),
                cfg.inj_fifo_count as usize,
                "inj_class_masks length must equal inj_fifo_count"
            );
            cfg.inj_class_masks.clone()
        };
        NodeState {
            coord,
            vcs,
            vc_mask: 0,
            inj,
            inj_mask: 0,
            inj_class,
            reception: ChunkFifo::new(cfg.reception_fifo_chunks),
            pending: VecDeque::new(),
            pulled: VecDeque::new(),
            cpu_free: 0.0,
            cpu_busy: 0.0,
            rr: [0; MAX_PORTS],
            inj_rr: 0,
            blocked_deliveries: Vec::new(),
            flow: FlowLedger::new(cfg.flow),
            program_done: false,
        }
    }

    /// Whether any packet sits anywhere in this node (diagnostics /
    /// completion checking).
    pub fn holds_packets(&self) -> bool {
        self.vc_mask != 0
            || self.inj_mask != 0
            || !self.pending.is_empty()
            || !self.pulled.is_empty()
            || !self.reception.is_empty()
    }
}
