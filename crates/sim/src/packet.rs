//! Packets and send specifications.

use crate::config::Vc;
use bgl_torus::{Coord, HopPlan};
use serde::{Deserialize, Serialize};

/// How a packet is routed through the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingMode {
    /// Minimal adaptive routing on the dynamic VCs (join-shortest-queue
    /// direction/VC choice), with optional bubble-VC escape.
    Adaptive,
    /// Dimension-ordered (X→Y→Z) deterministic routing on the bubble VC.
    Deterministic,
}

/// Strategy-defined metadata carried end-to-end in a packet's software
/// header. The simulator never interprets it; node programs use it to
/// implement forwarding and combining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PacketMeta {
    /// Discriminator (e.g. phase number).
    pub kind: u8,
    /// First word (e.g. final destination rank for forwarded packets).
    pub a: u32,
    /// Second word (e.g. source rank or byte count).
    pub b: u32,
}

/// Non-minimal (fault-detour) hops an adaptive packet may take before it
/// parks and waits for a recovery (or the watchdog). Bounds the packed
/// counter in [`Packet::detour`] and rules out detour livelock.
pub const DETOUR_BUDGET: u8 = 31;

/// [`Packet::detour`] low-nibble value meaning "no detour state". With up
/// to [`bgl_torus::MAX_PORTS`] = 12 directions, direction indices need a
/// full nibble; 15 is the none sentinel.
pub const NO_DETOUR: u16 = 15;

/// A packet in flight or in a FIFO.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id (assigned at injection, monotonically increasing).
    pub id: u64,
    /// Injecting node's rank.
    pub src_rank: u32,
    /// Torus destination.
    pub dst: Coord,
    /// Size on the wire in 32-byte chunks (1..=8 on BG/L).
    pub chunks: u8,
    /// Payload bytes (accounting only; excludes headers and padding).
    pub payload_bytes: u32,
    /// Remaining route.
    pub plan: HopPlan,
    /// Adaptive or deterministic.
    pub routing: RoutingMode,
    /// The VC the packet currently occupies (meaningful once in a VC FIFO).
    pub vc: Vc,
    /// Injection-FIFO class: programs may reserve injection FIFOs for a
    /// class (the Two Phase Schedule pipelining trick). Class `c` packets
    /// only use injection FIFOs whose class mask includes `c`.
    pub class: u8,
    /// Strategy metadata.
    pub meta: PacketMeta,
    /// Adaptive-routing restriction: move only along the longest remaining
    /// dimension(s) (hint-bit style software shaping; see
    /// `RouterConfig::longest_first_bias`). Ignored for deterministic
    /// packets.
    pub longest_first: bool,
    /// Cycle the packet entered an injection FIFO.
    pub injected_at: u64,
    /// Packed fault-detour state, [`NO_DETOUR`] while unused. Low 4 bits:
    /// the output direction the packet must not take on its next hop (the
    /// link straight back along the detour it just made; 15 = none). Bits
    /// above: non-minimal hops taken so far, capped by [`DETOUR_BUDGET`].
    pub detour: u16,
}

impl Packet {
    /// The direction index this packet must not exit through right now
    /// (the reverse of its last detour hop), if any.
    #[inline]
    pub fn detour_from(&self) -> Option<usize> {
        let p = (self.detour & 15) as usize;
        (p != NO_DETOUR as usize).then_some(p)
    }

    /// Non-minimal hops taken so far.
    #[inline]
    pub fn detour_count(&self) -> u8 {
        (self.detour >> 4) as u8
    }

    /// Record a detour hop whose reverse direction is `back`.
    #[inline]
    pub fn note_detour(&mut self, back: usize) {
        debug_assert!(back < bgl_torus::MAX_PORTS);
        self.detour = ((self.detour_count() as u16 + 1) << 4) | back as u16;
    }

    /// A minimal hop clears the don't-go-back restriction (the count is
    /// kept: the budget bounds total non-minimal hops over the packet's
    /// whole life).
    #[inline]
    pub fn clear_detour_from(&mut self) {
        self.detour |= NO_DETOUR;
    }
}

/// What a node program asks the runtime to send.
#[derive(Debug, Clone)]
pub struct SendSpec {
    /// Destination rank.
    pub dst_rank: u32,
    /// Wire size in chunks (1..=8).
    pub chunks: u8,
    /// Payload bytes for delivery accounting.
    pub payload_bytes: u32,
    /// Routing mode.
    pub routing: RoutingMode,
    /// Injection class (see [`Packet::class`]).
    pub class: u8,
    /// Metadata delivered to the destination program.
    pub meta: PacketMeta,
    /// Restrict adaptive routing to the longest remaining dimension(s);
    /// the anti-tree-saturation shaping strategies enable on asymmetric
    /// partitions.
    pub longest_first: bool,
    /// Extra CPU cycles to charge before this packet can be injected
    /// (per-message α, software-copy γ, …). Charged once.
    pub cpu_cost_cycles: f64,
}

impl SendSpec {
    /// A plain adaptive data packet with no extra CPU cost.
    pub fn adaptive(dst_rank: u32, chunks: u8, payload_bytes: u32) -> SendSpec {
        SendSpec {
            dst_rank,
            chunks,
            payload_bytes,
            routing: RoutingMode::Adaptive,
            class: 0,
            meta: PacketMeta::default(),
            longest_first: false,
            cpu_cost_cycles: 0.0,
        }
    }

    /// A plain deterministically routed data packet.
    pub fn deterministic(dst_rank: u32, chunks: u8, payload_bytes: u32) -> SendSpec {
        SendSpec {
            routing: RoutingMode::Deterministic,
            ..SendSpec::adaptive(dst_rank, chunks, payload_bytes)
        }
    }

    /// Builder: set metadata.
    pub fn with_meta(mut self, meta: PacketMeta) -> SendSpec {
        self.meta = meta;
        self
    }

    /// Builder: set the injection class.
    pub fn with_class(mut self, class: u8) -> SendSpec {
        self.class = class;
        self
    }

    /// Builder: add CPU cost (α, γ) to charge before injection.
    pub fn with_cpu_cost(mut self, cycles: f64) -> SendSpec {
        self.cpu_cost_cycles = cycles;
        self
    }

    /// Builder: restrict adaptive routing to the longest remaining
    /// dimension(s) (see [`SendSpec::longest_first`]).
    pub fn with_longest_first(mut self, on: bool) -> SendSpec {
        self.longest_first = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::{Partition, TieBreak};

    #[test]
    fn send_spec_builders() {
        let s = SendSpec::adaptive(7, 8, 240)
            .with_meta(PacketMeta {
                kind: 2,
                a: 11,
                b: 22,
            })
            .with_class(1)
            .with_cpu_cost(3.5);
        assert_eq!(s.dst_rank, 7);
        assert_eq!(s.chunks, 8);
        assert_eq!(s.routing, RoutingMode::Adaptive);
        assert_eq!(s.class, 1);
        assert_eq!(s.meta.a, 11);
        assert_eq!(s.cpu_cost_cycles, 3.5);

        let d = SendSpec::deterministic(3, 2, 64);
        assert_eq!(d.routing, RoutingMode::Deterministic);
        assert_eq!(d.class, 0);
    }

    #[test]
    fn detour_state_packs_and_unpacks() {
        let part = Partition::torus(2, 2, 2);
        let mut k = Packet {
            id: 0,
            src_rank: 0,
            dst: Coord::new(1, 0, 0),
            chunks: 1,
            payload_bytes: 0,
            plan: HopPlan::new(
                &part,
                Coord::new(0, 0, 0),
                Coord::new(1, 0, 0),
                TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: Vc::Dynamic0,
            class: 0,
            meta: PacketMeta::default(),
            longest_first: false,
            injected_at: 0,
            detour: NO_DETOUR,
        };
        assert_eq!(k.detour_from(), None);
        assert_eq!(k.detour_count(), 0);
        k.note_detour(3);
        assert_eq!(k.detour_from(), Some(3));
        assert_eq!(k.detour_count(), 1);
        k.note_detour(5);
        assert_eq!(k.detour_from(), Some(5));
        assert_eq!(k.detour_count(), 2);
        k.clear_detour_from();
        assert_eq!(k.detour_from(), None);
        assert_eq!(k.detour_count(), 2);
    }

    #[test]
    fn packet_is_reasonably_small() {
        // Packets are copied through FIFOs constantly; keep them compact.
        // (The n-dimensional Coord and HopPlan cost some bytes over the old
        // 3D-only layout; 96 keeps a packet within two cache lines.)
        assert!(
            std::mem::size_of::<Packet>() <= 96,
            "{}",
            std::mem::size_of::<Packet>()
        );
    }
}
