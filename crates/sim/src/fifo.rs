//! Chunk-accounted packet FIFOs.
//!
//! Used for VC FIFOs, injection FIFOs and reception FIFOs. Capacity is in
//! chunks, not packets, matching the byte-granular BG/L buffers. The FIFO
//! itself tracks only *physical* occupancy; in-flight credit for the
//! transit VC FIFOs (space spent by an upstream arbitration win before the
//! packet physically arrives) lives in the engine's shared credit array
//! (see `engine`), which is what makes the sharded engine's credit
//! accounting a single source of truth for sequential and parallel
//! execution alike. Injection and reception FIFOs are only ever probed by
//! their own node, so plain occupancy-based `free_chunks`/`try_push`
//! remain the right interface for them.

use crate::packet::Packet;
use std::collections::VecDeque;

/// A packet FIFO with chunk-granular occupancy.
#[derive(Debug, Default)]
pub struct ChunkFifo {
    queue: VecDeque<Packet>,
    capacity_chunks: u32,
    occupied_chunks: u32,
}

impl ChunkFifo {
    /// An empty FIFO holding up to `capacity_chunks` chunks.
    pub fn new(capacity_chunks: u32) -> ChunkFifo {
        ChunkFifo {
            queue: VecDeque::new(),
            capacity_chunks,
            occupied_chunks: 0,
        }
    }

    /// Chunks not physically occupied. For transit VC FIFOs this is *not*
    /// the available credit — in-flight reservations live in the engine's
    /// credit array — so only same-node users (injection/reception) should
    /// gate on it.
    #[inline]
    pub fn free_chunks(&self) -> u32 {
        self.capacity_chunks - self.occupied_chunks
    }

    /// Chunks physically present.
    #[inline]
    pub fn occupied_chunks(&self) -> u32 {
        self.occupied_chunks
    }

    /// Total capacity in chunks.
    #[inline]
    pub fn capacity_chunks(&self) -> u32 {
        self.capacity_chunks
    }

    /// Whether the FIFO holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of packets physically present.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Push a packet whose space was already accounted for externally
    /// (transit-VC arrival: the upstream arbiter spent the credit before
    /// launch, so physical space is guaranteed).
    #[inline]
    pub fn push(&mut self, pkt: Packet) {
        let chunks = pkt.chunks as u32;
        debug_assert!(
            self.occupied_chunks + chunks <= self.capacity_chunks,
            "externally credited push exceeds capacity"
        );
        self.occupied_chunks += chunks;
        self.queue.push_back(pkt);
    }

    /// Push without external credit (injection/reception-side use).
    /// Returns the packet back if there is no space.
    pub fn try_push(&mut self, pkt: Packet) -> Result<(), Packet> {
        let chunks = pkt.chunks as u32;
        if chunks > self.free_chunks() {
            return Err(pkt);
        }
        self.occupied_chunks += chunks;
        self.queue.push_back(pkt);
        Ok(())
    }

    /// The head packet, if any.
    #[inline]
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Mutable head access (the router updates `plan`/`vc` in place).
    #[inline]
    pub fn head_mut(&mut self) -> Option<&mut Packet> {
        self.queue.front_mut()
    }

    /// Mutable access to the packet at queue position `idx` (head = 0).
    /// The sharded engine uses this to rewrite provisional packet ids in
    /// place during the per-cycle id fix-up.
    #[inline]
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Packet> {
        self.queue.get_mut(idx)
    }

    /// Remove and return the head packet, freeing its chunks.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.occupied_chunks -= pkt.chunks as u32;
        Some(pkt)
    }

    /// Iterate packets head-first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Vc;
    use crate::packet::{PacketMeta, RoutingMode, NO_DETOUR};
    use bgl_torus::{Coord, HopPlan, Partition, TieBreak};

    fn pkt(id: u64, chunks: u8) -> Packet {
        let part = Partition::torus(4, 4, 4);
        Packet {
            id,
            src_rank: 0,
            dst: Coord::new(1, 0, 0),
            chunks,
            payload_bytes: chunks as u32 * 32,
            plan: HopPlan::new(
                &part,
                Coord::new(0, 0, 0),
                Coord::new(1, 0, 0),
                TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: Vc::Dynamic0,
            class: 0,
            meta: PacketMeta::default(),
            longest_first: false,
            injected_at: 0,
            detour: NO_DETOUR,
        }
    }

    #[test]
    fn push_pop_accounting() {
        let mut f = ChunkFifo::new(16);
        assert!(f.is_empty());
        f.try_push(pkt(1, 8)).unwrap();
        f.try_push(pkt(2, 4)).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.occupied_chunks(), 12);
        assert_eq!(f.free_chunks(), 4);
        assert_eq!(f.pop().unwrap().id, 1);
        assert_eq!(f.free_chunks(), 12);
        assert_eq!(f.pop().unwrap().id, 2);
        assert!(f.pop().is_none());
        assert_eq!(f.free_chunks(), 16);
    }

    #[test]
    fn try_push_rejects_overflow_without_losing_packet() {
        let mut f = ChunkFifo::new(8);
        f.try_push(pkt(1, 8)).unwrap();
        let back = f.try_push(pkt(2, 1)).unwrap_err();
        assert_eq!(back.id, 2);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn credited_push_accounts_occupancy() {
        let mut f = ChunkFifo::new(16);
        f.push(pkt(1, 8));
        f.push(pkt(2, 8));
        assert_eq!(f.occupied_chunks(), 16);
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop().unwrap().id, 1);
        assert_eq!(f.occupied_chunks(), 8);
    }

    #[test]
    fn get_mut_rewrites_in_place() {
        let mut f = ChunkFifo::new(32);
        for i in 0..3 {
            f.try_push(pkt(i, 2)).unwrap();
        }
        f.get_mut(1).unwrap().id = 42;
        assert!(f.get_mut(3).is_none());
        f.pop();
        assert_eq!(f.head().unwrap().id, 42);
    }

    #[test]
    fn head_is_fifo_order() {
        let mut f = ChunkFifo::new(32);
        for i in 0..4 {
            f.try_push(pkt(i, 2)).unwrap();
        }
        assert_eq!(f.head().unwrap().id, 0);
        f.pop();
        assert_eq!(f.head().unwrap().id, 1);
        assert_eq!(f.iter().count(), 3);
    }
}
