//! Chunk-accounted packet FIFOs with space reservation (credit) support.
//!
//! Used for VC FIFOs, injection FIFOs and reception FIFOs. Capacity is in
//! chunks, not packets, matching the byte-granular BG/L buffers. Space for
//! an in-flight packet is *reserved* when its upstream arbitration wins and
//! *committed* when the packet physically arrives, so credits are never
//! oversubscribed.

use crate::packet::Packet;
use std::collections::VecDeque;

/// A packet FIFO with chunk-granular occupancy and reservations.
#[derive(Debug, Default)]
pub struct ChunkFifo {
    queue: VecDeque<Packet>,
    capacity_chunks: u32,
    occupied_chunks: u32,
    reserved_chunks: u32,
}

impl ChunkFifo {
    /// An empty FIFO holding up to `capacity_chunks` chunks.
    pub fn new(capacity_chunks: u32) -> ChunkFifo {
        ChunkFifo {
            queue: VecDeque::new(),
            capacity_chunks,
            occupied_chunks: 0,
            reserved_chunks: 0,
        }
    }

    /// Chunks neither occupied nor reserved.
    #[inline]
    pub fn free_chunks(&self) -> u32 {
        self.capacity_chunks - self.occupied_chunks - self.reserved_chunks
    }

    /// Chunks physically present.
    #[inline]
    pub fn occupied_chunks(&self) -> u32 {
        self.occupied_chunks
    }

    /// Total capacity in chunks.
    #[inline]
    pub fn capacity_chunks(&self) -> u32 {
        self.capacity_chunks
    }

    /// Chunks reserved by upstream arbitration but not yet arrived (the
    /// outstanding credit). Zero on a quiesced FIFO.
    #[inline]
    pub fn reserved_chunks(&self) -> u32 {
        self.reserved_chunks
    }

    /// Whether the FIFO holds no packets (reservations may still exist).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of packets physically present.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Reserve space for an in-flight packet of `chunks`.
    ///
    /// # Panics
    /// Panics if insufficient free space — callers must check
    /// [`free_chunks`](Self::free_chunks) first; reservation is the credit
    /// the upstream arbiter spends.
    #[inline]
    pub fn reserve(&mut self, chunks: u32) {
        assert!(chunks <= self.free_chunks(), "FIFO credit oversubscribed");
        self.reserved_chunks += chunks;
    }

    /// Cancel a reservation (packet rerouted or dropped before arrival).
    #[inline]
    pub fn unreserve(&mut self, chunks: u32) {
        debug_assert!(self.reserved_chunks >= chunks);
        self.reserved_chunks -= chunks;
    }

    /// Commit a previously reserved packet that has now arrived.
    #[inline]
    pub fn push_reserved(&mut self, pkt: Packet) {
        let chunks = pkt.chunks as u32;
        debug_assert!(self.reserved_chunks >= chunks, "push without reservation");
        self.reserved_chunks -= chunks;
        self.occupied_chunks += chunks;
        self.queue.push_back(pkt);
    }

    /// Push without a prior reservation (injection-side use). Returns the
    /// packet back if there is no space.
    pub fn try_push(&mut self, pkt: Packet) -> Result<(), Packet> {
        let chunks = pkt.chunks as u32;
        if chunks > self.free_chunks() {
            return Err(pkt);
        }
        self.occupied_chunks += chunks;
        self.queue.push_back(pkt);
        Ok(())
    }

    /// The head packet, if any.
    #[inline]
    pub fn head(&self) -> Option<&Packet> {
        self.queue.front()
    }

    /// Mutable head access (the router updates `plan`/`vc` in place).
    #[inline]
    pub fn head_mut(&mut self) -> Option<&mut Packet> {
        self.queue.front_mut()
    }

    /// Remove and return the head packet, freeing its chunks.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.queue.pop_front()?;
        self.occupied_chunks -= pkt.chunks as u32;
        Some(pkt)
    }

    /// Iterate packets head-first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Vc;
    use crate::packet::{PacketMeta, RoutingMode};
    use bgl_torus::{Coord, HopPlan, Partition, TieBreak};

    fn pkt(id: u64, chunks: u8) -> Packet {
        let part = Partition::torus(4, 4, 4);
        Packet {
            id,
            src_rank: 0,
            dst: Coord::new(1, 0, 0),
            chunks,
            payload_bytes: chunks as u32 * 32,
            plan: HopPlan::new(
                &part,
                Coord::new(0, 0, 0),
                Coord::new(1, 0, 0),
                TieBreak::SrcParity,
            ),
            routing: RoutingMode::Adaptive,
            vc: Vc::Dynamic0,
            class: 0,
            meta: PacketMeta::default(),
            longest_first: false,
            injected_at: 0,
        }
    }

    #[test]
    fn push_pop_accounting() {
        let mut f = ChunkFifo::new(16);
        assert!(f.is_empty());
        f.try_push(pkt(1, 8)).unwrap();
        f.try_push(pkt(2, 4)).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.occupied_chunks(), 12);
        assert_eq!(f.free_chunks(), 4);
        assert_eq!(f.pop().unwrap().id, 1);
        assert_eq!(f.free_chunks(), 12);
        assert_eq!(f.pop().unwrap().id, 2);
        assert!(f.pop().is_none());
        assert_eq!(f.free_chunks(), 16);
    }

    #[test]
    fn try_push_rejects_overflow_without_losing_packet() {
        let mut f = ChunkFifo::new(8);
        f.try_push(pkt(1, 8)).unwrap();
        let back = f.try_push(pkt(2, 1)).unwrap_err();
        assert_eq!(back.id, 2);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn reservation_holds_space() {
        let mut f = ChunkFifo::new(16);
        f.reserve(8);
        assert_eq!(f.free_chunks(), 8);
        assert!(f.try_push(pkt(1, 12)).is_err());
        f.try_push(pkt(1, 8)).unwrap();
        assert_eq!(f.free_chunks(), 0);
        f.push_reserved(pkt(2, 8));
        assert_eq!(f.occupied_chunks(), 16);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn unreserve_returns_credit() {
        let mut f = ChunkFifo::new(8);
        f.reserve(8);
        assert_eq!(f.free_chunks(), 0);
        f.unreserve(8);
        assert_eq!(f.free_chunks(), 8);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn over_reservation_panics() {
        let mut f = ChunkFifo::new(8);
        f.reserve(6);
        f.reserve(6);
    }

    #[test]
    fn head_is_fifo_order() {
        let mut f = ChunkFifo::new(32);
        for i in 0..4 {
            f.try_push(pkt(i, 2)).unwrap();
        }
        assert_eq!(f.head().unwrap().id, 0);
        f.pop();
        assert_eq!(f.head().unwrap().id, 1);
        assert_eq!(f.iter().count(), 3);
    }
}
