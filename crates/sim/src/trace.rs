//! Time-series tracing: periodic samples of where packets sit and which
//! links are busy, turning end-of-run aggregates into a diagnostic
//! timeline.
//!
//! The paper's central diagnosis — adaptively-routed packets piling up in
//! Y/Z VC FIFOs behind saturated long-dimension links on asymmetric tori
//! (Section 4) — is a *dynamic* phenomenon. [`NetStats`](crate::NetStats)
//! only says *that* a strategy lost throughput; a [`Trace`] shows *when*
//! and *where* the head-of-line blocking built up.
//!
//! Enable tracing by setting [`SimConfig::trace`](crate::SimConfig::trace)
//! to a [`TraceConfig`]. Every `interval_cycles` cycles the engine records
//! a [`TraceSample`]: deltas of the run counters since the previous sample
//! (link-busy chunks, hops, CPU busy, reception stalls, injections,
//! deliveries) plus an instantaneous snapshot of FIFO occupancy split by
//! dimension and by bubble-vs-dynamic VC, packets in flight, head-of-line
//! blocked FIFO heads, and phase attribution (phase-1 vs phase-2 packets
//! for the indirect strategies, identified by `PacketMeta::kind`).
//!
//! Tracing is purely observational: a run produces byte-identical
//! [`NetStats`](crate::NetStats) with tracing on or off, in every
//! [`EngineMode`](crate::EngineMode) (pinned by the engine equivalence
//! tests). In event-driven mode the engine forces a sample at each
//! skipped-interval boundary so the delta series still telescopes. With
//! tracing disabled the engine's hot loop pays one predictable branch
//! per cycle and nothing else.

use bgl_torus::Dim;
use serde::{Deserialize, Serialize};

/// Tracer configuration; attach to
/// [`SimConfig::trace`](crate::SimConfig::trace) to enable sampling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Cycles between samples. Each sample covers the window since the
    /// previous one; the engine records a final partial sample at
    /// completion so the deltas always sum to the run totals.
    pub interval_cycles: u64,
    /// Hard cap on recorded samples (memory bound for runaway or very
    /// long simulations). When reached, sampling stops and
    /// [`Trace::truncated`] is set; counter deltas after the cap are
    /// folded into the final completion sample.
    pub max_samples: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            interval_cycles: 1024,
            max_samples: 1 << 20,
        }
    }
}

impl TraceConfig {
    /// A tracer sampling every `interval_cycles` cycles (must be > 0).
    ///
    /// # Panics
    /// Panics if `interval_cycles` is zero.
    pub fn every(interval_cycles: u64) -> TraceConfig {
        assert!(interval_cycles > 0, "trace interval must be positive");
        TraceConfig {
            interval_cycles,
            ..TraceConfig::default()
        }
    }
}

/// Mean + max occupancy (in chunks) over a population of FIFOs at one
/// sampling instant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OccStat {
    /// Mean occupied chunks per FIFO.
    pub mean_chunks: f64,
    /// Largest occupied-chunk count of any FIFO in the population.
    pub max_chunks: u32,
}

/// One trace record: counter deltas over the window ending at `cycle`
/// plus an instantaneous snapshot of queue state at that cycle.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSample {
    /// Cycle the sample was taken (end of its window, inclusive).
    pub cycle: u64,
    /// Chunk-cycles each dimension's links transmitted during the window,
    /// one entry per partition dimension; summed over all samples these
    /// equal `NetStats::link_busy_chunks`.
    pub link_busy_delta: Vec<u64>,
    /// Packet-hops taken per dimension during the window.
    pub hops_delta: Vec<u64>,
    /// CPU-busy cycles accrued during the window.
    pub cpu_busy_delta: f64,
    /// Reception-FIFO stall events during the window.
    pub reception_stall_delta: u64,
    /// Packets injected during the window.
    pub injected_delta: u64,
    /// Packets delivered during the window.
    pub delivered_delta: u64,
    /// Node-cycles the engine's rate window blocked program pulls during
    /// the window (see `NetStats::pacing_blocked_cycles`).
    pub pacing_blocked_delta: u64,
    /// Credit acquisitions denied during the window (see
    /// `NetStats::credit_blocked_events`).
    pub credit_blocked_delta: u64,
    /// Packets alive in the network (injected, not yet drained) at the
    /// sampling instant.
    pub packets_in_flight: u64,
    /// Sends queued in node software (pending + pulled), not yet injected.
    pub pending_sends: u64,
    /// Dynamic-VC FIFO occupancy at the instant, split by the dimension of
    /// the input port (one entry per partition dimension).
    pub dyn_vc_occupancy: Vec<OccStat>,
    /// Bubble-VC FIFO occupancy at the instant, split by dimension.
    pub bubble_vc_occupancy: Vec<OccStat>,
    /// Injection-FIFO occupancy at the instant (all FIFOs, all nodes).
    pub inj_occupancy: OccStat,
    /// Reception-FIFO occupancy at the instant (one FIFO per node).
    pub reception_occupancy: OccStat,
    /// Transit VC-FIFO heads whose packet cannot move this cycle: every
    /// output direction its routing mode allows is either mid-transmission
    /// or out of downstream VC credit — the head-of-line blocking signal
    /// of the paper's tree-saturation story.
    pub hol_blocked_heads: u64,
    /// In-network packets with `PacketMeta::kind == 1` (phase 1 for
    /// TPS/VMesh/XYZ-style indirect strategies).
    pub phase1_in_flight: u64,
    /// In-network packets with `PacketMeta::kind == 2` (phase 2).
    pub phase2_in_flight: u64,
}

impl TraceSample {
    /// Compact single-line rendering for stall diagnostics and logs; the
    /// bracketed lists carry one entry per partition dimension.
    pub fn summary(&self) -> String {
        fn join_u64(v: &[u64]) -> String {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        fn join_max(v: &[OccStat]) -> String {
            v.iter()
                .map(|o| o.max_chunks.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        format!(
            "cycle {}: busy Δ[{}] inflight {} pending {} hol {} \
             dynVC max[{}] bubbleVC max[{}] recvQ max {} p1 {} p2 {}",
            self.cycle,
            join_u64(&self.link_busy_delta),
            self.packets_in_flight,
            self.pending_sends,
            self.hol_blocked_heads,
            join_max(&self.dyn_vc_occupancy),
            join_max(&self.bubble_vc_occupancy),
            self.reception_occupancy.max_chunks,
            self.phase1_in_flight,
            self.phase2_in_flight,
        )
    }
}

/// A completed run's time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Configured sampling interval.
    pub interval_cycles: u64,
    /// Samples in cycle order. The last sample may cover a partial window
    /// (the run's completion cycle rarely lands on an interval boundary).
    pub samples: Vec<TraceSample>,
    /// Whether the `max_samples` cap cut sampling short.
    pub truncated: bool,
}

/// CSV column order for an `n`-dimensional partition; kept next to
/// [`Trace::to_csv`] so the header and the row writer cannot drift apart.
/// Per-dimension columns are named after [`Dim::name`] (`busy_x`,
/// `busy_y`, `busy_z`, `busy_d3`, …), so the 3D header is byte-identical
/// to the historical fixed 34-column layout.
fn csv_columns(ndims: usize) -> Vec<String> {
    let dims: Vec<&str> = Dim::all(ndims).map(|d| d.name()).collect();
    let mut cols = vec!["cycle".to_string()];
    cols.extend(dims.iter().map(|d| format!("busy_{d}")));
    cols.extend(dims.iter().map(|d| format!("hops_{d}")));
    cols.extend(
        [
            "cpu_busy",
            "recv_stalls",
            "injected",
            "delivered",
            "pacing_blocked",
            "credit_blocked",
            "in_flight",
            "pending",
        ]
        .map(String::from),
    );
    for d in &dims {
        cols.push(format!("dyn_{d}_mean"));
        cols.push(format!("dyn_{d}_max"));
    }
    for d in &dims {
        cols.push(format!("bub_{d}_mean"));
        cols.push(format!("bub_{d}_max"));
    }
    cols.extend(
        [
            "inj_mean",
            "inj_max",
            "recv_mean",
            "recv_max",
            "hol_blocked",
            "phase1",
            "phase2",
        ]
        .map(String::from),
    );
    cols
}

impl Trace {
    /// Number of partition dimensions the samples were recorded on (3 for
    /// an empty trace, matching the historical default).
    pub fn ndims(&self) -> usize {
        self.samples
            .first()
            .map(|s| s.link_busy_delta.len())
            .unwrap_or(3)
    }

    /// Total link-busy chunks per dimension across all samples; equals
    /// `NetStats::link_busy_chunks` for a completed traced run.
    pub fn link_busy_totals(&self) -> Vec<u64> {
        let mut t = vec![0u64; self.ndims()];
        for s in &self.samples {
            for (d, total) in t.iter_mut().enumerate() {
                *total += s.link_busy_delta[d];
            }
        }
        t
    }

    /// The peak dynamic-VC occupancy (max chunks) seen in any sample, per
    /// dimension — the "where did packets pile up" headline number.
    pub fn peak_dyn_occupancy(&self) -> Vec<u32> {
        let mut t = vec![0u32; self.ndims()];
        for s in &self.samples {
            for (d, peak) in t.iter_mut().enumerate() {
                *peak = (*peak).max(s.dyn_vc_occupancy[d].max_chunks);
            }
        }
        t
    }

    /// Cycle range `[first, last]` during which any in-network packet
    /// carried `PacketMeta::kind == kind`, or `None` if none ever did.
    /// Phase boundaries for the indirect strategies (kind 1 / kind 2).
    pub fn phase_span(&self, kind: u8) -> Option<(u64, u64)> {
        let count = |s: &TraceSample| match kind {
            1 => s.phase1_in_flight,
            2 => s.phase2_in_flight,
            _ => 0,
        };
        let first = self.samples.iter().find(|s| count(s) > 0)?.cycle;
        let last = self.samples.iter().rev().find(|s| count(s) > 0)?.cycle;
        Some((first, last))
    }

    /// The last `n` samples, compactly rendered (stall diagnostics).
    pub fn summary_tail(&self, n: usize) -> Vec<String> {
        let start = self.samples.len().saturating_sub(n);
        self.samples[start..].iter().map(|s| s.summary()).collect()
    }

    /// RFC-4180 CSV rendering (CRLF rows, via the shared
    /// [`crate::csv::push_row`] writer): header row plus one row per
    /// sample. All cells are plain numerics, so quoting never triggers;
    /// floats are written with enough precision to round-trip.
    pub fn to_csv(&self) -> String {
        let columns = csv_columns(self.ndims());
        let mut out = String::new();
        crate::csv::push_row(&mut out, &columns, "\r\n");
        for s in &self.samples {
            let mut row: Vec<String> = vec![s.cycle.to_string()];
            row.extend(s.link_busy_delta.iter().map(|v| v.to_string()));
            row.extend(s.hops_delta.iter().map(|v| v.to_string()));
            row.extend([
                s.cpu_busy_delta.to_string(),
                s.reception_stall_delta.to_string(),
                s.injected_delta.to_string(),
                s.delivered_delta.to_string(),
                s.pacing_blocked_delta.to_string(),
                s.credit_blocked_delta.to_string(),
                s.packets_in_flight.to_string(),
                s.pending_sends.to_string(),
            ]);
            for o in s
                .dyn_vc_occupancy
                .iter()
                .chain(&s.bubble_vc_occupancy)
                .chain([&s.inj_occupancy, &s.reception_occupancy])
            {
                row.push(o.mean_chunks.to_string());
                row.push(o.max_chunks.to_string());
            }
            row.push(s.hol_blocked_heads.to_string());
            row.push(s.phase1_in_flight.to_string());
            row.push(s.phase2_in_flight.to_string());
            debug_assert_eq!(row.len(), columns.len());
            crate::csv::push_row(&mut out, &row, "\r\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, busy: [u64; 3]) -> TraceSample {
        TraceSample {
            cycle,
            link_busy_delta: busy.to_vec(),
            hops_delta: vec![0; 3],
            dyn_vc_occupancy: vec![
                OccStat {
                    mean_chunks: 1.5,
                    max_chunks: 8,
                },
                OccStat::default(),
                OccStat {
                    mean_chunks: 0.25,
                    max_chunks: 64,
                },
            ],
            bubble_vc_occupancy: vec![OccStat::default(); 3],
            phase1_in_flight: if cycle < 200 { 3 } else { 0 },
            phase2_in_flight: if cycle > 100 { 5 } else { 0 },
            ..TraceSample::default()
        }
    }

    fn trace() -> Trace {
        Trace {
            interval_cycles: 100,
            samples: vec![
                sample(100, [10, 0, 0]),
                sample(200, [5, 7, 0]),
                sample(250, [1, 2, 3]),
            ],
            truncated: false,
        }
    }

    #[test]
    fn totals_sum_deltas() {
        assert_eq!(trace().link_busy_totals(), vec![16, 9, 3]);
    }

    #[test]
    fn peak_occupancy_is_max_over_samples() {
        assert_eq!(trace().peak_dyn_occupancy(), vec![8, 0, 64]);
    }

    #[test]
    fn csv_columns_follow_dimensionality() {
        // 3D keeps the historical 34-column layout byte-for-byte.
        let three = csv_columns(3);
        assert_eq!(three.len(), 34);
        assert_eq!(three[1], "busy_x");
        assert_eq!(three[3], "busy_z");
        assert_eq!(three[15], "dyn_x_mean");
        // 2D drops the z columns; 4D gains d3 columns in each group.
        let two = csv_columns(2);
        assert_eq!(two.len(), 1 + 2 * 2 + 8 + 4 * 2 + 7);
        assert!(!two.iter().any(|c| c.contains('z')));
        let four = csv_columns(4);
        assert!(four.iter().any(|c| c == "busy_d3"));
        assert!(four.iter().any(|c| c == "bub_d3_max"));
    }

    #[test]
    fn phase_spans() {
        let t = trace();
        assert_eq!(t.phase_span(1), Some((100, 100)));
        assert_eq!(t.phase_span(2), Some((200, 250)));
        assert_eq!(t.phase_span(7), None);
    }

    #[test]
    fn summary_tail_takes_last_n() {
        let t = trace();
        let tail = t.summary_tail(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].starts_with("cycle 200:"), "{}", tail[0]);
        assert!(tail[1].starts_with("cycle 250:"), "{}", tail[1]);
        assert_eq!(t.summary_tail(99).len(), 3);
    }

    #[test]
    fn csv_is_rfc4180() {
        let csv = trace().to_csv();
        let lines: Vec<&str> = csv.split("\r\n").collect();
        // Header + 3 samples + trailing empty split.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[4], "");
        let header_cols = lines[0].split(',').count();
        for row in &lines[1..4] {
            assert_eq!(row.split(',').count(), header_cols, "{row}");
            // Plain numerics only: no quoting may ever be needed.
            assert!(!row.contains('"'), "{row}");
        }
        assert!(lines[0].starts_with("cycle,busy_x"));
        assert!(lines[1].starts_with("100,10,0,0"));
    }

    #[test]
    fn csv_header_matches_row_width() {
        // One OccStat expands to two cells; the constant lists each.
        let t = trace();
        let csv = t.to_csv();
        let mut lines = csv.split("\r\n");
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), row.split(',').count());
    }

    #[test]
    fn config_every_sets_interval() {
        let c = TraceConfig::every(512);
        assert_eq!(c.interval_cycles, 512);
        assert_eq!(c.max_samples, TraceConfig::default().max_samples);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = TraceConfig::every(0);
    }

    #[test]
    fn trace_round_trips_json() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
