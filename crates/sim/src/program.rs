//! Node programs: the "software" running on each simulated node.
//!
//! The BG/L cores do all communication work themselves (no DMA): they build
//! packets, stuff injection FIFOs, drain reception FIFOs, and — for the
//! indirect strategies — forward or combine data in software. A
//! [`NodeProgram`] models exactly that: the engine charges CPU time for
//! every action and calls the program's hooks from the simulated CPU.

use crate::flow::FlowLedger;
use crate::packet::{Packet, SendSpec};
use bgl_torus::{Coord, Partition};
use std::collections::VecDeque;

/// How the engine may schedule [`NodeProgram::next_send`] polls after a
/// decline — the contract a program makes with the event-driven engine
/// mode ([`crate::EngineMode::EventDriven`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PollHint {
    /// Poll again every cycle (the conservative default). A declined
    /// program with this hint keeps its node awake, so the event-driven
    /// engine cannot skip time while it is incomplete — correct for any
    /// program, including ones whose readiness depends on wall-clock
    /// cycle counts rather than deliveries.
    #[default]
    EveryCycle,
    /// A decline is stable until something is delivered to this node:
    /// `next_send` is pure on the decline path (no self-mutation beyond
    /// credit-denial counting) and its answer can only change via
    /// `on_packet`/`apply_credit`. The event-driven engine lets the node
    /// sleep until the next delivery instead of re-polling every cycle.
    SleepUntilDelivery,
}

/// Per-node software hooks. One boxed instance per node; all calls run "on"
/// the node's simulated CPU.
pub trait NodeProgram: Send {
    /// Called once at cycle 0, before any traffic moves. May enqueue sends
    /// via [`NodeApi::send`].
    fn start(&mut self, api: &mut NodeApi<'_>) {
        let _ = api;
    }

    /// A packet addressed to this node has been drained from the reception
    /// FIFO. The engine has already charged the drain cost; charge any
    /// additional software cost (forwarding, copies) via
    /// [`NodeApi::charge_cpu`] or by attaching `cpu_cost_cycles` to sends.
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: &Packet) {
        let _ = (api, pkt);
    }

    /// Pull the next packet to inject. Called whenever the node's pending
    /// queue is empty and the CPU has injection capacity. Return `None` to
    /// decline this cycle (the engine polls again next cycle), e.g. for
    /// paced/throttled injection.
    fn next_send(&mut self, api: &mut NodeApi<'_>) -> Option<SendSpec> {
        let _ = api;
        None
    }

    /// A packet addressed to this node was *dropped in flight* by a link
    /// fault (see [`crate::fault`]): it will never be delivered. Called
    /// outside the CPU timeline (no [`NodeApi`], no CPU charge — this
    /// models the fault notification, not software work) at the cycle the
    /// link died. Programs that count expected deliveries should account
    /// the loss here so completion still converges; the default ignores
    /// the notification. Must never turn a complete program incomplete.
    fn on_packet_dropped(&mut self, pkt: &Packet) {
        let _ = pkt;
    }

    /// `true` once this node will neither send nor expects to receive
    /// anything further. The simulation ends when every program is complete
    /// *and* the network has fully drained.
    fn is_complete(&self) -> bool;

    /// How a `None` from [`NodeProgram::next_send`] may be scheduled
    /// around (see [`PollHint`]). The default keeps legacy programs
    /// correct under every engine mode at the cost of event-skipping;
    /// programs whose declines are delivery-driven should return
    /// [`PollHint::SleepUntilDelivery`].
    fn poll_hint(&self) -> PollHint {
        PollHint::EveryCycle
    }
}

/// The runtime interface a [`NodeProgram`] sees.
pub struct NodeApi<'a> {
    /// This node's rank.
    pub rank: u32,
    /// This node's coordinate.
    pub coord: Coord,
    /// Current simulation cycle.
    pub now: u64,
    part: &'a Partition,
    sends: &'a mut VecDeque<SendSpec>,
    extra_cpu: f64,
    /// Flow-control ledger, attached by the engine. `None` (tests that
    /// drive programs directly) behaves like an unpaced ledger.
    flow: Option<&'a mut FlowLedger>,
    credit_blocked: u64,
}

impl<'a> NodeApi<'a> {
    /// Construct an API view. Used by the engine each time it runs a hook;
    /// public so strategy crates can drive programs directly in their tests.
    /// No flow-control ledger is attached: every credit is granted.
    pub fn new(
        rank: u32,
        coord: Coord,
        now: u64,
        part: &'a Partition,
        sends: &'a mut VecDeque<SendSpec>,
    ) -> NodeApi<'a> {
        NodeApi {
            rank,
            coord,
            now,
            part,
            sends,
            extra_cpu: 0.0,
            flow: None,
            credit_blocked: 0,
        }
    }

    /// Attach a flow-control ledger (engine use, and tests exercising
    /// credit windows): subsequent credit calls consult `ledger`.
    pub fn with_flow(mut self, ledger: &'a mut FlowLedger) -> NodeApi<'a> {
        self.flow = Some(ledger);
        self
    }

    /// The partition being simulated.
    pub fn partition(&self) -> &Partition {
        self.part
    }

    /// Enqueue a packet for injection. Packets are injected in FIFO order,
    /// after their `cpu_cost_cycles` (if any) plus the standard per-packet
    /// injection cost has been paid.
    pub fn send(&mut self, spec: SendSpec) {
        self.sends.push_back(spec);
    }

    /// Number of sends enqueued and not yet taken by the engine (useful
    /// to tests that drive programs directly).
    pub fn queued(&self) -> usize {
        self.sends.len()
    }

    /// Charge additional CPU time (cycles) to this node right now —
    /// software copies, message bookkeeping, etc.
    pub fn charge_cpu(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0 && cycles.is_finite());
        self.extra_cpu += cycles;
    }

    /// Total extra CPU charged during this hook invocation (engine use).
    pub(crate) fn take_extra_cpu(&mut self) -> f64 {
        std::mem::take(&mut self.extra_cpu)
    }

    /// Reserve one flow-control credit toward `intermediate` before
    /// sending it a packet that occupies its memory. Returns `true` when
    /// the send may proceed — always, unless the node is configured with
    /// [`FlowSpec::Credit`](crate::FlowSpec::Credit) and `intermediate`'s
    /// window is full (decline the send and retry later).
    pub fn try_acquire_credit(&mut self, intermediate: u32) -> bool {
        let Some(flow) = self.flow.as_deref_mut() else {
            return true;
        };
        if flow.try_acquire(intermediate) {
            true
        } else {
            self.credit_blocked += 1;
            false
        }
    }

    /// Count one credited receipt from `src`. `Some(n)` means an
    /// acknowledgement worth `n` credits is due: the program must send
    /// `src` a credit packet that ends in [`NodeApi::apply_credit`] on the
    /// other side. Always `None` without credit flow control.
    pub fn credit_receipt(&mut self, src: u32) -> Option<u32> {
        self.flow.as_deref_mut()?.receipt(src)
    }

    /// Apply `n` returned credits from `intermediate`, reopening its
    /// window. No-op without credit flow control.
    pub fn apply_credit(&mut self, intermediate: u32, n: u32) {
        if let Some(flow) = self.flow.as_deref_mut() {
            flow.apply_credit(intermediate, n);
        }
    }

    /// Credit acquisitions denied during this hook invocation (engine
    /// use: feeds `NetStats::credit_blocked_events`).
    pub(crate) fn take_credit_blocked(&mut self) -> u64 {
        std::mem::take(&mut self.credit_blocked)
    }
}

/// A trivial program that sends a fixed list of packets and counts
/// deliveries; used by the simulator's own tests and micro-benchmarks.
#[derive(Debug)]
pub struct ScriptedProgram {
    /// Packets still to send, in order.
    pub to_send: VecDeque<SendSpec>,
    /// Number of packets this node expects to receive.
    pub expect: u64,
    /// Packets received so far.
    pub received: u64,
    /// Packets bound for this node that a link fault dropped in flight
    /// (counted toward `expect`: the loss is accounted, not awaited).
    pub dropped: u64,
    /// Payload bytes received so far.
    pub received_bytes: u64,
}

impl ScriptedProgram {
    /// A program sending `sends` and expecting `expect` deliveries.
    pub fn new(sends: Vec<SendSpec>, expect: u64) -> ScriptedProgram {
        ScriptedProgram {
            to_send: sends.into(),
            expect,
            received: 0,
            dropped: 0,
            received_bytes: 0,
        }
    }

    /// A silent node: sends nothing, expects nothing.
    pub fn idle() -> ScriptedProgram {
        ScriptedProgram::new(Vec::new(), 0)
    }
}

impl NodeProgram for ScriptedProgram {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: &Packet) {
        self.received += 1;
        self.received_bytes += pkt.payload_bytes as u64;
    }

    fn next_send(&mut self, _api: &mut NodeApi<'_>) -> Option<SendSpec> {
        self.to_send.pop_front()
    }

    fn on_packet_dropped(&mut self, _pkt: &Packet) {
        self.dropped += 1;
    }

    fn is_complete(&self) -> bool {
        self.to_send.is_empty() && self.received + self.dropped >= self.expect
    }

    /// `next_send` only declines once the script is exhausted, which no
    /// delivery can undo — but the *completion* of the node is
    /// delivery-driven, so sleeping until the next delivery is exact.
    fn poll_hint(&self) -> PollHint {
        PollHint::SleepUntilDelivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SendSpec;

    #[test]
    fn scripted_program_completes_when_sent_and_received() {
        let mut p = ScriptedProgram::new(vec![SendSpec::adaptive(1, 1, 32)], 2);
        assert!(!p.is_complete());
        let part: Partition = "2x1x1".parse().unwrap();
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(0, part.coord_of(0), 0, &part, &mut q);
        assert!(p.next_send(&mut api).is_some());
        assert!(p.next_send(&mut api).is_none());
        assert!(!p.is_complete());
        p.received = 2;
        assert!(p.is_complete());
    }

    #[test]
    fn api_send_enqueues_and_charge_accumulates() {
        let part: Partition = "4x1x1".parse().unwrap();
        let mut q = VecDeque::new();
        let mut api = NodeApi::new(1, part.coord_of(1), 7, &part, &mut q);
        api.send(SendSpec::adaptive(2, 4, 100));
        api.send(SendSpec::adaptive(3, 4, 100));
        api.charge_cpu(1.5);
        api.charge_cpu(2.0);
        assert_eq!(api.take_extra_cpu(), 3.5);
        assert_eq!(api.take_extra_cpu(), 0.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].dst_rank, 2);
    }
}
