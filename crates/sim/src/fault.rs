//! Fault injection: dead or scheduled-to-die links and nodes.
//!
//! A [`FaultPlan`] on [`SimConfig`](crate::SimConfig) describes which
//! directed links (and, by expansion, whole nodes) are faulted and when.
//! Faults are either *static* (dead from cycle 0, forever) or *scheduled*
//! (`fail_at` a cycle, optionally `recover_at` a later cycle). The engine
//! applies the plan identically in every engine mode and at every shard
//! count: fault transitions happen at the top of the faulting cycle, before
//! any phase runs, so results stay byte-identical across modes.
//!
//! Semantics:
//! * A faulted directed link refuses arbitration: no packet may start
//!   crossing it while it is down.
//! * Packets already in flight on a link when it dies are *dropped by the
//!   fault*: they leave the network, release their reserved downstream
//!   credit, and are counted in `NetStats::dropped_by_fault` — never lost
//!   silently. The destination program is told via
//!   [`NodeProgram::on_packet_dropped`](crate::NodeProgram::on_packet_dropped).
//! * A node fault kills all directed links incident to the node, in both
//!   directions — `4n` directed links on a full k-ary n-dimensional torus
//!   (`2n` outgoing plus `2n` incoming; 12 in the classic 3D case), fewer
//!   when the node sits on a mesh edge. The node's CPU keeps running (the
//!   BG/L failure unit is the network interface / midplane wiring, not the
//!   compute state): its program can still inject, but nothing can leave
//!   or reach the node while it is down.

use bgl_torus::{Direction, Partition};
use serde::{de_field, Deserialize, Serialize};

/// A fault on one directed link, identified by its source node and output
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkFault {
    /// Rank of the node the link leaves.
    pub node: u32,
    /// Output direction of the link.
    pub dir: Direction,
    /// Cycle the link dies (0 = dead from the start).
    pub fail_at: u64,
    /// Cycle the link comes back, if ever. Must be `> fail_at`.
    pub recover_at: Option<u64>,
}

impl LinkFault {
    /// A link dead from cycle 0, forever.
    pub fn dead(node: u32, dir: Direction) -> LinkFault {
        LinkFault {
            node,
            dir,
            fail_at: 0,
            recover_at: None,
        }
    }
}

/// A fault on a whole node: every directed link into or out of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeFault {
    /// Rank of the faulted node.
    pub rank: u32,
    /// Cycle the node's links die (0 = dead from the start).
    pub fail_at: u64,
    /// Cycle the node's links come back, if ever. Must be `> fail_at`.
    pub recover_at: Option<u64>,
}

impl NodeFault {
    /// A node dead from cycle 0, forever.
    pub fn dead(rank: u32) -> NodeFault {
        NodeFault {
            rank,
            fail_at: 0,
            recover_at: None,
        }
    }
}

/// The full set of faults for one run.
///
/// Part of [`SimConfig`](crate::SimConfig) and of the harness `RunKey`, so
/// a faulty run can never share a result-cache slot with a healthy one.
/// The empty plan is the default and deserializes from configs written
/// before fault injection existed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize)]
pub struct FaultPlan {
    /// Individual directed-link faults.
    pub links: Vec<LinkFault>,
    /// Whole-node faults (expanded to all incident directed links).
    pub nodes: Vec<NodeFault>,
}

impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<FaultPlan, serde::Error> {
        Ok(FaultPlan {
            links: de_field(v, "links")?,
            nodes: de_field(v, "nodes")?,
        })
    }

    /// Configs predating fault injection deserialize to the empty plan.
    fn from_missing(_field: &str) -> Result<FaultPlan, serde::Error> {
        Ok(FaultPlan::default())
    }
}

/// One directed link's fail/recover schedule, produced by
/// [`FaultPlan::link_schedules`]. `link` is the dense directed-link index
/// `node · ports + direction` where `ports = 2n` for the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSchedule {
    /// Dense directed-link index (`node · ports + dir.index()`).
    pub link: usize,
    /// Cycle the link dies.
    pub fail_at: u64,
    /// Cycle the link recovers, if ever.
    pub recover_at: Option<u64>,
}

impl FaultPlan {
    /// `true` when no faults are planned (the healthy default).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }

    /// Check the plan against `part`: every rank in range, every faulted
    /// link present in the topology (mesh edges have no wrap link), every
    /// recovery after its failure, and no directed link claimed by two
    /// fault entries (which would need a merged schedule this model does
    /// not define). Returns a one-line human-readable error.
    pub fn validate(&self, part: &Partition) -> Result<(), String> {
        let p = part.num_nodes();
        for f in &self.links {
            if f.node >= p {
                return Err(format!("fault link node {} out of range (0..{p})", f.node));
            }
            if part.neighbor(part.coord_of(f.node), f.dir).is_none() {
                return Err(format!("no {} link at node {} (mesh edge)", f.dir, f.node));
            }
            check_window(f.fail_at, f.recover_at)?;
        }
        for f in &self.nodes {
            if f.rank >= p {
                return Err(format!("fault node rank {} out of range (0..{p})", f.rank));
            }
            check_window(f.fail_at, f.recover_at)?;
        }
        let ports = part.ports();
        let mut seen = vec![false; part.num_nodes() as usize * ports];
        for s in self.link_schedules(part) {
            if seen[s.link] {
                let node = (s.link / ports) as u32;
                let dir = Direction::from_index(s.link % ports);
                return Err(format!("duplicate fault on link {node}:{dir}"));
            }
            seen[s.link] = true;
        }
        Ok(())
    }

    /// Expand the plan into per-directed-link schedules: link faults map
    /// one-to-one; node faults fan out to every incident directed link in
    /// both directions. Sorted by link index so downstream consumers
    /// iterate deterministically. Call only on a validated plan.
    pub fn link_schedules(&self, part: &Partition) -> Vec<LinkSchedule> {
        let ports = part.ports();
        let mut out = Vec::new();
        for f in &self.links {
            out.push(LinkSchedule {
                link: f.node as usize * ports + f.dir.index(),
                fail_at: f.fail_at,
                recover_at: f.recover_at,
            });
        }
        for f in &self.nodes {
            let c = part.coord_of(f.rank);
            for dir in part.directions() {
                let Some(nc) = part.neighbor(c, dir) else {
                    continue;
                };
                let nb = part.rank_of(nc);
                // Outgoing link from the dead node…
                out.push(LinkSchedule {
                    link: f.rank as usize * ports + dir.index(),
                    fail_at: f.fail_at,
                    recover_at: f.recover_at,
                });
                // …and the neighbour's link back toward it.
                out.push(LinkSchedule {
                    link: nb as usize * ports + dir.opposite().index(),
                    fail_at: f.fail_at,
                    recover_at: f.recover_at,
                });
            }
        }
        out.sort_by_key(|s| s.link);
        out
    }
}

fn check_window(fail_at: u64, recover_at: Option<u64>) -> Result<(), String> {
    match recover_at {
        Some(r) if r <= fail_at => Err(format!("recover cycle {r} not after fail cycle {fail_at}")),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_torus::{Dim, Sign};

    fn xplus() -> Direction {
        Direction {
            dim: Dim::X,
            sign: Sign::Plus,
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        let part: Partition = "4x4x4".parse().unwrap();
        plan.validate(&part).unwrap();
        assert!(plan.link_schedules(&part).is_empty());
    }

    #[test]
    fn link_fault_round_trips_through_serde() {
        let plan = FaultPlan {
            links: vec![LinkFault {
                node: 3,
                dir: xplus(),
                fail_at: 100,
                recover_at: Some(200),
            }],
            nodes: vec![NodeFault::dead(7)],
        };
        let v = plan.to_value();
        assert_eq!(FaultPlan::from_value(&v).unwrap(), plan);
        // Configs written before fault injection have no `fault` field.
        assert_eq!(
            FaultPlan::from_missing("fault").unwrap(),
            FaultPlan::default()
        );
    }

    #[test]
    fn validate_rejects_out_of_range_and_bad_windows() {
        let part: Partition = "4x4".parse().unwrap();
        let plan = FaultPlan {
            links: vec![LinkFault::dead(16, xplus())],
            nodes: vec![],
        };
        assert!(plan.validate(&part).unwrap_err().contains("out of range"));
        let plan = FaultPlan {
            links: vec![],
            nodes: vec![NodeFault {
                rank: 0,
                fail_at: 50,
                recover_at: Some(50),
            }],
        };
        assert!(plan.validate(&part).unwrap_err().contains("not after"));
    }

    #[test]
    fn validate_rejects_mesh_edge_links() {
        let part = Partition::new(&[4], &[false]);
        let plan = FaultPlan {
            links: vec![LinkFault::dead(3, xplus())],
            nodes: vec![],
        };
        assert!(plan.validate(&part).unwrap_err().contains("mesh edge"));
    }

    #[test]
    fn validate_rejects_duplicates_including_node_overlap() {
        let part: Partition = "4x4x4".parse().unwrap();
        let twice = FaultPlan {
            links: vec![LinkFault::dead(0, xplus()), LinkFault::dead(0, xplus())],
            nodes: vec![],
        };
        assert!(twice.validate(&part).unwrap_err().contains("duplicate"));
        // A node fault claims all incident links; a link fault on one of
        // them is the same double-claim.
        let overlap = FaultPlan {
            links: vec![LinkFault::dead(0, xplus())],
            nodes: vec![NodeFault::dead(0)],
        };
        assert!(overlap.validate(&part).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn node_fault_expands_to_all_incident_links_both_ways() {
        let part: Partition = "4x4x4".parse().unwrap();
        let plan = FaultPlan {
            links: vec![],
            nodes: vec![NodeFault::dead(0)],
        };
        plan.validate(&part).unwrap();
        let scheds = plan.link_schedules(&part);
        // 2n outgoing plus 2n incoming directed links on a full torus:
        // 4n = 12 for this 3D partition.
        assert_eq!(scheds.len(), 4 * part.ndims());
        for s in &scheds {
            assert_eq!(s.fail_at, 0);
            assert_eq!(s.recover_at, None);
        }
        // Sorted by link index.
        assert!(scheds.windows(2).all(|w| w[0].link < w[1].link));
        // All 2n outgoing links of node 0 are present.
        for d in part.directions() {
            assert!(scheds.iter().any(|s| s.link == d.index()));
        }
    }

    #[test]
    fn node_fault_link_count_scales_with_dimensionality() {
        for (part, expect) in [
            (Partition::torus_nd(&[4, 4]), 8),
            (Partition::torus_nd(&[4, 4, 4, 4]), 16),
            (Partition::torus_nd(&[2, 2, 2, 2, 2]), 20),
        ] {
            let plan = FaultPlan {
                links: vec![],
                nodes: vec![NodeFault::dead(0)],
            };
            plan.validate(&part).unwrap();
            assert_eq!(plan.link_schedules(&part).len(), expect);
        }
    }
}
