//! The cycle-driven simulation engine.
//!
//! One cycle is the time a 32-byte chunk takes to cross a link. Each cycle
//! runs four phases, in an order fixed for determinism:
//!
//! 1. **Arrivals** — packets whose last chunk crossed a link this cycle are
//!    committed into the downstream VC FIFO (space was reserved at
//!    arbitration time, so credits are never oversubscribed).
//! 2. **Deliveries** — VC-FIFO heads that have reached their destination
//!    move into the reception FIFO (or stall, back-pressuring the network,
//!    when it is full).
//! 3. **CPU** — each node's simulated cores drain the reception FIFO
//!    (running the program's `on_packet` hook), pull new sends from the
//!    program and pay the injection costs to place packets into injection
//!    FIFOs. All costs are charged against a single per-node CPU timeline.
//! 4. **Arbitration** — every idle output link picks, round-robin, a
//!    feasible head among the 18 transit VC FIFOs and the injection FIFOs.
//!    Adaptive packets choose a dynamic VC by join-shortest-queue, with an
//!    optional dimension-ordered bubble-VC escape; deterministic packets
//!    use the bubble VC only, honouring the bubble deadlock-avoidance rule.
//!
//! The run ends when every program reports complete and no packet remains
//! anywhere; a watchdog aborts with diagnostics if traffic stops moving.
//!
//! With [`SimConfig::trace`] set, the engine additionally records a
//! [`TraceSample`] time series (see [`crate::trace`]) at a fixed cycle
//! interval — purely observational sampling that never changes results.

use crate::config::{SimConfig, Vc, NUM_VCS};
use crate::flow::FlowSpec;
use crate::node::{vc_fifo_index, NodeState, NUM_PORTS};
use crate::packet::{Packet, RoutingMode};
use crate::program::{NodeApi, NodeProgram};
use crate::stats::NetStats;
use crate::trace::{OccStat, Trace, TraceSample};
use bgl_torus::{Coord, Dim, Direction, HopPlan, Partition, TieBreak, ALL_DIMS, ALL_DIRECTIONS};

/// In-flight ring size; must exceed max packet chunks + hop latency.
const RING: usize = 64;

/// Why frozen traffic is frozen, computed from the queue state at the
/// moment the watchdog fires so a stall is diagnosable without a trace
/// run. The three causes are not exclusive and do not partition the live
/// packets — each counts a distinct blocking condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Incomplete programs with at least one full credit window (their
    /// next sends are flow-control blocked, see [`crate::flow`]).
    pub credit_blocked_nodes: usize,
    /// Total full credit windows across those nodes.
    pub closed_credit_windows: u64,
    /// Transit-FIFO head packets with every allowed output direction
    /// busy or out of downstream VC credit (head-of-line blocking).
    pub hol_blocked_heads: u64,
    /// VC FIFOs whose deliverable head found the reception FIFO full.
    pub reception_stalled_fifos: u64,
}

impl std::fmt::Display for StallBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes credit-blocked ({} closed windows), {} HOL-blocked heads, \
             {} reception-stalled FIFOs",
            self.credit_blocked_nodes,
            self.closed_credit_windows,
            self.hol_blocked_heads,
            self.reception_stalled_fifos
        )
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No packet moved and no CPU work happened for `watchdog_cycles`
    /// while traffic remained (deadlock or stuck program).
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Packets still alive in FIFOs or flight.
        live_packets: u64,
        /// Programs not yet complete.
        incomplete_programs: usize,
        /// Why the frozen traffic is frozen (credit vs HOL vs reception),
        /// snapshotted at the watchdog.
        breakdown: StallBreakdown,
        /// With tracing enabled, compact summaries of the last few
        /// [`TraceSample`]s (the final one taken at the stall itself), so
        /// a deadlock is debuggable from the error text alone. Empty when
        /// tracing was off.
        trace_tail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled {
                cycle,
                live_packets,
                incomplete_programs,
                breakdown,
                trace_tail,
            } => {
                write!(
                    f,
                    "simulation stalled at cycle {cycle}: {live_packets} live packets, \
                     {incomplete_programs} incomplete programs; {breakdown}"
                )?;
                for line in trace_tail {
                    write!(f, "\n  trace {line}")?;
                }
                Ok(())
            }
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

struct Arrival {
    node: u32,
    port: u8,
    pkt: Packet,
}

#[derive(Clone, Copy)]
enum WinSource {
    Transit { fifo: u8 },
    Inject { fifo: u8 },
}

#[derive(Clone, Copy)]
struct Win {
    source: WinSource,
    vc: Vc,
}

/// Sampling state for an enabled tracer: the accumulating [`Trace`] plus
/// a snapshot of every cumulative counter at the previous sample, so each
/// [`TraceSample`] records exact per-window deltas. Boxed behind an
/// `Option` on the engine — the disabled case costs one pointer and one
/// predictable branch per cycle.
struct Tracer {
    interval: u64,
    max_samples: usize,
    /// Cycle at which the next periodic sample fires (`u64::MAX` once the
    /// `max_samples` cap is hit).
    next_at: u64,
    last_link_busy: [u64; 3],
    last_hops: [u64; 3],
    last_cpu_busy: f64,
    last_stalls: u64,
    last_injected: u64,
    last_delivered: u64,
    last_pacing_blocked: u64,
    last_credit_blocked: u64,
    trace: Trace,
}

impl Tracer {
    fn new(cfg: &crate::trace::TraceConfig) -> Tracer {
        assert!(cfg.interval_cycles > 0, "trace interval must be positive");
        Tracer {
            interval: cfg.interval_cycles,
            max_samples: cfg.max_samples,
            next_at: cfg.interval_cycles,
            last_link_busy: [0; 3],
            last_hops: [0; 3],
            last_cpu_busy: 0.0,
            last_stalls: 0,
            last_injected: 0,
            last_delivered: 0,
            last_pacing_blocked: 0,
            last_credit_blocked: 0,
            trace: Trace {
                interval_cycles: cfg.interval_cycles,
                samples: Vec::new(),
                truncated: false,
            },
        }
    }
}

/// Independent re-derivation of the simulator's conservation laws, enabled
/// by [`SimConfig::check_invariants`]. Per-packet state lives in flat
/// vectors indexed by the engine's sequential packet ids (`Packet` itself
/// stays untouched — its size is pinned). Boxed behind an `Option` on the
/// engine like the tracer: disabled, the whole oracle costs one predictable
/// branch per cycle and per packet event.
///
/// Violations panic immediately with the cycle number, because a broken
/// invariant means every statistic after that point is untrustworthy.
struct Oracle {
    /// Per packet id: minimal hop count of its `HopPlan` at injection.
    planned_hops: Vec<u32>,
    /// Per packet id: link crossings observed so far.
    taken_hops: Vec<u32>,
    /// Per packet id: payload bytes recorded at injection.
    payload_bytes: Vec<u32>,
    /// Per packet id: whether it has been drained from a reception FIFO.
    delivered: Vec<bool>,
    delivered_count: u64,
    injected_payload: u64,
    delivered_payload: u64,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            planned_hops: Vec::new(),
            taken_hops: Vec::new(),
            payload_bytes: Vec::new(),
            delivered: Vec::new(),
            delivered_count: 0,
            injected_payload: 0,
            delivered_payload: 0,
        }
    }

    /// Record a freshly injected packet (plan not yet advanced).
    fn on_inject(&mut self, pkt: &Packet) {
        assert_eq!(
            pkt.id as usize,
            self.planned_hops.len(),
            "invariant violated: packet ids must be dense and sequential"
        );
        self.planned_hops.push(pkt.plan.total_hops());
        self.taken_hops.push(0);
        self.payload_bytes.push(pkt.payload_bytes);
        self.delivered.push(false);
        self.injected_payload += pkt.payload_bytes as u64;
    }

    /// Record one link crossing of packet `id`.
    fn on_hop(&mut self, id: u64, t: u64) {
        let i = id as usize;
        self.taken_hops[i] += 1;
        assert!(
            self.taken_hops[i] <= self.planned_hops[i],
            "invariant violated: packet {id} exceeded its planned {} hops at cycle {t}",
            self.planned_hops[i]
        );
    }

    /// Record the delivery of `pkt` (drained from a reception FIFO).
    fn on_deliver(&mut self, pkt: &Packet, t: u64) {
        let i = pkt.id as usize;
        assert!(
            i < self.delivered.len(),
            "invariant violated: delivery of unknown packet {} at cycle {t}",
            pkt.id
        );
        assert!(
            !self.delivered[i],
            "invariant violated: packet {} delivered twice (cycle {t})",
            pkt.id
        );
        assert!(
            pkt.plan.is_done(),
            "invariant violated: packet {} delivered with hops remaining (cycle {t})",
            pkt.id
        );
        assert_eq!(
            self.taken_hops[i], self.planned_hops[i],
            "invariant violated: packet {} took {} hops, plan was {} (cycle {t})",
            pkt.id, self.taken_hops[i], self.planned_hops[i]
        );
        assert_eq!(
            self.payload_bytes[i], pkt.payload_bytes,
            "invariant violated: packet {} payload changed in flight (cycle {t})",
            pkt.id
        );
        self.delivered[i] = true;
        self.delivered_count += 1;
        self.delivered_payload += pkt.payload_bytes as u64;
    }
}

/// A lazily-cleared bitset over node indices, scanned in ascending index
/// order (never hash order) so the active-set engine visits nodes in
/// exactly the sequence the full scan would.
///
/// The engine maintains the invariant that every node with work is marked;
/// a marked node that turns out to be idle is cleared when visited. Bits
/// are only ever *set* for other nodes between phases (arrivals mark
/// arbitration work, deliveries mark CPU work), so a phase can iterate a
/// snapshot of each word without missing work.
struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// A set over `n` nodes with every node marked (the engine prunes
    /// lazily from the conservative side).
    fn all(n: usize) -> ActiveSet {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        ActiveSet { words }
    }

    #[inline]
    fn mark(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1 << (i & 63));
    }
}

/// The simulator.
pub struct Engine {
    cfg: SimConfig,
    part: Partition,
    now: u64,
    nodes: Vec<NodeState>,
    programs: Vec<Box<dyn NodeProgram>>,
    /// `neighbors[n][dir]`: node on the other end of the link, or
    /// `u32::MAX` at a mesh edge.
    neighbors: Vec<[u32; 6]>,
    /// `busy_until[n*6+dir]`.
    link_busy_until: Vec<u64>,
    ring: Vec<Vec<Arrival>>,
    deliver_q: Vec<(u32, u8)>,
    /// Nodes that may have CPU work (non-empty reception/pending/pulled
    /// queues, or a program that has not declared completion).
    cpu_active: ActiveSet,
    /// Nodes that may have a packet to arbitrate out (non-zero `vc_mask`
    /// or `inj_mask`).
    arb_active: ActiveSet,
    /// Reference mode: scan every node every cycle (see
    /// `SimConfig::full_scan_engine`).
    full_scan: bool,
    live_packets: u64,
    pending_total: u64,
    done_programs: usize,
    next_packet_id: u64,
    stats: NetStats,
    last_progress: u64,
    started: bool,
    /// Time-series sampler; `None` unless `SimConfig::trace` is set.
    tracer: Option<Box<Tracer>>,
    /// Conservation-law oracle; `None` unless
    /// `SimConfig::check_invariants` is set.
    oracle: Option<Box<Oracle>>,
}

impl Engine {
    /// Build an engine over `cfg` with one program per node (rank order).
    ///
    /// # Panics
    /// Panics if `programs.len() != partition.num_nodes()` or the
    /// configuration is internally inconsistent.
    pub fn new(cfg: SimConfig, programs: Vec<Box<dyn NodeProgram>>) -> Engine {
        let part = cfg.partition;
        let p = part.num_nodes() as usize;
        assert_eq!(programs.len(), p, "need exactly one program per node");
        assert!(
            (8 + cfg.router.hop_latency_cycles as usize) < RING,
            "hop latency too large for the in-flight ring"
        );
        assert!(
            cfg.cpu.chunks_per_cycle > 0.0,
            "CPU bandwidth must be positive"
        );
        assert!(cfg.inj_fifo_count <= 32, "inj_mask is a u32 bitmask");
        cfg.flow.validate();
        let nodes: Vec<NodeState> = (0..p as u32)
            .map(|r| NodeState::new(part.coord_of(r), &cfg))
            .collect();
        let neighbors: Vec<[u32; 6]> = (0..p as u32)
            .map(|r| {
                let c = part.coord_of(r);
                let mut row = [u32::MAX; 6];
                for d in ALL_DIRECTIONS {
                    if let Some(nc) = part.neighbor(c, d) {
                        row[d.index()] = part.rank_of(nc);
                    }
                }
                row
            })
            .collect();
        let stats = NetStats {
            latency_histogram: vec![0; crate::stats::LATENCY_BUCKETS],
            link_busy_per_link: if cfg.detailed_link_stats {
                vec![0; p * 6]
            } else {
                Vec::new()
            },
            ..NetStats::default()
        };
        let full_scan = cfg.full_scan_engine;
        let tracer = cfg.trace.as_ref().map(|tc| Box::new(Tracer::new(tc)));
        let oracle = cfg.check_invariants.then(|| Box::new(Oracle::new()));
        Engine {
            cfg,
            part,
            now: 0,
            nodes,
            programs,
            neighbors,
            link_busy_until: vec![0; p * 6],
            ring: (0..RING).map(|_| Vec::new()).collect(),
            deliver_q: Vec::new(),
            cpu_active: ActiveSet::all(p),
            arb_active: ActiveSet::all(p),
            full_scan,
            live_packets: 0,
            pending_total: 0,
            done_programs: 0,
            next_packet_id: 0,
            stats,
            last_progress: 0,
            started: false,
            tracer,
            oracle,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Run to completion. Returns the final statistics.
    pub fn run(&mut self) -> Result<NetStats, SimError> {
        if !self.started {
            self.start_programs();
        }
        while !self.is_complete() {
            if self.now >= self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.now.saturating_sub(self.last_progress) > self.cfg.watchdog_cycles {
                // Capture the stalled queue state itself as a final
                // sample, then report the tail: the last windows before
                // the deadlock plus the frozen snapshot.
                if self.tracer.is_some() {
                    self.record_trace_sample(true);
                }
                let trace_tail = self
                    .tracer
                    .as_ref()
                    .map(|t| t.trace.summary_tail(4))
                    .unwrap_or_default();
                return Err(SimError::Stalled {
                    cycle: self.now,
                    live_packets: self.live_packets + self.pending_total,
                    incomplete_programs: self.programs.len() - self.done_programs,
                    breakdown: self.stall_breakdown(),
                    trace_tail,
                });
            }
            self.step();
        }
        if self.oracle.is_some() {
            self.oracle_quiesce_check();
        }
        Ok(self.stats.clone())
    }

    /// Whether the simulation has fully drained and every program reports
    /// complete.
    pub fn is_complete(&self) -> bool {
        self.started
            && self.live_packets == 0
            && self.pending_total == 0
            && self.done_programs == self.programs.len()
    }

    fn start_programs(&mut self) {
        self.started = true;
        let mut programs = std::mem::take(&mut self.programs);
        for (i, prog) in programs.iter_mut().enumerate() {
            let node = &mut self.nodes[i];
            let before = node.pending.len();
            let mut api = NodeApi::new(i as u32, node.coord, 0, &self.part, &mut node.pending)
                .with_flow(&mut node.flow);
            prog.start(&mut api);
            let extra = api.take_extra_cpu();
            self.stats.credit_blocked_events += api.take_credit_blocked();
            let after = node.pending.len();
            // Anchoring at `max(cpu_free, now)` is implicit here: `start`
            // runs at cycle 0 with every `cpu_free` still 0.0.
            node.cpu_free += extra;
            self.pending_total += (after - before) as u64;
            if prog.is_complete() {
                node.program_done = true;
                self.done_programs += 1;
            }
        }
        self.programs = programs;
    }

    /// Advance one cycle (starting the programs first if needed).
    pub fn step(&mut self) {
        if !self.started {
            self.start_programs();
        }
        let t = self.now;
        self.phase_arrivals(t);
        self.phase_deliveries(t);
        self.phase_cpu(t);
        self.phase_arbitration(t);
        self.now = t + 1;
        // Cycle-boundary oracle sweep: all four phases have run, so the
        // global counters must agree and no FIFO may be over its credit
        // budget. Disabled, this is one predictable branch per cycle.
        if self.oracle.is_some() {
            self.oracle_cycle_check(t);
        }
        // The only tracing cost in the disabled case: one predictable
        // branch per cycle (None → fall through).
        if let Some(tr) = &self.tracer {
            if self.now >= tr.next_at {
                self.record_trace_sample(false);
            }
        }
    }

    // ---- Phase 1: arrivals -------------------------------------------------

    fn phase_arrivals(&mut self, t: u64) {
        let slot = (t % RING as u64) as usize;
        let mut arrivals = std::mem::take(&mut self.ring[slot]);
        for Arrival { node, port, pkt } in arrivals.drain(..) {
            let n = &mut self.nodes[node as usize];
            let fi = vc_fifo_index(port as usize, pkt.vc.index());
            let was_empty = n.vcs[fi].is_empty();
            let done = pkt.plan.is_done();
            n.vcs[fi].push_reserved(pkt);
            n.vc_mask |= 1 << fi;
            self.arb_active.mark(node as usize);
            if was_empty && done {
                self.deliver_q.push((node, fi as u8));
            }
            self.last_progress = t;
        }
        self.ring[slot] = arrivals; // hand the allocation back
    }

    // ---- Phase 2: deliveries ----------------------------------------------

    fn phase_deliveries(&mut self, t: u64) {
        if self.deliver_q.is_empty() {
            return;
        }
        let mut dq = std::mem::take(&mut self.deliver_q);
        for (node, fi) in dq.drain(..) {
            self.try_deliver(node as usize, fi as usize, t);
        }
        // Hand the allocation back. `try_deliver` parks stalled FIFOs in
        // the node's `blocked_deliveries` (re-queued here only after the
        // CPU frees reception space), so nothing lands in `deliver_q`
        // during the loop above.
        debug_assert!(self.deliver_q.is_empty());
        self.deliver_q = dq;
    }

    /// Move deliverable head packets of `fifo` into the reception FIFO.
    fn try_deliver(&mut self, node: usize, fifo: usize, t: u64) {
        loop {
            let n = &mut self.nodes[node];
            let Some(head) = n.vcs[fifo].head() else {
                return;
            };
            if !head.plan.is_done() {
                return;
            }
            let chunks = head.chunks as u32;
            if n.reception.free_chunks() < chunks {
                self.stats.reception_stall_events += 1;
                if !n.blocked_deliveries.contains(&(fifo as u8)) {
                    n.blocked_deliveries.push(fifo as u8);
                }
                return;
            }
            let pkt = n.vcs[fifo].pop().expect("head exists");
            if n.vcs[fifo].is_empty() {
                n.vc_mask &= !(1 << fifo);
            }
            assert!(n.reception.try_push(pkt).is_ok(), "space checked");
            self.cpu_active.mark(node);
            self.last_progress = t;
        }
    }

    // ---- Phase 3: CPU ------------------------------------------------------

    fn phase_cpu(&mut self, t: u64) {
        let mut programs = std::mem::take(&mut self.programs);
        if self.full_scan {
            for (i, prog) in programs.iter_mut().enumerate() {
                self.cpu_visit(i, prog, t, false);
            }
        } else {
            // A node acquires CPU work only through a reception-FIFO push
            // (which marks it) or through its own hooks (it is being
            // visited), so iterating a snapshot of each word misses
            // nothing. Idle marked nodes are cleared as they are visited.
            for w in 0..self.cpu_active.words.len() {
                let mut bits = self.cpu_active.words[w];
                while bits != 0 {
                    let i = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.cpu_visit(i, &mut programs[i], t, true);
                }
            }
        }
        self.programs = programs;
    }

    /// Run one node's CPU for cycle `t` if it has work; with `prune`,
    /// drop provably workless nodes from the active set.
    fn cpu_visit(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64, prune: bool) {
        let horizon = (t + 1) as f64;
        {
            let n = &self.nodes[i];
            if n.cpu_free >= horizon {
                // Still booked into the future: keep it marked.
                return;
            }
            if n.reception.is_empty()
                && n.pending.is_empty()
                && n.pulled.is_empty()
                && n.program_done
            {
                if prune {
                    // Only a delivery can give this node CPU work again,
                    // and deliveries re-mark it.
                    self.cpu_active.clear(i);
                }
                return;
            }
        }
        self.cpu_node(i, prog, t);
    }

    /// Below this pending-queue depth the engine keeps pulling the
    /// program's own sends, so reactive sends waiting for FIFO space do not
    /// starve a node's proactive schedule.
    const PULL_THRESHOLD: usize = 8;

    fn cpu_node(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64) {
        let horizon = (t + 1) as f64;
        let mut declined = false;
        for _guard in 0..64 {
            if self.nodes[i].cpu_free >= horizon {
                break;
            }
            // Reception drain has priority: it keeps the network moving.
            if !self.nodes[i].reception.is_empty() {
                self.cpu_drain_one(i, prog, t);
                continue;
            }
            // Top up the pulled queue from the program's schedule.
            if self.nodes[i].pulled.len() < Self::PULL_THRESHOLD
                && !self.nodes[i].program_done
                && !declined
            {
                if self.rate_blocked(i, t) {
                    // Engine-enforced rate window: the program is not
                    // polled for new sends until `next_allowed`. The
                    // completion check still runs, exactly as if the
                    // program had declined the pull itself.
                    declined = true;
                    self.stats.pacing_blocked_cycles += 1;
                    if prog.is_complete() && !self.nodes[i].program_done {
                        self.nodes[i].program_done = true;
                        self.done_programs += 1;
                    }
                } else {
                    let node = &mut self.nodes[i];
                    let before = node.pending.len();
                    let mut api =
                        NodeApi::new(i as u32, node.coord, t, &self.part, &mut node.pending)
                            .with_flow(&mut node.flow);
                    let spec = prog.next_send(&mut api);
                    let extra = api.take_extra_cpu();
                    self.stats.credit_blocked_events += api.take_credit_blocked();
                    let after = node.pending.len();
                    if extra > 0.0 {
                        // Anchor at now: a node idle since an earlier cycle
                        // must not absorb the charge retroactively (its stale
                        // `cpu_free` may lie far in the past).
                        node.cpu_free = node.cpu_free.max(t as f64) + extra;
                        self.stats.cpu_busy_cycles += extra;
                    }
                    self.pending_total += (after - before) as u64;
                    match spec {
                        Some(s) => {
                            self.rate_charge(i, t, s.chunks);
                            self.nodes[i].pulled.push_back(s);
                            self.pending_total += 1;
                        }
                        None => {
                            declined = true;
                            if prog.is_complete() && !self.nodes[i].program_done {
                                self.nodes[i].program_done = true;
                                self.done_programs += 1;
                            }
                        }
                    }
                }
            }
            if self.nodes[i].pending.is_empty() && self.nodes[i].pulled.is_empty() {
                break;
            }
            if !self.cpu_inject_one(i, t) {
                break; // no injection FIFO can take any queued packet now
            }
        }
    }

    /// Whether the engine-level rate window ([`FlowSpec::Rate`]) blocks
    /// pulling new sends from node `i`'s program at cycle `t`.
    fn rate_blocked(&self, i: usize, t: u64) -> bool {
        matches!(self.cfg.flow, FlowSpec::Rate { .. })
            && (t as f64) < self.nodes[i].flow.next_allowed
    }

    /// Advance node `i`'s rate window after pulling a `chunks`-chunk send
    /// at cycle `t`. No-op unless the flow spec is [`FlowSpec::Rate`].
    fn rate_charge(&mut self, i: usize, t: u64, chunks: u8) {
        if let FlowSpec::Rate { chunks_per_cycle } = self.cfg.flow {
            let ledger = &mut self.nodes[i].flow;
            ledger.next_allowed =
                ledger.next_allowed.max(t as f64) + chunks as f64 / chunks_per_cycle;
        }
    }

    /// Drain one packet from the reception FIFO and run `on_packet`.
    fn cpu_drain_one(&mut self, i: usize, prog: &mut Box<dyn NodeProgram>, t: u64) {
        let cpu = &self.cfg.cpu;
        let node = &mut self.nodes[i];
        let pkt = node.reception.pop().expect("checked non-empty");
        let cost = cpu.per_packet_receive_cycles + pkt.chunks as f64 / cpu.chunks_per_cycle;
        node.cpu_free = node.cpu_free.max(t as f64) + cost;
        self.stats.cpu_busy_cycles += cost;
        self.stats.packets_delivered += 1;
        self.stats.payload_bytes_delivered += pkt.payload_bytes as u64;
        let latency = t - pkt.injected_at;
        self.stats.total_latency_cycles += latency;
        self.stats.max_latency_cycles = self.stats.max_latency_cycles.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1)
            .min(crate::stats::LATENCY_BUCKETS - 1);
        self.stats.latency_histogram[bucket] += 1;
        self.stats.completion_cycle = t;
        if let Some(o) = &mut self.oracle {
            o.on_deliver(&pkt, t);
        }
        let before = node.pending.len();
        let mut api = NodeApi::new(i as u32, node.coord, t, &self.part, &mut node.pending)
            .with_flow(&mut node.flow);
        prog.on_packet(&mut api, &pkt);
        let extra = api.take_extra_cpu();
        self.stats.credit_blocked_events += api.take_credit_blocked();
        let after = node.pending.len();
        node.cpu_free += extra;
        self.stats.cpu_busy_cycles += extra;
        self.pending_total += (after - before) as u64;
        self.live_packets -= 1;
        if !node.program_done && prog.is_complete() {
            node.program_done = true;
            self.done_programs += 1;
        }
        // Freed reception space: retry stalled deliveries.
        let blocked = std::mem::take(&mut self.nodes[i].blocked_deliveries);
        self.deliver_q
            .extend(blocked.into_iter().map(|f| (i as u32, f)));
        self.last_progress = t;
    }

    /// How far into the pending queue the injector looks for a packet whose
    /// class FIFO has room: without this, one full class FIFO would
    /// head-of-line block packets of other classes (e.g. TPS phase-1
    /// packets stuck behind a congested phase-2 forward).
    const INJECT_SCAN: usize = 16;

    /// Pay for and inject the first injectable pending send. Returns false
    /// if no injection FIFO currently accepts any of the first
    /// [`INJECT_SCAN`](Self::INJECT_SCAN) pending packets.
    fn cpu_inject_one(&mut self, i: usize, t: u64) -> bool {
        let nfifos = self.nodes[i].inj.len();
        let mut chosen = None;
        let reactive_len = self.nodes[i].pending.len().min(Self::INJECT_SCAN);
        let pulled_len = self.nodes[i].pulled.len().min(Self::INJECT_SCAN);
        'scan: for qi in 0..reactive_len + pulled_len {
            let spec = if qi < reactive_len {
                &self.nodes[i].pending[qi]
            } else {
                &self.nodes[i].pulled[qi - reactive_len]
            };
            let chunks = spec.chunks;
            let class = spec.class;
            debug_assert!((1..=8).contains(&chunks), "packet must be 1..=8 chunks");
            // Direction-affine placement: BG/L messaging software binds
            // injection FIFOs to link directions so one FIFO's blocked head
            // never starves an idle link of a different direction. Map the
            // packet's first route direction onto the FIFOs of its class,
            // falling back to any class FIFO with space.
            let dst = self.part.coord_of(spec.dst_rank);
            let plan = HopPlan::new(&self.part, self.nodes[i].coord, dst, TieBreak::SrcParity);
            let primary = plan.dimension_order_next().map_or(0, |d| d.index());
            let mask = 1u8 << class;
            let node = &self.nodes[i];
            let eligible_count = (0..nfifos)
                .filter(|&f| node.inj_class[f] & mask != 0)
                .count();
            if eligible_count == 0 {
                continue;
            }
            let target = primary % eligible_count;
            let pref = (0..nfifos)
                .filter(|&f| node.inj_class[f] & mask != 0)
                .nth(target)
                .expect("target < eligible_count");
            if node.inj[pref].free_chunks() >= chunks as u32 {
                chosen = Some((qi, pref, plan));
                break 'scan;
            }
            for f in 0..nfifos {
                if node.inj_class[f] & mask != 0 && node.inj[f].free_chunks() >= chunks as u32 {
                    chosen = Some((qi, f, plan));
                    break 'scan;
                }
            }
        }
        let Some((qi, f, plan)) = chosen else {
            return false;
        };
        let node = &mut self.nodes[i];
        let spec = if qi < reactive_len {
            node.pending.remove(qi).expect("scanned index exists")
        } else {
            node.pulled
                .remove(qi - reactive_len)
                .expect("scanned index exists")
        };
        self.pending_total -= 1;
        let cpu = &self.cfg.cpu;
        let cost = spec.cpu_cost_cycles
            + cpu.per_packet_inject_cycles
            + spec.chunks as f64 / cpu.chunks_per_cycle;
        node.cpu_free = node.cpu_free.max(t as f64) + cost;
        self.stats.cpu_busy_cycles += cost;
        let dst = self.part.coord_of(spec.dst_rank);
        assert_ne!(dst, node.coord, "programs must not send to themselves");
        let pkt = Packet {
            id: self.next_packet_id,
            src_rank: i as u32,
            dst,
            chunks: spec.chunks,
            payload_bytes: spec.payload_bytes,
            // The plan computed for FIFO affinity during the scan, reused.
            plan,
            routing: spec.routing,
            vc: Vc::Dynamic0,
            class: spec.class,
            meta: spec.meta,
            longest_first: spec.longest_first,
            injected_at: t,
        };
        self.next_packet_id += 1;
        if let Some(o) = &mut self.oracle {
            o.on_inject(&pkt);
        }
        assert!(node.inj[f].try_push(pkt).is_ok(), "space checked");
        node.inj_mask |= 1 << f;
        self.arb_active.mark(i);
        self.live_packets += 1;
        self.stats.packets_injected += 1;
        self.last_progress = t;
        true
    }

    // ---- Phase 4: arbitration ----------------------------------------------

    fn phase_arbitration(&mut self, t: u64) {
        if self.full_scan {
            for n in 0..self.nodes.len() {
                // Quick skip: nothing to move out of this node.
                if self.nodes[n].vc_mask == 0 && self.nodes[n].inj_mask == 0 {
                    continue;
                }
                self.arbitrate_node(n, t, false);
            }
        } else {
            // A node acquires arbitration work only through an arrival
            // commit (which marks it) or its own injections (phase 3
            // marks it), never from another node's arbitration — wins
            // hand packets to the in-flight ring, not directly to the
            // neighbour's FIFOs — so a snapshot scan misses nothing.
            for w in 0..self.arb_active.words.len() {
                let mut bits = self.arb_active.words[w];
                while bits != 0 {
                    let n = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if self.nodes[n].vc_mask == 0 && self.nodes[n].inj_mask == 0 {
                        self.arb_active.clear(n);
                        continue;
                    }
                    self.arbitrate_node(n, t, true);
                }
            }
        }
    }

    /// Occupied-FIFO count above which the sendable-directions summary is
    /// skipped. Building the summary costs one pass over every head; the
    /// per-direction probes it can skip are passes that *stop at the
    /// first winner*. With many heads queued, probes win almost
    /// immediately and the full build costs more than it saves — the
    /// summary pays off exactly in the sparse regime it exists for.
    const SUMMARY_MAX_HEADS: u32 = 6;

    /// Arbitrate every output link of node `n`. With `use_summary`, probe
    /// only the directions some queued head actually wants (a 6-bit
    /// summary built from the FIFO heads, extended when a win exposes a
    /// new head) instead of scanning all FIFOs per link. The summary is
    /// built lazily, on the first *free* link: under saturation most
    /// links are mid-transmission and the busy check alone disposes of
    /// them, so an eager build would cost a head scan per node-cycle for
    /// nothing. Nodes with many occupied FIFOs skip it entirely (see
    /// [`SUMMARY_MAX_HEADS`](Self::SUMMARY_MAX_HEADS)).
    fn arbitrate_node(&mut self, n: usize, t: u64, use_summary: bool) {
        let use_summary = use_summary && {
            let node = &self.nodes[n];
            node.vc_mask.count_ones() + node.inj_mask.count_ones() <= Self::SUMMARY_MAX_HEADS
        };
        let mut summary: Option<u8> = if use_summary { None } else { Some(0x3f) };
        for d in ALL_DIRECTIONS {
            let link = n * 6 + d.index();
            if self.link_busy_until[link] > t {
                continue;
            }
            let nb = self.neighbors[n][d.index()];
            if nb == u32::MAX {
                continue;
            }
            let s = match summary {
                Some(s) => s,
                None => {
                    let s = self.sendable_dirs(n);
                    summary = Some(s);
                    s
                }
            };
            if s & (1 << d.index()) == 0 {
                continue;
            }
            if let Some(win) = self.arbitrate_output(n, d, nb as usize, t) {
                self.apply_win(n, d, nb as usize, win, t);
                if use_summary && s != 0x3f {
                    // The pop exposed a new head whose wanted directions
                    // the start-of-visit summary may not cover.
                    let head = match win.source {
                        WinSource::Transit { fifo } => self.nodes[n].vcs[fifo as usize].head(),
                        WinSource::Inject { fifo } => self.nodes[n].inj[fifo as usize].head(),
                    };
                    if let Some(pkt) = head {
                        summary = Some(s | Self::wanted_dirs(pkt));
                    }
                }
            }
        }
    }

    /// Union of [`wanted_dirs`](Self::wanted_dirs) over every FIFO head of
    /// node `n`: the only output directions arbitration could possibly
    /// assign this cycle. Stops as soon as all six directions are covered
    /// — under saturation a couple of heads suffice, so the build stays
    /// O(1) in the dense regime where the summary cannot skip anything.
    fn sendable_dirs(&self, n: usize) -> u8 {
        const ALL: u8 = 0x3f;
        let node = &self.nodes[n];
        let mut dirs = 0u8;
        let mut vcs = node.vc_mask;
        while vcs != 0 && dirs != ALL {
            let f = vcs.trailing_zeros() as usize;
            vcs &= vcs - 1;
            dirs |= Self::wanted_dirs(node.vcs[f].head().expect("mask says non-empty"));
        }
        let mut inj = node.inj_mask;
        while inj != 0 && dirs != ALL {
            let f = inj.trailing_zeros() as usize;
            inj &= inj - 1;
            dirs |= Self::wanted_dirs(node.inj[f].head().expect("mask says non-empty"));
        }
        dirs
    }

    /// Bitmask of output directions `pkt` may take: a conservative
    /// superset of the directions [`wants`](Self::wants) approves. Every
    /// direction `wants` can return true for — preferred, unshaped
    /// minimal, dimension-ordered escape, deterministic next hop — lies
    /// along the packet's remaining minimal quadrant, so the quadrant
    /// bits suffice. Over-inclusion only costs a wasted probe (identical
    /// to what the full scan does on every direction); under-inclusion
    /// would change results, so this must stay a superset of `wants`.
    fn wanted_dirs(pkt: &Packet) -> u8 {
        let mut dirs = 0u8;
        for d in pkt.plan.minimal_directions() {
            dirs |= 1 << d.index();
        }
        dirs
    }

    /// Pick a winner for output `d` of node `n`, or `None`.
    fn arbitrate_output(&self, n: usize, d: Direction, nb: usize, t: u64) -> Option<Win> {
        let inject_first = !self.cfg.router.transit_priority && (t & 1) == 1;
        if inject_first {
            if let Some(w) = self.arbitrate_inject(n, d, nb) {
                return Some(w);
            }
        }
        if let Some(w) = self.arbitrate_transit(n, d, nb) {
            return Some(w);
        }
        if !inject_first {
            return self.arbitrate_inject(n, d, nb);
        }
        None
    }

    fn arbitrate_transit(&self, n: usize, d: Direction, nb: usize) -> Option<Win> {
        let node = &self.nodes[n];
        if node.vc_mask == 0 {
            return None;
        }
        let total = NUM_PORTS * NUM_VCS;
        let start = node.rr[d.index()] as usize % total;
        // Visit only the set bits, in round-robin order from `start`:
        // first the bits at indices >= start (ascending), then the wrap.
        let below_start = node.vc_mask & ((1u32 << start) - 1);
        for mut half in [node.vc_mask ^ below_start, below_start] {
            while half != 0 {
                let f = half.trailing_zeros() as usize;
                half &= half - 1;
                let pkt = node.vcs[f].head().expect("mask says non-empty");
                if !self.wants(pkt, d) {
                    continue;
                }
                let from_dim = Some(f / NUM_VCS / 2); // port index / 2 = dimension
                if let Some(vc) = self.feasible_vc(pkt, n, from_dim, d, nb) {
                    return Some(Win {
                        source: WinSource::Transit { fifo: f as u8 },
                        vc,
                    });
                }
            }
        }
        None
    }

    fn arbitrate_inject(&self, n: usize, d: Direction, nb: usize) -> Option<Win> {
        let node = &self.nodes[n];
        let mut mask = node.inj_mask;
        while mask != 0 {
            let f = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let pkt = node.inj[f].head().expect("mask says non-empty");
            if !self.wants(pkt, d) {
                continue;
            }
            if let Some(vc) = self.feasible_vc(pkt, n, None, d, nb) {
                return Some(Win {
                    source: WinSource::Inject { fifo: f as u8 },
                    vc,
                });
            }
        }
        None
    }

    /// Whether this packet routes with the longest-first shaping (its own
    /// flag unless the router config overrides it).
    fn shaped(&self, pkt: &Packet) -> bool {
        self.cfg
            .router
            .longest_first_bias
            .unwrap_or(pkt.longest_first)
    }

    /// Longest-remaining-dimension preference: true when no other dimension
    /// has more hops left than `d.dim`. With the bias enabled, adaptive
    /// packets move only along their longest remaining dimension(s): on an
    /// asymmetric torus they spend bottleneck-dimension hops while
    /// bottleneck links are reachable instead of burning the short
    /// dimensions first and piling up behind the long one — the tree
    /// saturation Section 3.2 of the paper describes. On a symmetric torus
    /// hop counts stay balanced, so near-full adaptivity is retained.
    fn prefers(pkt: &Packet, d: Direction) -> bool {
        let here = pkt.plan.hops(d.dim);
        ALL_DIMS.iter().all(|&o| pkt.plan.hops(o) <= here)
    }

    /// True when every preferred direction of `pkt` at node `n` lacks
    /// dynamic-VC credit downstream — the precondition for taking the
    /// dimension-ordered escape from a non-preferred output.
    fn preferred_blocked(&self, n: usize, pkt: &Packet) -> bool {
        let chunks = pkt.chunks as u32;
        for dir in pkt.plan.minimal_directions() {
            if !Self::prefers(pkt, dir) {
                continue;
            }
            let nb = self.neighbors[n][dir.index()];
            if nb == u32::MAX {
                continue;
            }
            let nb_node = &self.nodes[nb as usize];
            let nb_port = dir.opposite().index();
            for vc in 0..2 {
                if nb_node.vcs[vc_fifo_index(nb_port, vc)].free_chunks() >= chunks {
                    return false;
                }
            }
        }
        true
    }

    /// Does `pkt`'s routing allow it to take output `d`? Adaptive packets
    /// under the longest-first bias move only along preferred (longest
    /// remaining) dimensions, plus the dimension-ordered direction, which
    /// stays available as the deadlock-free bubble escape.
    fn wants(&self, pkt: &Packet, d: Direction) -> bool {
        match pkt.routing {
            RoutingMode::Adaptive => {
                if pkt.plan.direction(d.dim) != Some(d) {
                    return false;
                }
                if !self.shaped(pkt) {
                    return true;
                }
                Self::prefers(pkt, d) || pkt.plan.dimension_order_next() == Some(d)
            }
            RoutingMode::Deterministic => pkt.plan.dimension_order_next() == Some(d),
        }
    }

    /// Choose the downstream VC for `pkt` over output `d`, or `None` if no
    /// VC has credit. `from_dim` is the dimension of the input port the
    /// packet currently occupies (`None` for injection).
    fn feasible_vc(
        &self,
        pkt: &Packet,
        n: usize,
        from_dim: Option<usize>,
        d: Direction,
        nb: usize,
    ) -> Option<Vc> {
        let chunks = pkt.chunks as u32;
        let nb_port = d.opposite().index();
        let nb_node = &self.nodes[nb];
        match pkt.routing {
            RoutingMode::Adaptive => {
                // Under the bias, a non-preferred (dimension-order-only)
                // direction is an escape path: bubble VC only, and only
                // once every preferred direction is credit-blocked —
                // otherwise the escape becomes a side door that leaks
                // short-dimension hops and recreates the congestion it
                // exists to break.
                if self.shaped(pkt) && !Self::prefers(pkt, d) {
                    if self.cfg.router.adaptive_bubble_escape
                        && pkt.plan.dimension_order_next() == Some(d)
                        && self.preferred_blocked(n, pkt)
                    {
                        return self.bubble_feasible(pkt, from_dim, d, nb_node, nb_port);
                    }
                    return None;
                }
                let f0 = nb_node.vcs[vc_fifo_index(nb_port, 0)].free_chunks();
                let f1 = nb_node.vcs[vc_fifo_index(nb_port, 1)].free_chunks();
                let c0 = f0 >= chunks;
                let c1 = f1 >= chunks;
                match (c0, c1) {
                    // Join the shorter queue = the FIFO with more free space.
                    (true, true) => Some(match f0.cmp(&f1) {
                        std::cmp::Ordering::Greater => Vc::Dynamic0,
                        std::cmp::Ordering::Less => Vc::Dynamic1,
                        std::cmp::Ordering::Equal => {
                            if pkt.id & 1 == 0 {
                                Vc::Dynamic0
                            } else {
                                Vc::Dynamic1
                            }
                        }
                    }),
                    (true, false) => Some(Vc::Dynamic0),
                    (false, true) => Some(Vc::Dynamic1),
                    (false, false) => {
                        // Escape onto the bubble VC, dimension-ordered only.
                        if self.cfg.router.adaptive_bubble_escape
                            && pkt.plan.dimension_order_next() == Some(d)
                        {
                            self.bubble_feasible(pkt, from_dim, d, nb_node, nb_port)
                        } else {
                            None
                        }
                    }
                }
            }
            RoutingMode::Deterministic => self.bubble_feasible(pkt, from_dim, d, nb_node, nb_port),
        }
    }

    /// The bubble rule: a packet *continuing* along the same dimension on
    /// the bubble VC needs space for itself; a packet *entering* the bubble
    /// VC (from injection, from a dynamic VC, or turning a dimension) must
    /// additionally leave `bubble_slack_chunks` free.
    fn bubble_feasible(
        &self,
        pkt: &Packet,
        from_dim: Option<usize>,
        d: Direction,
        nb_node: &NodeState,
        nb_port: usize,
    ) -> Option<Vc> {
        let chunks = pkt.chunks as u32;
        let continuing = pkt.vc == Vc::Bubble && from_dim == Some(d.dim.index());
        let required = chunks
            + if continuing {
                0
            } else {
                self.cfg.router.bubble_slack_chunks
            };
        if nb_node.vcs[vc_fifo_index(nb_port, Vc::Bubble.index())].free_chunks() >= required {
            Some(Vc::Bubble)
        } else {
            None
        }
    }

    fn apply_win(&mut self, n: usize, d: Direction, nb: usize, win: Win, t: u64) {
        // Pop the winner from its source FIFO.
        let mut pkt = match win.source {
            WinSource::Transit { fifo } => {
                let f = fifo as usize;
                let node = &mut self.nodes[n];
                node.rr[d.index()] = fifo.wrapping_add(1);
                let pkt = node.vcs[f].pop().expect("winner exists");
                if node.vcs[f].is_empty() {
                    node.vc_mask &= !(1 << f);
                } else if node.vcs[f].head().expect("non-empty").plan.is_done() {
                    self.deliver_q.push((n as u32, fifo));
                }
                pkt
            }
            WinSource::Inject { fifo } => {
                let node = &mut self.nodes[n];
                let pkt = node.inj[fifo as usize].pop().expect("winner exists");
                if node.inj[fifo as usize].is_empty() {
                    node.inj_mask &= !(1 << fifo);
                }
                pkt
            }
        };
        // Reserve downstream space and launch.
        let nb_port = d.opposite().index();
        let chunks = pkt.chunks as u32;
        self.nodes[nb].vcs[vc_fifo_index(nb_port, win.vc.index())].reserve(chunks);
        pkt.vc = win.vc;
        pkt.plan.advance(d.dim);
        if let Some(o) = &mut self.oracle {
            o.on_hop(pkt.id, t);
        }
        let arrive = t + chunks as u64 + self.cfg.router.hop_latency_cycles as u64;
        self.ring[(arrive % RING as u64) as usize].push(Arrival {
            node: nb as u32,
            port: nb_port as u8,
            pkt,
        });
        self.link_busy_until[n * 6 + d.index()] = t + chunks as u64;
        let di = d.dim.index();
        self.stats.link_busy_chunks[di] += chunks as u64;
        if self.cfg.detailed_link_stats {
            self.stats.link_busy_per_link[n * 6 + d.index()] += chunks as u64;
        }
        self.stats.hops_taken[di] += 1;
        match win.vc {
            Vc::Bubble => self.stats.bubble_hops += 1,
            _ => self.stats.dynamic_hops += 1,
        }
        self.last_progress = t;
    }

    /// Diagnostic: dimension utilization snapshot helper.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Diagnostic: where packets currently are (for stall reports/tests).
    pub fn live_packet_count(&self) -> u64 {
        self.live_packets + self.pending_total
    }

    /// Diagnostic: coordinate of a rank.
    pub fn coord_of(&self, rank: u32) -> Coord {
        self.part.coord_of(rank)
    }

    /// Diagnostic: hops between two ranks under the engine's partition.
    pub fn hops_between(&self, a: u32, b: u32) -> u32 {
        self.part.hops(self.part.coord_of(a), self.part.coord_of(b))
    }

    /// Diagnostic: per-dimension utilization so far.
    pub fn dim_utilization(&self, dim: Dim) -> f64 {
        self.stats.dim_utilization(&self.part, dim)
    }

    /// Diagnostic snapshot of why live traffic is blocked, taken when the
    /// watchdog fires (also usable from tests via [`Engine::run`]'s
    /// [`SimError::Stalled`] payload).
    fn stall_breakdown(&self) -> StallBreakdown {
        let mut b = StallBreakdown::default();
        for (ni, node) in self.nodes.iter().enumerate() {
            if !node.program_done {
                let closed = node.flow.closed_windows();
                if closed > 0 {
                    b.credit_blocked_nodes += 1;
                    b.closed_credit_windows += closed as u64;
                }
            }
            b.reception_stalled_fifos += node.blocked_deliveries.len() as u64;
            let mut mask = node.vc_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(head) = node.vcs[f].head() {
                    if !head.plan.is_done() && self.head_is_hol_blocked(ni, f, head) {
                        b.hol_blocked_heads += 1;
                    }
                }
            }
        }
        b
    }

    // ---- Invariant oracle --------------------------------------------------

    /// Cycle-boundary oracle sweep (end of cycle `t`): the oracle's
    /// independent packet ledger must agree with `NetStats`, the live
    /// counter must telescope (injected − delivered), and every FIFO's
    /// occupancy plus outstanding reservations must fit its capacity.
    fn oracle_cycle_check(&self, t: u64) {
        let o = self.oracle.as_ref().expect("caller checked");
        let injected = o.planned_hops.len() as u64;
        assert_eq!(
            injected, self.stats.packets_injected,
            "invariant violated: oracle saw {injected} injections, stats say {} (cycle {t})",
            self.stats.packets_injected
        );
        assert_eq!(
            o.delivered_count, self.stats.packets_delivered,
            "invariant violated: oracle saw {} deliveries, stats say {} (cycle {t})",
            o.delivered_count, self.stats.packets_delivered
        );
        assert_eq!(
            self.live_packets,
            injected - o.delivered_count,
            "invariant violated: live packets must equal injected − delivered (cycle {t})"
        );
        for (ni, node) in self.nodes.iter().enumerate() {
            for f in node
                .vcs
                .iter()
                .chain(&node.inj)
                .chain(std::iter::once(&node.reception))
            {
                assert!(
                    f.occupied_chunks() + f.reserved_chunks() <= f.capacity_chunks(),
                    "invariant violated: FIFO at node {ni} over capacity \
                     ({} occupied + {} reserved > {}, cycle {t})",
                    f.occupied_chunks(),
                    f.reserved_chunks(),
                    f.capacity_chunks()
                );
            }
        }
    }

    /// Quiesce-time oracle sweep, run once the simulation reports
    /// complete: every injected packet was delivered exactly once with
    /// exactly its planned hops, payload bytes are conserved end-to-end,
    /// the per-packet hop ledger sums to the `NetStats` totals, and every
    /// FIFO has drained with all reservation credits telescoped to zero.
    fn oracle_quiesce_check(&self) {
        let o = self.oracle.as_ref().expect("caller checked");
        let injected = o.planned_hops.len() as u64;
        assert_eq!(
            o.delivered_count,
            injected,
            "invariant violated: {} of {injected} packets never delivered",
            injected - o.delivered_count
        );
        if let Some(id) = o.delivered.iter().position(|&d| !d) {
            panic!("invariant violated: packet {id} not delivered at quiesce");
        }
        assert_eq!(
            o.injected_payload, o.delivered_payload,
            "invariant violated: payload bytes not conserved end-to-end"
        );
        assert_eq!(
            o.delivered_payload, self.stats.payload_bytes_delivered,
            "invariant violated: oracle payload ledger disagrees with stats"
        );
        let ledger_hops: u64 = o.taken_hops.iter().map(|&h| h as u64).sum();
        let stats_hops: u64 = self.stats.hops_taken.iter().sum();
        assert_eq!(
            ledger_hops, stats_hops,
            "invariant violated: per-packet hop ledger disagrees with stats"
        );
        for (ni, node) in self.nodes.iter().enumerate() {
            assert!(
                !node.holds_packets(),
                "invariant violated: node {ni} still holds packets at quiesce"
            );
            for f in node
                .vcs
                .iter()
                .chain(&node.inj)
                .chain(std::iter::once(&node.reception))
            {
                assert!(
                    f.is_empty() && f.occupied_chunks() == 0 && f.reserved_chunks() == 0,
                    "invariant violated: FIFO at node {ni} not drained at quiesce \
                     ({} packets, {} occupied, {} reserved)",
                    f.len(),
                    f.occupied_chunks(),
                    f.reserved_chunks()
                );
            }
        }
        assert!(
            self.ring.iter().all(|slot| slot.is_empty()),
            "invariant violated: packets still in flight at quiesce"
        );
    }

    // ---- Tracing -----------------------------------------------------------

    /// The trace recorded so far, if tracing is enabled. Does not include
    /// the final partial-window sample — use [`Engine::take_trace`] after
    /// the run for the completed series.
    pub fn trace(&self) -> Option<&Trace> {
        self.tracer.as_ref().map(|t| &t.trace)
    }

    /// Finalize and return the trace: records one last partial-window
    /// sample if any counter moved since the previous sample (so the
    /// per-sample deltas sum exactly to the [`NetStats`] totals), then
    /// hands the series out. Returns `None` when tracing was disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.as_ref()?;
        if self.trace_counters_moved() {
            self.record_trace_sample(true);
        }
        self.tracer.take().map(|t| t.trace)
    }

    /// Whether any traced cumulative counter changed since the last
    /// recorded sample.
    fn trace_counters_moved(&self) -> bool {
        let Some(tr) = &self.tracer else { return false };
        self.stats.link_busy_chunks != tr.last_link_busy
            || self.stats.hops_taken != tr.last_hops
            || self.stats.cpu_busy_cycles != tr.last_cpu_busy
            || self.stats.reception_stall_events != tr.last_stalls
            || self.stats.packets_injected != tr.last_injected
            || self.stats.packets_delivered != tr.last_delivered
            || self.stats.pacing_blocked_cycles != tr.last_pacing_blocked
            || self.stats.credit_blocked_events != tr.last_credit_blocked
    }

    /// Record one sample at the current cycle. Periodic calls (`force ==
    /// false`) stop at the `max_samples` cap; forced calls (completion /
    /// stall snapshots) always record, folding any residual deltas into
    /// the final sample so totals stay exact.
    fn record_trace_sample(&mut self, force: bool) {
        let Some(mut tracer) = self.tracer.take() else {
            return;
        };
        let at_cap = tracer.trace.samples.len() >= tracer.max_samples;
        let dup = tracer.trace.samples.last().map(|s| s.cycle) == Some(self.now);
        if at_cap && !force {
            tracer.trace.truncated = true;
            tracer.next_at = u64::MAX;
        } else if !dup {
            let sample = self.build_trace_sample(&mut tracer);
            tracer.trace.samples.push(sample);
            tracer.next_at = self.now + tracer.interval;
        }
        self.tracer = Some(tracer);
    }

    /// Build the sample for the window ending now and advance the
    /// tracer's counter snapshots. Read-only over the simulation state:
    /// sampling must never perturb results.
    fn build_trace_sample(&self, tracer: &mut Tracer) -> TraceSample {
        let s = &self.stats;
        let sub3 = |a: [u64; 3], b: [u64; 3]| [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        let mut sample = TraceSample {
            cycle: self.now,
            link_busy_delta: sub3(s.link_busy_chunks, tracer.last_link_busy),
            hops_delta: sub3(s.hops_taken, tracer.last_hops),
            cpu_busy_delta: s.cpu_busy_cycles - tracer.last_cpu_busy,
            reception_stall_delta: s.reception_stall_events - tracer.last_stalls,
            injected_delta: s.packets_injected - tracer.last_injected,
            delivered_delta: s.packets_delivered - tracer.last_delivered,
            pacing_blocked_delta: s.pacing_blocked_cycles - tracer.last_pacing_blocked,
            credit_blocked_delta: s.credit_blocked_events - tracer.last_credit_blocked,
            packets_in_flight: self.live_packets,
            pending_sends: self.pending_total,
            ..TraceSample::default()
        };
        tracer.last_link_busy = s.link_busy_chunks;
        tracer.last_hops = s.hops_taken;
        tracer.last_cpu_busy = s.cpu_busy_cycles;
        tracer.last_stalls = s.reception_stall_events;
        tracer.last_injected = s.packets_injected;
        tracer.last_delivered = s.packets_delivered;
        tracer.last_pacing_blocked = s.pacing_blocked_cycles;
        tracer.last_credit_blocked = s.credit_blocked_events;

        // Instantaneous FIFO occupancy, split by input-port dimension and
        // by bubble-vs-dynamic VC.
        let mut dyn_sum = [0u64; 3];
        let mut dyn_max = [0u32; 3];
        let mut bub_sum = [0u64; 3];
        let mut bub_max = [0u32; 3];
        let mut inj_sum = 0u64;
        let mut inj_max = 0u32;
        let mut recv_sum = 0u64;
        let mut recv_max = 0u32;
        for node in &self.nodes {
            for port in 0..NUM_PORTS {
                let dim = port / 2; // two directions per dimension
                for vc in 0..NUM_VCS {
                    let occ = node.vcs[vc_fifo_index(port, vc)].occupied_chunks();
                    if vc == Vc::Bubble.index() {
                        bub_sum[dim] += occ as u64;
                        bub_max[dim] = bub_max[dim].max(occ);
                    } else {
                        dyn_sum[dim] += occ as u64;
                        dyn_max[dim] = dyn_max[dim].max(occ);
                    }
                }
            }
            for fifo in &node.inj {
                let occ = fifo.occupied_chunks();
                inj_sum += occ as u64;
                inj_max = inj_max.max(occ);
            }
            let occ = node.reception.occupied_chunks();
            recv_sum += occ as u64;
            recv_max = recv_max.max(occ);
        }
        let p = self.nodes.len() as f64;
        let occ_stat = |sum: u64, max: u32, fifos_per_node: f64| OccStat {
            mean_chunks: sum as f64 / (p * fifos_per_node),
            max_chunks: max,
        };
        for d in 0..3 {
            // Per node and dimension: 2 ports × 2 dynamic VCs, 2 × 1 bubble.
            sample.dyn_vc_occupancy[d] = occ_stat(dyn_sum[d], dyn_max[d], 4.0);
            sample.bubble_vc_occupancy[d] = occ_stat(bub_sum[d], bub_max[d], 2.0);
        }
        sample.inj_occupancy = occ_stat(inj_sum, inj_max, self.cfg.inj_fifo_count.max(1) as f64);
        sample.reception_occupancy = occ_stat(recv_sum, recv_max, 1.0);

        // Phase attribution and head-of-line blocking. Only occupied
        // FIFOs (the masks) are walked, so a sample on a mostly idle
        // partition stays cheap.
        let mut p1 = 0u64;
        let mut p2 = 0u64;
        let mut count_kind = |kind: u8| match kind {
            1 => p1 += 1,
            2 => p2 += 1,
            _ => {}
        };
        let mut hol = 0u64;
        for (ni, node) in self.nodes.iter().enumerate() {
            let mut mask = node.vc_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for pkt in node.vcs[f].iter() {
                    count_kind(pkt.meta.kind);
                }
                if let Some(head) = node.vcs[f].head() {
                    if !head.plan.is_done() && self.head_is_hol_blocked(ni, f, head) {
                        hol += 1;
                    }
                }
            }
            let mut mask = node.inj_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for pkt in node.inj[f].iter() {
                    count_kind(pkt.meta.kind);
                }
            }
        }
        for slot in &self.ring {
            for arrival in slot {
                count_kind(arrival.pkt.meta.kind);
            }
        }
        sample.phase1_in_flight = p1;
        sample.phase2_in_flight = p2;
        sample.hol_blocked_heads = hol;
        sample
    }

    /// Whether the head packet of transit FIFO `fifo` at node `n` cannot
    /// move right now: every output direction its routing mode allows
    /// (its minimal quadrant, shaped by the longest-first bias /
    /// dimension order) is either mid-transmission or out of downstream
    /// VC credit. This is the paper's head-of-line blocking signal —
    /// packets parked behind saturated long-dimension links.
    fn head_is_hol_blocked(&self, n: usize, fifo: usize, pkt: &Packet) -> bool {
        let from_dim = Some(fifo / NUM_VCS / 2); // port index / 2 = dimension
        let mut any_dir = false;
        for d in ALL_DIRECTIONS {
            if !self.wants(pkt, d) {
                continue;
            }
            let nb = self.neighbors[n][d.index()];
            if nb == u32::MAX {
                continue;
            }
            any_dir = true;
            if self.link_busy_until[n * 6 + d.index()] <= self.now
                && self.feasible_vc(pkt, n, from_dim, d, nb as usize).is_some()
            {
                return false;
            }
        }
        any_dir
    }
}
