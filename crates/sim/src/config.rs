//! Simulator configuration: router microarchitecture, buffer geometry and
//! the node CPU model.
//!
//! Time is measured in *cycles*: one cycle is the time a 32-byte chunk takes
//! to cross one link (~207 ns, ~145 CPU cycles on the real machine — see
//! `bgl_model::MachineParams` for conversions). All buffer capacities are in
//! chunks; all CPU costs are in (fractional) cycles.

use crate::fault::FaultPlan;
use crate::flow::FlowSpec;
use crate::perf::{PerfConfig, ProgressConfig};
use crate::trace::TraceConfig;
use bgl_torus::Partition;
use serde::{Deserialize, Serialize};

/// Number of torus virtual channels the simulator models.
///
/// BG/L has four (two dynamic, one bubble-normal, one high-priority); the
/// high-priority VC is never used by application messaging or by any of the
/// paper's strategies, so we model the three that matter.
pub const NUM_VCS: usize = 3;

/// Virtual channel indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Vc {
    /// First dynamic (adaptively routed) VC.
    Dynamic0 = 0,
    /// Second dynamic VC.
    Dynamic1 = 1,
    /// The "bubble normal" VC: dimension-ordered, deadlock-free escape.
    Bubble = 2,
}

impl Vc {
    /// Dense index in `0..NUM_VCS`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// VC from a dense index.
    ///
    /// # Panics
    /// Panics if `i >= NUM_VCS`.
    #[inline]
    pub fn from_index(i: usize) -> Vc {
        match i {
            0 => Vc::Dynamic0,
            1 => Vc::Dynamic1,
            2 => Vc::Bubble,
            _ => panic!("VC index {i} out of range"),
        }
    }

    /// Both dynamic VCs.
    pub const DYNAMIC: [Vc; 2] = [Vc::Dynamic0, Vc::Dynamic1];
}

/// Engine scheduling mode: how the simulator finds work each cycle.
///
/// All three modes produce byte-identical results — `NetStats`, traces,
/// error cycles — on every workload; they differ only in wall-clock cost.
/// The differential fuzzer (`tests/engine_equivalence.rs`) and conformance
/// family F6 pin the equivalence.
///
/// * [`EngineMode::FullScan`] visits every node in every phase of every
///   cycle: the reference semantics, O(nodes) per cycle regardless of
///   activity. Exists for equivalence testing and before/after
///   benchmarking, never for speed.
/// * [`EngineMode::ActiveSet`] (the default) keeps lazily-pruned worklists
///   of nodes with CPU or arbitration work, skipping idle *space* while
///   still ticking every cycle.
/// * [`EngineMode::EventDriven`] additionally skips idle *time*: when
///   every component is asleep — FIFOs empty or blocked, no pending
///   credits, no open pacer window — the simulator computes the earliest
///   next wake-up (arrival, credit ack, rate-window boundary, trace
///   boundary) and jumps straight to it. Latency-dominated workloads with
///   long quiet gaps run order-of-magnitude faster; saturated workloads
///   pay a small bookkeeping overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Reference engine: scan every node every cycle.
    FullScan,
    /// Active-set worklists, cycle-stepped time.
    #[default]
    ActiveSet,
    /// Active-set worklists plus event-driven time skipping.
    EventDriven,
}

impl EngineMode {
    /// All modes, in reference-to-fastest order (handy for equivalence
    /// loops in tests and benches).
    pub const ALL: [EngineMode; 3] = [
        EngineMode::FullScan,
        EngineMode::ActiveSet,
        EngineMode::EventDriven,
    ];

    /// The CLI/config spelling: `full-scan`, `active-set` or `event`.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::FullScan => "full-scan",
            EngineMode::ActiveSet => "active-set",
            EngineMode::EventDriven => "event",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses the CLI spelling (`full-scan|active-set|event`); the error
/// message lists the accepted values for the binaries' exit-2 path.
impl std::str::FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineMode, String> {
        match s {
            "full-scan" => Ok(EngineMode::FullScan),
            "active-set" => Ok(EngineMode::ActiveSet),
            "event" => Ok(EngineMode::EventDriven),
            other => Err(format!(
                "unknown engine {other:?} (full-scan|active-set|event)"
            )),
        }
    }
}

impl Serialize for EngineMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for EngineMode {
    fn from_value(v: &serde::Value) -> Result<EngineMode, serde::Error> {
        match v {
            serde::Value::Str(s) => s.parse().map_err(|e: String| serde::Error::custom(e)),
            // Legacy alias: configs serialized before the `EngineMode`
            // redesign carried `full_scan_engine: bool` in this slot.
            serde::Value::Bool(true) => Ok(EngineMode::FullScan),
            serde::Value::Bool(false) => Ok(EngineMode::ActiveSet),
            other => Err(serde::Error::custom(format!(
                "expected engine mode string, got {other:?}"
            ))),
        }
    }

    /// Configs predating the field deserialize to the default mode.
    fn from_missing(_field: &str) -> Result<EngineMode, serde::Error> {
        Ok(EngineMode::ActiveSet)
    }
}

/// Node CPU model: the cores inject packets into injection FIFOs, drain
/// reception FIFOs and perform software copies; BG/L has no DMA engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Sustained CPU data bandwidth, in chunks per cycle, shared between
    /// injection, reception and copies. The paper's "the processor can only
    /// keep about four links busy" is 4.0.
    pub chunks_per_cycle: f64,
    /// Fixed CPU time per packet injected, cycles (FIFO descriptor writes
    /// and bookkeeping, separate from the per-message α charged by
    /// strategies).
    pub per_packet_inject_cycles: f64,
    /// Fixed CPU time per packet drained from the reception FIFO, cycles.
    pub per_packet_receive_cycles: f64,
    /// Memory-copy bandwidth cost γ for software forwarding/combining, in
    /// cycles per chunk (the paper's 1.6 ns/B ≈ 0.247 cycles per 32-byte
    /// chunk).
    pub copy_cycles_per_chunk: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            chunks_per_cycle: 4.0,
            per_packet_inject_cycles: 0.35,
            per_packet_receive_cycles: 0.35,
            copy_cycles_per_chunk: 0.247,
        }
    }
}

/// Router microarchitecture knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Per-(input port, VC) FIFO capacity in chunks. The default of 64
    /// chunks (2 KB, eight full packets) calibrates the model against the
    /// paper's measured asymmetric-torus efficiencies: real BG/L packets
    /// cut through routers flit by flit, so a packet in flight effectively
    /// spans several nodes' worth of buffering that this packet-atomic
    /// model must provide explicitly.
    pub vc_fifo_chunks: u32,
    /// Whether in-transit packets win arbitration over injected packets
    /// (BG/L behaviour: yes).
    pub transit_priority: bool,
    /// Extra free space (in chunks) a packet must find downstream when
    /// *entering* the bubble VC — the bubble rule. BG/L requires one full
    /// packet of slack (8 chunks) beyond the packet itself; packets
    /// continuing along the same dimension on the bubble VC need only their
    /// own space. Set to 0 to disable the rule (ablation).
    pub bubble_slack_chunks: u32,
    /// Whether adaptive (dynamic-VC) packets may fall back to the bubble
    /// escape VC when every dynamic choice is blocked. BG/L behaviour: yes.
    pub adaptive_bubble_escape: bool,
    /// Pipeline latency per hop, cycles, added after the last chunk of a
    /// packet crosses a link before it is visible downstream.
    pub hop_latency_cycles: u32,
    /// Machine-wide override of the per-packet longest-first shaping
    /// (`Packet::longest_first`): `None` honours each packet's flag,
    /// `Some(true)` forces the shaping on, `Some(false)` disables it —
    /// the ablation reproducing the full congestion collapse.
    pub longest_first_bias: Option<bool>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vc_fifo_chunks: 64,
            transit_priority: true,
            bubble_slack_chunks: 8,
            adaptive_bubble_escape: true,
            hop_latency_cycles: 1,
            longest_first_bias: None,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The partition to simulate.
    pub partition: Partition,
    /// Router knobs.
    pub router: RouterConfig,
    /// CPU model.
    pub cpu: CpuConfig,
    /// Number of injection FIFOs per node (BG/L has eight; six is enough
    /// for every strategy here and keeps state small).
    pub inj_fifo_count: u32,
    /// Capacity of each injection FIFO, chunks.
    pub inj_fifo_chunks: u32,
    /// Reception FIFO capacity, chunks. When full, arriving packets stall
    /// in their VC FIFOs and back-pressure the network.
    pub reception_fifo_chunks: u32,
    /// Per-injection-FIFO class masks: FIFO `f` accepts packets of class
    /// `c` iff `masks[f] & (1 << c) != 0`. Empty (the default) means every
    /// FIFO accepts every class. The Two Phase Schedule reserves disjoint
    /// FIFO subsets for its two phases through this knob.
    pub inj_class_masks: Vec<u8>,
    /// Injection flow control, enforced by the engine for every node (see
    /// [`crate::flow`]): [`FlowSpec::Unpaced`] (the default) lets programs
    /// inject as fast as the CPU and FIFOs allow; [`FlowSpec::Rate`]
    /// throttles pulls to a chunks-per-cycle budget; [`FlowSpec::Credit`]
    /// bounds unacknowledged packets per intermediate node.
    pub flow: FlowSpec,
    /// RNG seed: identical (config, seed, programs) runs produce identical
    /// cycle counts.
    pub seed: u64,
    /// Abort the run if no packet moves and no CPU work happens for this
    /// many consecutive cycles while traffic remains (deadlock/livelock
    /// watchdog).
    pub watchdog_cycles: u64,
    /// Hard cycle limit (safety net for miswritten programs).
    pub max_cycles: u64,
    /// Collect per-directed-link busy counters (see
    /// `NetStats::link_busy_per_link`). Off by default: it adds a vector
    /// of `6·P` counters to every run.
    pub detailed_link_stats: bool,
    /// Time-series tracing: `Some(cfg)` records a [`TraceSample`]
    /// (see [`crate::trace`]) every `cfg.interval_cycles` cycles,
    /// retrievable after the run via `Engine::take_trace`. `None` (the
    /// default) costs one predictable branch per cycle and nothing else.
    /// Tracing never perturbs results: `NetStats` is byte-identical with
    /// tracing on or off.
    pub trace: Option<TraceConfig>,
    /// Engine scheduling mode (see [`EngineMode`]). Results are
    /// byte-identical across all three modes — they differ only in
    /// wall-clock cost — so this is a performance knob, never a
    /// correctness one.
    pub engine: EngineMode,
    /// Intra-run parallelism: partition the torus into this many
    /// contiguous-rank slabs, each running the phase pipeline on its own
    /// thread with boundary arrivals exchanged at a per-cycle barrier.
    /// Like [`engine`](Self::engine), this is a performance knob and never
    /// a correctness one: `NetStats` and traces are byte-identical for any
    /// shard count (pinned by the differential fuzzer and conformance F7).
    /// Clamped to the node count; `1` (the default, and what configs
    /// serialized before the knob existed deserialize to) disables
    /// threading entirely. Runs with `check_invariants` keep the sharded
    /// *structure* but execute the shards on one thread, because the
    /// oracle's ledger is inherently sequential.
    pub shards: std::num::NonZeroUsize,
    /// Invariant oracle: independently re-derive the simulator's
    /// conservation laws and panic on the first violation — every injected
    /// packet delivered exactly once, payload bytes conserved end-to-end,
    /// hops taken equal to the packet's `HopPlan` length, FIFO occupancy
    /// plus outstanding reservations within capacity at every cycle
    /// boundary, and all injection/reception credit counters telescoped
    /// back to zero at quiesce. Composes with both engine modes and with
    /// tracing; never perturbs results. Off (the default) it costs one
    /// predictable branch per cycle, like the tracer.
    pub check_invariants: bool,
    /// Host-side performance profiling: `Some(cfg)` makes the engine
    /// record where *wall-clock* time goes (per-phase/per-shard timing,
    /// barrier waits, event-engine skip and wake counters — see
    /// [`crate::perf`]), retrievable after the run via
    /// `Engine::take_perf`. `None` (the default) costs one predictable
    /// branch beside the tracer's. Profiling never perturbs results:
    /// `NetStats` is byte-identical with profiling on or off, in every
    /// engine mode and at every shard count.
    pub perf: Option<PerfConfig>,
    /// Opt-in progress heartbeat: `Some(cfg)` makes the engine print a
    /// rate-limited status line (cycle, packets delivered, elapsed, ETA)
    /// to **stderr** during the run. Stdout and results are untouched, so
    /// piped output stays byte-identical. `None` (the default) is silent.
    pub progress: Option<ProgressConfig>,
    /// Fault injection plan (see [`crate::fault`]): directed links and
    /// whole nodes that are dead from the start or fail/recover at
    /// scheduled cycles. The empty plan (the default, and what configs
    /// serialized before fault injection deserialize to) is the healthy
    /// machine and costs nothing. Fault semantics are identical in every
    /// engine mode and at every shard count.
    pub fault: FaultPlan,
}

impl SimConfig {
    /// Defaults for a given partition (BG/L-like router and CPU).
    pub fn new(partition: Partition) -> SimConfig {
        SimConfig {
            partition,
            router: RouterConfig::default(),
            cpu: CpuConfig::default(),
            inj_fifo_count: 6,
            inj_fifo_chunks: 16,
            reception_fifo_chunks: 64,
            inj_class_masks: Vec::new(),
            flow: FlowSpec::Unpaced,
            seed: 0x5eed_b61c,
            watchdog_cycles: 200_000,
            max_cycles: 2_000_000_000,
            detailed_link_stats: false,
            trace: None,
            engine: EngineMode::default(),
            shards: std::num::NonZeroUsize::new(1).expect("1 is non-zero"),
            check_invariants: false,
            perf: None,
            progress: None,
            fault: FaultPlan::default(),
        }
    }

    /// Back-compat shim for the retired `full_scan_engine: bool` knob.
    #[deprecated(
        since = "0.6.0",
        note = "set `engine = EngineMode::FullScan` / `EngineMode::ActiveSet` instead"
    )]
    pub fn set_full_scan_engine(&mut self, full_scan: bool) {
        self.engine = if full_scan {
            EngineMode::FullScan
        } else {
            EngineMode::ActiveSet
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_index_roundtrip() {
        for i in 0..NUM_VCS {
            assert_eq!(Vc::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vc_bad_index_panics() {
        let _ = Vc::from_index(3);
    }

    #[test]
    fn defaults_are_bgl_like() {
        let c = SimConfig::new("8x8x8".parse().unwrap());
        assert_eq!(c.router.vc_fifo_chunks, 64);
        assert!(c.router.transit_priority);
        assert!(c.router.adaptive_bubble_escape);
        assert_eq!(c.cpu.chunks_per_cycle, 4.0);
        assert_eq!(c.inj_fifo_count, 6);
    }

    #[test]
    fn engine_mode_round_trips_and_accepts_legacy_bool() {
        for mode in EngineMode::ALL {
            let v = mode.to_value();
            assert_eq!(EngineMode::from_value(&v).unwrap(), mode);
            assert_eq!(mode.name().parse::<EngineMode>().unwrap(), mode);
        }
        // Stored configs from before the redesign spelled the knob as a
        // bool; both polarities keep deserializing.
        assert_eq!(
            EngineMode::from_value(&serde::Value::Bool(true)).unwrap(),
            EngineMode::FullScan
        );
        assert_eq!(
            EngineMode::from_value(&serde::Value::Bool(false)).unwrap(),
            EngineMode::ActiveSet
        );
        // Absent field → default mode.
        assert_eq!(
            EngineMode::from_missing("engine").unwrap(),
            EngineMode::ActiveSet
        );
        assert!("warp-drive".parse::<EngineMode>().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn full_scan_shim_maps_onto_engine_mode() {
        let mut c = SimConfig::new("4x4".parse().unwrap());
        assert_eq!(c.engine, EngineMode::ActiveSet);
        c.set_full_scan_engine(true);
        assert_eq!(c.engine, EngineMode::FullScan);
        c.set_full_scan_engine(false);
        assert_eq!(c.engine, EngineMode::ActiveSet);
    }

    #[test]
    fn shards_knob_round_trips_and_defaults_to_one() {
        let mut c = SimConfig::new("4x4".parse().unwrap());
        c.shards = std::num::NonZeroUsize::new(4).unwrap();
        let v = c.to_value();
        assert_eq!(SimConfig::from_value(&v).unwrap(), c);
        // Configs serialized before the knob existed have no `shards`
        // field: they must keep deserializing, with sharding off.
        let serde::Value::Object(mut fields) = v else {
            panic!("config serializes as an object")
        };
        fields.retain(|(k, _)| k != "shards");
        let legacy = SimConfig::from_value(&serde::Value::Object(fields)).unwrap();
        assert_eq!(legacy.shards.get(), 1);
        // Zero shards is not a meaningful configuration; the wire format
        // rejects it rather than silently clamping.
        let mut zeroed = c.to_value();
        if let serde::Value::Object(fields) = &mut zeroed {
            for (k, v) in fields.iter_mut() {
                if k == "shards" {
                    *v = serde::Value::U64(0);
                }
            }
        }
        assert!(SimConfig::from_value(&zeroed).is_err());
    }

    #[test]
    fn perf_knobs_round_trip_and_default_to_off() {
        let mut c = SimConfig::new("4x4".parse().unwrap());
        c.perf = Some(PerfConfig::default());
        c.progress = Some(ProgressConfig { interval_secs: 2.5 });
        let v = c.to_value();
        assert_eq!(SimConfig::from_value(&v).unwrap(), c);
        // Configs serialized before the profiling layer existed have
        // neither field: they must keep deserializing, with both off.
        let serde::Value::Object(mut fields) = v else {
            panic!("config serializes as an object")
        };
        fields.retain(|(k, _)| k != "perf" && k != "progress");
        let legacy = SimConfig::from_value(&serde::Value::Object(fields)).unwrap();
        assert_eq!(legacy.perf, None);
        assert_eq!(legacy.progress, None);
    }

    #[test]
    fn fault_plan_round_trips_and_defaults_to_empty() {
        use crate::fault::{LinkFault, NodeFault};
        use bgl_torus::{Dim, Direction, Sign};
        let mut c = SimConfig::new("4x4".parse().unwrap());
        c.fault.links.push(LinkFault {
            node: 2,
            dir: Direction {
                dim: Dim::X,
                sign: Sign::Minus,
            },
            fail_at: 100,
            recover_at: Some(400),
        });
        c.fault.nodes.push(NodeFault::dead(5));
        let v = c.to_value();
        assert_eq!(SimConfig::from_value(&v).unwrap(), c);
        // Configs serialized before fault injection existed have no
        // `fault` field: they must keep deserializing, healthy.
        let serde::Value::Object(mut fields) = v else {
            panic!("config serializes as an object")
        };
        fields.retain(|(k, _)| k != "fault");
        let legacy = SimConfig::from_value(&serde::Value::Object(fields)).unwrap();
        assert!(legacy.fault.is_empty());
    }

    #[test]
    fn dynamic_vcs_are_the_first_two() {
        assert_eq!(Vc::DYNAMIC[0].index(), 0);
        assert_eq!(Vc::DYNAMIC[1].index(), 1);
        assert_ne!(Vc::Bubble.index(), 0);
        assert_ne!(Vc::Bubble.index(), 1);
    }
}
