//! Engine-level injection flow control.
//!
//! Strategies describe *how much* a node may inject through a
//! [`FlowSpec`]; the engine owns the per-node state (a [`FlowLedger`])
//! and enforces the spec on the hot injection path:
//!
//! * [`FlowSpec::Rate`] — a rate window. The engine stops pulling new
//!   sends from a node's program while `now < next_allowed`, and each
//!   pulled packet advances `next_allowed` by `chunks / rate`. This is
//!   the bisection-bandwidth throttle of the paper's AR-throttled
//!   scheme, now available to every strategy.
//! * [`FlowSpec::Credit`] — credit-based bounds on intermediate-node
//!   memory (the paper's future-work item). A program reserves a credit
//!   per in-flight packet to each intermediate via
//!   [`NodeApi::try_acquire_credit`](crate::NodeApi::try_acquire_credit);
//!   the intermediate acknowledges every `credit_every` receipts
//!   ([`NodeApi::credit_receipt`](crate::NodeApi::credit_receipt)) with a
//!   strategy-defined credit packet that reopens the window
//!   ([`NodeApi::apply_credit`](crate::NodeApi::apply_credit)).
//!
//! The ledger lives in [`NodeState`](crate::node::NodeState) so both
//! engine modes (active-set and full-scan) see identical state, and the
//! counters it feeds ([`NetStats::pacing_blocked_cycles`] and
//! [`NetStats::credit_blocked_events`](crate::NetStats)) stay
//! byte-identical across modes.
//!
//! [`NetStats::pacing_blocked_cycles`]: crate::NetStats

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An injection flow-control policy, resolved to engine units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FlowSpec {
    /// No pacing: programs inject as fast as the CPU and FIFOs allow.
    #[default]
    Unpaced,
    /// Rate window: cap sustained injection at `chunks_per_cycle`.
    Rate {
        /// Injection budget in 32-byte chunks per cycle (> 0).
        chunks_per_cycle: f64,
    },
    /// Credit window: at most `window_packets` unacknowledged packets
    /// outstanding per intermediate node; receivers acknowledge every
    /// `credit_every` receipts.
    Credit {
        /// Outstanding-packet bound per intermediate (≥ 1).
        window_packets: u32,
        /// Receipts per acknowledgement (1 ..= `window_packets`, or the
        /// window can close forever).
        credit_every: u32,
    },
}

impl FlowSpec {
    /// Whether this spec imposes any pacing at all.
    pub fn is_unpaced(&self) -> bool {
        matches!(self, FlowSpec::Unpaced)
    }

    /// Panics if the spec is internally inconsistent (zero rate, or a
    /// credit quantum larger than the window — a guaranteed deadlock).
    pub fn validate(&self) {
        match *self {
            FlowSpec::Unpaced => {}
            FlowSpec::Rate { chunks_per_cycle } => {
                assert!(
                    chunks_per_cycle > 0.0 && chunks_per_cycle.is_finite(),
                    "flow rate must be positive and finite, got {chunks_per_cycle}"
                );
            }
            FlowSpec::Credit {
                window_packets,
                credit_every,
            } => {
                assert!(window_packets >= 1, "credit window must be at least 1");
                assert!(
                    (1..=window_packets).contains(&credit_every),
                    "credit_every must be in 1..={window_packets}, got {credit_every} \
                     (an ack quantum above the window deadlocks the sender)"
                );
            }
        }
    }
}

/// Per-node flow-control state, owned by the engine.
///
/// `outstanding` and `recv_counts` are keyed by node rank (the
/// intermediate being bounded, resp. the source being counted). Both are
/// empty unless the spec is [`FlowSpec::Credit`].
#[derive(Debug, Clone)]
pub struct FlowLedger {
    /// The policy in force (copied from `SimConfig::flow`).
    pub spec: FlowSpec,
    /// First cycle the next pull is allowed ([`FlowSpec::Rate`] only).
    pub next_allowed: f64,
    /// Unacknowledged packets per intermediate rank.
    outstanding: HashMap<u32, u32>,
    /// Receipts per source rank since the last acknowledgement.
    recv_counts: HashMap<u32, u32>,
}

impl FlowLedger {
    /// A fresh ledger for `spec`.
    pub fn new(spec: FlowSpec) -> FlowLedger {
        FlowLedger {
            spec,
            next_allowed: 0.0,
            outstanding: HashMap::new(),
            recv_counts: HashMap::new(),
        }
    }

    /// Reserve one credit toward `intermediate`. `true` when the send may
    /// proceed (always, unless the spec is [`FlowSpec::Credit`] and the
    /// window is full).
    pub(crate) fn try_acquire(&mut self, intermediate: u32) -> bool {
        let FlowSpec::Credit { window_packets, .. } = self.spec else {
            return true;
        };
        let out = self.outstanding.entry(intermediate).or_insert(0);
        if *out >= window_packets {
            return false;
        }
        *out += 1;
        true
    }

    /// Count one receipt from `src`; `Some(n)` when an acknowledgement
    /// worth `n` credits is now due back to `src`.
    pub(crate) fn receipt(&mut self, src: u32) -> Option<u32> {
        let FlowSpec::Credit { credit_every, .. } = self.spec else {
            return None;
        };
        let c = self.recv_counts.entry(src).or_insert(0);
        *c += 1;
        (*c).is_multiple_of(credit_every).then_some(credit_every)
    }

    /// Apply `n` returned credits from `intermediate`.
    pub(crate) fn apply_credit(&mut self, intermediate: u32, n: u32) {
        if let Some(out) = self.outstanding.get_mut(&intermediate) {
            *out = out.saturating_sub(n);
        }
    }

    /// Number of intermediates whose credit window is currently full
    /// (stall diagnostics).
    pub(crate) fn closed_windows(&self) -> usize {
        let FlowSpec::Credit { window_packets, .. } = self.spec else {
            return 0;
        };
        self.outstanding
            .values()
            .filter(|&&out| out >= window_packets)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_ledger_always_grants() {
        let mut l = FlowLedger::new(FlowSpec::Unpaced);
        for _ in 0..1000 {
            assert!(l.try_acquire(7));
        }
        assert_eq!(l.receipt(3), None);
        assert_eq!(l.closed_windows(), 0);
    }

    #[test]
    fn credit_window_blocks_then_reopens() {
        let mut l = FlowLedger::new(FlowSpec::Credit {
            window_packets: 2,
            credit_every: 2,
        });
        assert!(l.try_acquire(5));
        assert!(l.try_acquire(5));
        assert!(!l.try_acquire(5), "window of 2 must block the third");
        assert!(l.try_acquire(6), "windows are per intermediate");
        assert_eq!(l.closed_windows(), 1);
        l.apply_credit(5, 2);
        assert_eq!(l.closed_windows(), 0);
        assert!(l.try_acquire(5));
    }

    #[test]
    fn receipts_ack_every_quantum() {
        let mut l = FlowLedger::new(FlowSpec::Credit {
            window_packets: 4,
            credit_every: 3,
        });
        assert_eq!(l.receipt(9), None);
        assert_eq!(l.receipt(9), None);
        assert_eq!(l.receipt(9), Some(3));
        assert_eq!(l.receipt(9), None);
        // Independent per source.
        assert_eq!(l.receipt(8), None);
    }

    #[test]
    fn rate_spec_validates() {
        FlowSpec::Rate {
            chunks_per_cycle: 0.5,
        }
        .validate();
        FlowSpec::Credit {
            window_packets: 4,
            credit_every: 4,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "deadlocks")]
    fn oversized_credit_quantum_rejected() {
        FlowSpec::Credit {
            window_packets: 2,
            credit_every: 3,
        }
        .validate();
    }

    #[test]
    fn flow_spec_round_trips_serde() {
        for spec in [
            FlowSpec::Unpaced,
            FlowSpec::Rate {
                chunks_per_cycle: 1.25,
            },
            FlowSpec::Credit {
                window_packets: 8,
                credit_every: 2,
            },
        ] {
            let v = serde::Serialize::to_value(&spec);
            let back: FlowSpec = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, spec);
        }
    }
}
