//! Shared RFC-4180 CSV writing and parsing.
//!
//! One writer serves every CSV the workspace emits ([`Trace::to_csv`]
//! and the harness's experiment-report renderer), so quoting rules
//! cannot drift between them. Callers pick the line terminator —
//! RFC 4180 specifies CRLF, which trace exports use; experiment reports
//! keep their historical LF.
//!
//! [`Trace::to_csv`]: crate::Trace::to_csv

/// Append one CSV row to `out`: cells joined by commas, each quoted iff
/// it contains a comma, quote, CR or LF (inner quotes doubled per
/// RFC 4180), followed by `terminator`.
pub fn push_row<I, S>(out: &mut String, cells: I, terminator: &str)
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut first = true;
    for cell in cells {
        if !first {
            out.push(',');
        }
        first = false;
        let s = cell.as_ref();
        if s.contains([',', '"', '\n', '\r']) {
            out.push('"');
            for ch in s.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(s);
        }
    }
    out.push_str(terminator);
}

/// Parse RFC-4180 CSV text into rows of cells. Accepts CRLF or bare LF
/// row terminators; quoted cells may contain either, plus commas and
/// doubled quotes. A trailing terminator does not produce an empty row.
pub fn parse(csv: &str) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    // Whether the current (unflushed) row has seen any content, so a
    // trailing terminator is not mistaken for a final empty row.
    let mut row_started = false;
    let mut chars = csv.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push(c);
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                row_started = true;
            }
            ',' => {
                row.push(std::mem::take(&mut cell));
                row_started = true;
            }
            '\r' | '\n' => {
                if c == '\r' && chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
                row_started = false;
            }
            other => {
                cell.push(other);
                row_started = true;
            }
        }
    }
    if row_started || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(rows: &[Vec<&str>], terminator: &str) -> String {
        let mut out = String::new();
        for row in rows {
            push_row(&mut out, row.iter().copied(), terminator);
        }
        out
    }

    #[test]
    fn clean_cells_stay_unquoted() {
        let out = render(&[vec!["a", "b"], vec!["1", "2"]], "\n");
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn specials_are_quoted_and_doubled() {
        let mut out = String::new();
        push_row(&mut out, ["he said \"hi\"", "a,b", "x\ny"], "\r\n");
        assert_eq!(out, "\"he said \"\"hi\"\"\",\"a,b\",\"x\ny\"\r\n");
    }

    #[test]
    fn parse_round_trips_both_terminators() {
        let rows = vec![
            vec!["plain", "with,comma", "with\"quote"],
            vec!["", "multi\r\nline", "end"],
        ];
        for terminator in ["\r\n", "\n"] {
            let text = render(&rows, terminator);
            let back = parse(&text);
            assert_eq!(
                back,
                rows.iter()
                    .map(|r| r.iter().map(|s| s.to_string()).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
                "terminator {terminator:?}"
            );
        }
    }

    #[test]
    fn trailing_terminator_is_not_an_empty_row() {
        assert_eq!(parse("a,b\r\n"), vec![vec!["a", "b"]]);
        assert_eq!(parse("a,b"), vec![vec!["a", "b"]]);
        assert_eq!(parse(""), Vec::<Vec<String>>::new());
    }

    #[test]
    fn trailing_empty_cell_survives() {
        assert_eq!(parse("a,\n"), vec![vec!["a", ""]]);
    }
}
