//! Host-side performance profiling: where *wall-clock* time goes inside
//! the engine, as opposed to [`crate::trace`], which records *simulated*
//! time. A [`Trace`](crate::Trace) answers "at which cycle did the Y
//! FIFOs fill up?"; a [`PerfProfile`] answers "which engine phase, shard
//! or skip decision did the host spend its seconds on?".
//!
//! Enable collection by setting [`SimConfig::perf`](crate::SimConfig::perf)
//! to a [`PerfConfig`]; retrieve the profile after the run via
//! [`Engine::take_perf`](crate::Engine::take_perf). The collector records:
//!
//! * per-phase wall-clock time for every engine phase (arrivals,
//!   deliveries, CPU, packet-id fix-up, arbitration, staged-arrival
//!   drain), accumulated per shard;
//! * per-shard section timing with barrier-wait attribution for threaded
//!   cycles — the numbers that finally measure the multi-core scaling
//!   story of `SimConfig::shards`;
//! * event-engine counters: a power-of-two skip-length histogram, the
//!   wake-up cause breakdown (arrival ring, open poll, rate window,
//!   credit sleeper, link busy, watchdog/cycle-limit clamps) and
//!   fresh-activity suppressions;
//! * active-set occupancy and the per-cycle `cycle_is_wide`
//!   spawn-vs-inline decisions.
//!
//! Collection is purely observational: the profiler reads the host clock
//! and its own counters, never simulation state, so `NetStats`, traces
//! and error cycles are byte-identical with profiling on or off in every
//! engine mode and at every shard count (pinned by the engine
//! equivalence tests). Disabled, it costs one predictable branch beside
//! the tracer's. Wall-clock fields are host-dependent by nature and are
//! excluded from golden fingerprints and run-cache identity.

use serde::{Deserialize, Serialize};

/// Number of power-of-two skip-length buckets in
/// [`EventPerf::skip_histogram`]: bucket `k` counts fast-forward jumps of
/// `c` cycles with `floor(log2(c)) == k` (bucket 0 holds length-1 skips).
/// 24 buckets cover skips up to 16M cycles, far beyond the watchdog clamp.
pub const SKIP_BUCKETS: usize = 24;

/// Profiler configuration; attach to
/// [`SimConfig::perf`](crate::SimConfig::perf) to enable collection.
/// Carries no knobs today — the struct exists so future sampling options
/// (e.g. occupancy sampling stride) extend the wire format compatibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PerfConfig {}

/// Progress-heartbeat configuration; attach to
/// [`SimConfig::progress`](crate::SimConfig::progress) to make the engine
/// print a rate-limited status line to **stderr** during long runs
/// (current cycle, packets delivered, elapsed wall time, ETA). Stdout is
/// never touched, so piped output stays byte-identical. Off by default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressConfig {
    /// Minimum wall-clock seconds between heartbeat lines.
    pub interval_secs: f64,
}

impl Default for ProgressConfig {
    fn default() -> Self {
        ProgressConfig { interval_secs: 1.0 }
    }
}

/// Wall-clock seconds spent in each engine phase (see the phase walk in
/// `crates/sim/src/engine/phases.rs`). Section A of a cycle is
/// `arrivals + deliveries + cpu`, section B is `id_fixup + arbitration`,
/// section C is `drain`, so the six slots also reconstruct the
/// per-section split exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseSecs {
    /// Phase 1: committing in-flight ring arrivals into VC FIFOs.
    pub arrivals: f64,
    /// Phase 2: moving deliverable FIFO heads into reception FIFOs.
    pub deliveries: f64,
    /// Phase 3: reception drains, program pulls and injections.
    pub cpu: f64,
    /// Section-B packet-id fix-up (prefix sum + provisional-id rewrite).
    pub id_fixup: f64,
    /// Phase 4: output-link arbitration, including the staging-mailbox
    /// hand-off at the end of section B.
    pub arbitration: f64,
    /// Section C: staged-arrival inbox drain + deferred credit releases.
    pub drain: f64,
}

impl PhaseSecs {
    /// Sum of all six phase slots.
    pub fn total(&self) -> f64 {
        self.arrivals + self.deliveries + self.cpu + self.id_fixup + self.arbitration + self.drain
    }

    /// Accumulate another record into this one.
    pub fn add(&mut self, other: &PhaseSecs) {
        self.arrivals += other.arrivals;
        self.deliveries += other.deliveries;
        self.cpu += other.cpu;
        self.id_fixup += other.id_fixup;
        self.arbitration += other.arbitration;
        self.drain += other.drain;
    }

    /// `(label, seconds)` pairs in phase order, for reports and CSV.
    pub fn named(&self) -> [(&'static str, f64); 6] {
        [
            ("arrivals", self.arrivals),
            ("deliveries", self.deliveries),
            ("cpu", self.cpu),
            ("id_fixup", self.id_fixup),
            ("arbitration", self.arbitration),
            ("drain", self.drain),
        ]
    }
}

/// One shard's wall-clock account: phase time plus, for threaded cycles,
/// the time the shard's thread spent parked at the two per-cycle
/// barriers. High `barrier_wait` relative to `busy` on one shard means
/// the others are the bottleneck — the load-imbalance signal.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardPerf {
    /// Phase-attributed busy time of this shard.
    pub phases: PhaseSecs,
    /// Seconds parked at the section A→B barrier (threaded cycles only;
    /// inline cycles have no barrier).
    pub barrier_a_wait_secs: f64,
    /// Seconds parked at the section B→C barrier.
    pub barrier_b_wait_secs: f64,
}

impl ShardPerf {
    /// Total busy (non-waiting) seconds of this shard.
    pub fn busy_secs(&self) -> f64 {
        self.phases.total()
    }

    /// Total barrier-wait seconds of this shard.
    pub fn barrier_wait_secs(&self) -> f64 {
        self.barrier_a_wait_secs + self.barrier_b_wait_secs
    }
}

/// Event-engine counters: what the skip-ahead layer did and why it woke.
/// Wake-cause counts classify each actual fast-forward jump by the
/// component whose bound won the earliest-event minimum; clamp counts
/// record jumps cut short by the watchdog or cycle-limit horizon.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EventPerf {
    /// Cycles the engine never stepped (total fast-forward distance).
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub skips: u64,
    /// Power-of-two histogram of jump lengths (see [`SKIP_BUCKETS`]).
    pub skip_histogram: [u64; SKIP_BUCKETS],
    /// Skip decisions suppressed because a stepped event marked a node
    /// fresh during the previous cycle (arbitration inputs changed — the
    /// engine must re-arbitrate next cycle).
    pub fresh_suppressions: u64,
    /// Jumps bounded by the earliest in-flight ring arrival.
    pub wake_arrival_ring: u64,
    /// Jumps bounded by a CPU-ready node with an open poll (queued sends
    /// or a program that may accept a pull as soon as its CPU frees up).
    pub wake_open_poll: u64,
    /// Jumps bounded by a closed rate window's `next_allowed` boundary.
    pub wake_rate_window: u64,
    /// Jumps bounded by a `SleepUntilDelivery` sleeper (typically a
    /// credit-window-blocked program) whose reception FIFO has work.
    pub wake_credit_sleeper: u64,
    /// Jumps bounded by a busy output link's release cycle.
    pub wake_link_busy: u64,
    /// Jumps clamped to the watchdog horizon
    /// (`last_progress + watchdog_cycles + 1`).
    pub wake_watchdog_clamp: u64,
    /// Jumps clamped to the `max_cycles` safety limit.
    pub wake_cycle_limit_clamp: u64,
}

impl EventPerf {
    /// Record one fast-forward jump of `len` cycles (`len > 0`).
    pub fn record_skip(&mut self, len: u64) {
        debug_assert!(len > 0, "a skip must move the clock");
        self.skipped_cycles += len;
        self.skips += 1;
        let bucket = (63 - len.max(1).leading_zeros() as usize).min(SKIP_BUCKETS - 1);
        self.skip_histogram[bucket] += 1;
    }

    /// `(label, count)` pairs for the wake-cause breakdown, in the order
    /// reports render them.
    pub fn wake_causes(&self) -> [(&'static str, u64); 7] {
        [
            ("arrival_ring", self.wake_arrival_ring),
            ("open_poll", self.wake_open_poll),
            ("rate_window", self.wake_rate_window),
            ("credit_sleeper", self.wake_credit_sleeper),
            ("link_busy", self.wake_link_busy),
            ("watchdog_clamp", self.wake_watchdog_clamp),
            ("cycle_limit_clamp", self.wake_cycle_limit_clamp),
        ]
    }
}

/// A completed run's host-side performance profile (see the module docs
/// for what is collected). All times are wall-clock seconds on the host;
/// none of this data describes *simulated* time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfProfile {
    /// Wall-clock seconds of the whole `Engine::run` call, every exit
    /// path included (completion, stall, cycle limit).
    pub total_secs: f64,
    /// Cycles actually stepped through the four phases. Equals the final
    /// cycle count except in event mode, where skipped cycles are absent.
    pub stepped_cycles: u64,
    /// Stepped cycles that ran threaded (`cycle_is_wide` said the
    /// active-set estimate justified spawning shard threads).
    pub wide_cycles: u64,
    /// Stepped cycles that ran inline on the caller's thread.
    pub inline_cycles: u64,
    /// Mean marked active-set population (CPU + arbitration sets, all
    /// shards) over the stepped cycles — the quantity `cycle_is_wide`
    /// estimates from.
    pub active_occupancy_mean: f64,
    /// Largest marked active-set population seen in any stepped cycle.
    pub active_occupancy_max: u64,
    /// One record per shard (a single entry when sharding is off).
    pub shards: Vec<ShardPerf>,
    /// Event-engine counters; `None` unless the run used
    /// [`EngineMode::EventDriven`](crate::EngineMode).
    pub event: Option<EventPerf>,
}

impl PerfProfile {
    /// Phase times summed over every shard.
    pub fn phase_totals(&self) -> PhaseSecs {
        let mut t = PhaseSecs::default();
        for s in &self.shards {
            t.add(&s.phases);
        }
        t
    }

    /// Total phase-attributed busy seconds across all shards.
    pub fn busy_secs(&self) -> f64 {
        self.shards.iter().map(ShardPerf::busy_secs).sum()
    }

    /// Total barrier-wait seconds across all shards.
    pub fn barrier_wait_secs(&self) -> f64 {
        self.shards.iter().map(ShardPerf::barrier_wait_secs).sum()
    }

    /// Cycles skipped by the event engine (0 outside event mode).
    pub fn skipped_cycles(&self) -> u64 {
        self.event.as_ref().map_or(0, |e| e.skipped_cycles)
    }

    /// Load-imbalance ratio: the busiest shard's phase time over the
    /// mean shard phase time. 1.0 means perfectly balanced (and is also
    /// returned for the degenerate no-work cases).
    pub fn shard_imbalance(&self) -> f64 {
        let n = self.shards.len();
        if n == 0 {
            return 1.0;
        }
        let busiest = self
            .shards
            .iter()
            .map(ShardPerf::busy_secs)
            .fold(0.0f64, f64::max);
        let mean = self.busy_secs() / n as f64;
        if mean > 0.0 {
            busiest / mean
        } else {
            1.0
        }
    }

    /// RFC-4180 CSV rendering (CRLF rows, via the shared
    /// [`crate::csv::push_row`] writer): a `metric,value` pair per row —
    /// run totals, per-phase totals, per-shard busy/barrier splits, and
    /// the event counters + skip histogram when present.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut row = |metric: String, value: String| {
            crate::csv::push_row(&mut out, [metric, value], "\r\n");
        };
        row("metric".into(), "value".into());
        row("total_secs".into(), self.total_secs.to_string());
        row("stepped_cycles".into(), self.stepped_cycles.to_string());
        row("wide_cycles".into(), self.wide_cycles.to_string());
        row("inline_cycles".into(), self.inline_cycles.to_string());
        row(
            "active_occupancy_mean".into(),
            self.active_occupancy_mean.to_string(),
        );
        row(
            "active_occupancy_max".into(),
            self.active_occupancy_max.to_string(),
        );
        for (label, secs) in self.phase_totals().named() {
            row(format!("phase_{label}_secs"), secs.to_string());
        }
        for (i, s) in self.shards.iter().enumerate() {
            row(format!("shard{i}_busy_secs"), s.busy_secs().to_string());
            row(
                format!("shard{i}_barrier_a_wait_secs"),
                s.barrier_a_wait_secs.to_string(),
            );
            row(
                format!("shard{i}_barrier_b_wait_secs"),
                s.barrier_b_wait_secs.to_string(),
            );
        }
        if let Some(ev) = &self.event {
            row("skipped_cycles".into(), ev.skipped_cycles.to_string());
            row("skips".into(), ev.skips.to_string());
            row(
                "fresh_suppressions".into(),
                ev.fresh_suppressions.to_string(),
            );
            for (label, count) in ev.wake_causes() {
                row(format!("wake_{label}"), count.to_string());
            }
            for (k, count) in ev.skip_histogram.iter().enumerate() {
                row(format!("skip_len_2e{k}"), count.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(busy: f64) -> ShardPerf {
        ShardPerf {
            phases: PhaseSecs {
                cpu: busy * 0.5,
                arbitration: busy * 0.5,
                ..PhaseSecs::default()
            },
            ..ShardPerf::default()
        }
    }

    #[test]
    fn skip_histogram_buckets_are_powers_of_two() {
        let mut ev = EventPerf::default();
        for len in [1, 2, 3, 4, 7, 8, 1 << 20, 1 << 40] {
            ev.record_skip(len);
        }
        assert_eq!(ev.skips, 8);
        assert_eq!(ev.skip_histogram[0], 1); // 1
        assert_eq!(ev.skip_histogram[1], 2); // 2, 3
        assert_eq!(ev.skip_histogram[2], 2); // 4, 7
        assert_eq!(ev.skip_histogram[3], 1); // 8
        assert_eq!(ev.skip_histogram[20], 1);
        // Out-of-range lengths land in the last bucket.
        assert_eq!(ev.skip_histogram[SKIP_BUCKETS - 1], 1);
        assert_eq!(
            ev.skipped_cycles,
            1 + 2 + 3 + 4 + 7 + 8 + (1 << 20) + (1 << 40)
        );
    }

    #[test]
    fn phase_totals_sum_shards() {
        let p = PerfProfile {
            shards: vec![shard(1.0), shard(3.0)],
            ..PerfProfile::default()
        };
        let t = p.phase_totals();
        assert!((t.cpu - 2.0).abs() < 1e-12);
        assert!((t.total() - 4.0).abs() < 1e-12);
        assert!((p.busy_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let p = PerfProfile {
            shards: vec![shard(1.0), shard(3.0)],
            ..PerfProfile::default()
        };
        // Mean busy 2.0, busiest 3.0.
        assert!((p.shard_imbalance() - 1.5).abs() < 1e-12);
        // Degenerate cases report balance.
        assert_eq!(PerfProfile::default().shard_imbalance(), 1.0);
        let idle = PerfProfile {
            shards: vec![ShardPerf::default(); 4],
            ..PerfProfile::default()
        };
        assert_eq!(idle.shard_imbalance(), 1.0);
    }

    #[test]
    fn csv_is_metric_value_pairs() {
        let p = PerfProfile {
            total_secs: 0.5,
            stepped_cycles: 100,
            shards: vec![shard(0.25)],
            event: Some(EventPerf::default()),
            ..PerfProfile::default()
        };
        let csv = p.to_csv();
        let rows = crate::csv::parse(&csv);
        assert_eq!(rows[0], vec!["metric", "value"]);
        for r in &rows {
            assert_eq!(r.len(), 2, "{r:?}");
        }
        assert!(rows.iter().any(|r| r[0] == "total_secs" && r[1] == "0.5"));
        assert!(rows.iter().any(|r| r[0] == "phase_cpu_secs"));
        assert!(rows.iter().any(|r| r[0] == "shard0_busy_secs"));
        assert!(rows.iter().any(|r| r[0] == "wake_rate_window"));
        assert!(rows.iter().any(|r| r[0] == "skip_len_2e0"));
        // No quoting ever triggers: metrics and numbers are comma-free.
        assert!(!csv.contains('"'));
    }

    #[test]
    fn profile_round_trips_json() {
        let mut ev = EventPerf::default();
        ev.record_skip(37);
        ev.wake_rate_window += 1;
        let p = PerfProfile {
            total_secs: 1.25,
            stepped_cycles: 10,
            wide_cycles: 4,
            inline_cycles: 6,
            active_occupancy_mean: 3.5,
            active_occupancy_max: 9,
            shards: vec![shard(0.5), shard(0.75)],
            event: Some(ev),
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: PerfProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // The config structs round-trip through the value tree too.
        let cfg = PerfConfig::default();
        assert_eq!(PerfConfig::from_value(&cfg.to_value()).unwrap(), cfg);
        let pr = ProgressConfig::default();
        assert_eq!(ProgressConfig::from_value(&pr.to_value()).unwrap(), pr);
    }
}
