//! Engine-side state for the host profiler and the progress heartbeat
//! (the public data model lives in [`crate::perf`]).
//!
//! Both are observers in the tracer/oracle mould: `Option<Box<...>>`
//! fields on the engine, one predictable branch per cycle when disabled,
//! and no reads of (let alone writes to) simulation state that could
//! perturb results — the profiler touches only the host clock and its own
//! counters, the heartbeat only stderr.

use super::event::{PollState, WakeCause};
use super::Engine;
use crate::perf::{EventPerf, PerfProfile, ProgressConfig, ShardPerf};
use std::time::Instant;

/// Live profiler state: the profile under construction plus accumulators
/// that only make sense mid-run (the occupancy sum becomes a mean in
/// [`Engine::take_perf`]).
pub(super) struct PerfState {
    pub(super) profile: PerfProfile,
    /// Sum of per-cycle marked active-set populations over stepped cycles.
    pub(super) occupancy_sum: u64,
}

impl PerfState {
    pub(super) fn new(nshards: usize, event_mode: bool) -> PerfState {
        PerfState {
            profile: PerfProfile {
                shards: vec![ShardPerf::default(); nshards],
                event: event_mode.then(EventPerf::default),
                ..PerfProfile::default()
            },
            occupancy_sum: 0,
        }
    }
}

/// Rate-limited stderr heartbeat. Consulting the host clock every cycle
/// would dominate thin cycles, so the state adapts a cycle stride aimed at
/// a handful of clock reads per emit interval.
pub(super) struct ProgressState {
    interval_secs: f64,
    started: Instant,
    last_emit: Instant,
    /// Next cycle at which to consult the host clock.
    next_check: u64,
    /// Current stride between clock checks, in cycles.
    stride: u64,
}

impl ProgressState {
    pub(super) fn new(cfg: &ProgressConfig) -> ProgressState {
        let now = Instant::now();
        ProgressState {
            interval_secs: cfg.interval_secs.max(0.01),
            started: now,
            last_emit: now,
            next_check: 0,
            stride: 1024,
        }
    }
}

impl Engine {
    /// The profile collected so far; `None` unless `SimConfig::perf` was
    /// set (or after [`Engine::take_perf`]). Derived fields (occupancy
    /// mean) are only finalized by `take_perf`.
    pub fn perf(&self) -> Option<&PerfProfile> {
        self.perf.as_ref().map(|p| &p.profile)
    }

    /// Detach the collected [`PerfProfile`], finalizing derived fields.
    /// Returns `None` if profiling was off or the profile was already
    /// taken. Call after [`Engine::run`] (also meaningful after an `Err`:
    /// the profile covers the cycles that did run).
    pub fn take_perf(&mut self) -> Option<PerfProfile> {
        let state = self.perf.take()?;
        let mut profile = state.profile;
        if profile.stepped_cycles > 0 {
            profile.active_occupancy_mean =
                state.occupancy_sum as f64 / profile.stepped_cycles as f64;
        }
        Some(profile)
    }

    /// Per-stepped-cycle bookkeeping: occupancy sample plus the
    /// spawn-vs-inline decision. Only called when profiling is on.
    pub(super) fn perf_note_step(&mut self, wide: bool) {
        let occ: u64 = self
            .shards
            .iter()
            .map(|sd| (sd.cpu_active.popcount() + sd.arb_active.popcount()) as u64)
            .sum();
        let p = self
            .perf
            .as_deref_mut()
            .expect("perf_note_step requires profiling on");
        p.profile.stepped_cycles += 1;
        if wide {
            p.profile.wide_cycles += 1;
        } else {
            p.profile.inline_cycles += 1;
        }
        p.occupancy_sum += occ;
        p.profile.active_occupancy_max = p.profile.active_occupancy_max.max(occ);
    }

    /// Count a fast-forward suppressed purely by a freshness mark. Only
    /// called in event mode with profiling on.
    pub(super) fn perf_note_fresh_suppression(&mut self) {
        if let Some(evp) = self.perf_event_counters() {
            evp.fresh_suppressions += 1;
        }
    }

    /// Record one fast-forward jump: `raw` is the unclamped earliest
    /// event, `clamped` what the engine will actually jump to, `cause`
    /// the component that set the raw bound. Called before `now` moves.
    /// Only called in event mode with profiling on.
    pub(super) fn perf_note_skip(
        &mut self,
        raw: u64,
        clamped: u64,
        watchdog_fire: u64,
        cause: WakeCause,
    ) {
        let len = clamped - self.now;
        // Classify before touching the profile so the event-state read
        // and the profile write never borrow `self` simultaneously.
        let poll = match cause {
            WakeCause::Cpu(g) => Some(self.events.as_ref().expect("event mode").nodes[g].poll),
            _ => None,
        };
        let Some(evp) = self.perf_event_counters() else {
            return;
        };
        evp.record_skip(len);
        if clamped < raw {
            // The jump was cut short by a safety horizon, not a wake.
            if clamped == watchdog_fire {
                evp.wake_watchdog_clamp += 1;
            } else {
                evp.wake_cycle_limit_clamp += 1;
            }
            return;
        }
        match cause {
            WakeCause::Arrival => evp.wake_arrival_ring += 1,
            WakeCause::Cpu(_) => match poll.expect("classified above") {
                PollState::Open => evp.wake_open_poll += 1,
                PollState::Rate => evp.wake_rate_window += 1,
                PollState::Asleep { .. } => evp.wake_credit_sleeper += 1,
            },
            WakeCause::LinkBusy => evp.wake_link_busy += 1,
            // Fresh/DeliverQ return `now` (never a jump); Idle without a
            // clamp cannot reach here because `u64::MAX` always clamps.
            WakeCause::Fresh | WakeCause::DeliverQ | WakeCause::Idle => {}
        }
    }

    /// The event-counter block of the profile, if both profiling and
    /// event mode are on.
    fn perf_event_counters(&mut self) -> Option<&mut EventPerf> {
        self.perf.as_deref_mut()?.profile.event.as_mut()
    }

    /// Rate-limited heartbeat, called from the run loop whenever
    /// `now >= next_check`. Reads the host clock, and if the configured
    /// interval has elapsed prints one status line to stderr; either way
    /// it re-aims the cycle stride at ~8 clock reads per interval.
    pub(super) fn progress_heartbeat(&mut self) {
        let Some(pr) = self.progress.as_deref_mut() else {
            return;
        };
        let since_emit = pr.last_emit.elapsed().as_secs_f64();
        if since_emit >= pr.interval_secs {
            let elapsed = pr.started.elapsed().as_secs_f64();
            let done = self.done_programs;
            let total = self.programs.len();
            let eta = if done > 0 && done < total && elapsed > 0.0 {
                let rate = done as f64 / elapsed;
                format!("~{:.0}s", (total - done) as f64 / rate)
            } else {
                "?".to_string()
            };
            eprintln!(
                "progress: cycle {}, {} packets delivered, {}/{} programs done, \
                 elapsed {:.1}s, eta {}",
                self.now, self.stats.packets_delivered, done, total, elapsed, eta
            );
            pr.last_emit = Instant::now();
        } else {
            // Aim the stride so ~8 checks span each interval, using the
            // run-average cycle rate, clamped to stay responsive yet cheap.
            let elapsed = pr.started.elapsed().as_secs_f64();
            let cycles_per_sec = self.now as f64 / elapsed.max(1e-6);
            let want = (cycles_per_sec * pr.interval_secs / 8.0) as u64;
            pr.stride = want.clamp(256, 1 << 24);
        }
        pr.next_check = self.now + pr.stride;
    }

    /// Whether the run loop should consult [`Engine::progress_heartbeat`]
    /// this cycle. Off-path cost: one predictable branch.
    #[inline]
    pub(super) fn progress_due(&self) -> bool {
        match &self.progress {
            Some(pr) => self.now >= pr.next_check,
            None => false,
        }
    }
}
