//! Time-series sampling: the [`Tracer`] component and the engine's
//! trace-recording methods.
//!
//! Sampling is purely observational — `NetStats` is byte-identical with
//! tracing on or off, in every [`EngineMode`](crate::EngineMode). The
//! event-driven engine guarantees this by treating each `next_at`
//! boundary as a wake-up of its own: a skipped interval is split at every
//! sample boundary and a (forced-position, regular-content) sample is
//! recorded there, so per-window deltas telescope to the run totals
//! exactly as they do under cycle-stepped time.

use super::Engine;
use crate::config::{Vc, NUM_VCS};
use crate::node::vc_fifo_index;
use crate::trace::{OccStat, Trace, TraceSample};

/// Sampling state for an enabled tracer: the accumulating [`Trace`] plus
/// a snapshot of every cumulative counter at the previous sample, so each
/// [`TraceSample`] records exact per-window deltas. Boxed behind an
/// `Option` on the engine — the disabled case costs one pointer and one
/// predictable branch per cycle.
pub(super) struct Tracer {
    pub(super) interval: u64,
    pub(super) max_samples: usize,
    /// Cycle at which the next periodic sample fires (`u64::MAX` once the
    /// `max_samples` cap is hit).
    pub(super) next_at: u64,
    pub(super) last_link_busy: Vec<u64>,
    pub(super) last_hops: Vec<u64>,
    pub(super) last_cpu_busy: f64,
    pub(super) last_stalls: u64,
    pub(super) last_injected: u64,
    pub(super) last_delivered: u64,
    pub(super) last_pacing_blocked: u64,
    pub(super) last_credit_blocked: u64,
    pub(super) trace: Trace,
}

impl Tracer {
    pub(super) fn new(cfg: &crate::trace::TraceConfig, ndims: usize) -> Tracer {
        assert!(cfg.interval_cycles > 0, "trace interval must be positive");
        Tracer {
            interval: cfg.interval_cycles,
            max_samples: cfg.max_samples,
            next_at: cfg.interval_cycles,
            last_link_busy: vec![0; ndims],
            last_hops: vec![0; ndims],
            last_cpu_busy: 0.0,
            last_stalls: 0,
            last_injected: 0,
            last_delivered: 0,
            last_pacing_blocked: 0,
            last_credit_blocked: 0,
            trace: Trace {
                interval_cycles: cfg.interval_cycles,
                samples: Vec::new(),
                truncated: false,
            },
        }
    }
}

impl Engine {
    /// The trace recorded so far, if tracing is enabled. Does not include
    /// the final partial-window sample — use [`Engine::take_trace`] after
    /// the run for the completed series.
    pub fn trace(&self) -> Option<&Trace> {
        self.tracer.as_ref().map(|t| &t.trace)
    }

    /// Finalize and return the trace: records one last partial-window
    /// sample if any counter moved since the previous sample (so the
    /// per-sample deltas sum exactly to the [`NetStats`](crate::NetStats)
    /// totals), then hands the series out. Returns `None` when tracing
    /// was disabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.as_ref()?;
        self.sync_cpu_busy();
        if self.trace_counters_moved() {
            self.record_trace_sample(true);
        }
        self.tracer.take().map(|t| t.trace)
    }

    /// Whether any traced cumulative counter changed since the last
    /// recorded sample.
    fn trace_counters_moved(&self) -> bool {
        let Some(tr) = &self.tracer else { return false };
        self.stats.link_busy_chunks != tr.last_link_busy
            || self.stats.hops_taken != tr.last_hops
            || self.stats.cpu_busy_cycles != tr.last_cpu_busy
            || self.stats.reception_stall_events != tr.last_stalls
            || self.stats.packets_injected != tr.last_injected
            || self.stats.packets_delivered != tr.last_delivered
            || self.stats.pacing_blocked_cycles != tr.last_pacing_blocked
            || self.stats.credit_blocked_events != tr.last_credit_blocked
    }

    /// Record one sample at the current cycle. Periodic calls (`force ==
    /// false`) stop at the `max_samples` cap; forced calls (completion /
    /// stall snapshots) always record, folding any residual deltas into
    /// the final sample so totals stay exact.
    pub(super) fn record_trace_sample(&mut self, force: bool) {
        if self.tracer.is_none() {
            return;
        }
        // Fold the per-node CPU ledgers into `stats.cpu_busy_cycles` so
        // the sampled delta is exact (the fold order is fixed ascending,
        // independent of sharding).
        self.sync_cpu_busy();
        let Some(mut tracer) = self.tracer.take() else {
            return;
        };
        let at_cap = tracer.trace.samples.len() >= tracer.max_samples;
        let dup = tracer.trace.samples.last().map(|s| s.cycle) == Some(self.now);
        if at_cap && !force {
            tracer.trace.truncated = true;
            tracer.next_at = u64::MAX;
        } else if !dup {
            let sample = self.build_trace_sample(&mut tracer);
            tracer.trace.samples.push(sample);
            tracer.next_at = self.now + tracer.interval;
        }
        self.tracer = Some(tracer);
    }

    /// Build the sample for the window ending now and advance the
    /// tracer's counter snapshots. Read-only over the simulation state:
    /// sampling must never perturb results.
    fn build_trace_sample(&self, tracer: &mut Tracer) -> TraceSample {
        let s = &self.stats;
        let sub =
            |a: &[u64], b: &[u64]| -> Vec<u64> { a.iter().zip(b).map(|(x, y)| x - y).collect() };
        let mut sample = TraceSample {
            cycle: self.now,
            link_busy_delta: sub(&s.link_busy_chunks, &tracer.last_link_busy),
            hops_delta: sub(&s.hops_taken, &tracer.last_hops),
            cpu_busy_delta: s.cpu_busy_cycles - tracer.last_cpu_busy,
            reception_stall_delta: s.reception_stall_events - tracer.last_stalls,
            injected_delta: s.packets_injected - tracer.last_injected,
            delivered_delta: s.packets_delivered - tracer.last_delivered,
            pacing_blocked_delta: s.pacing_blocked_cycles - tracer.last_pacing_blocked,
            credit_blocked_delta: s.credit_blocked_events - tracer.last_credit_blocked,
            packets_in_flight: self.live_packets,
            pending_sends: self.pending_total,
            ..TraceSample::default()
        };
        tracer.last_link_busy = s.link_busy_chunks.clone();
        tracer.last_hops = s.hops_taken.clone();
        tracer.last_cpu_busy = s.cpu_busy_cycles;
        tracer.last_stalls = s.reception_stall_events;
        tracer.last_injected = s.packets_injected;
        tracer.last_delivered = s.packets_delivered;
        tracer.last_pacing_blocked = s.pacing_blocked_cycles;
        tracer.last_credit_blocked = s.credit_blocked_events;

        // Instantaneous FIFO occupancy, split by input-port dimension and
        // by bubble-vs-dynamic VC.
        let ndims = self.part.ndims();
        let mut dyn_sum = vec![0u64; ndims];
        let mut dyn_max = vec![0u32; ndims];
        let mut bub_sum = vec![0u64; ndims];
        let mut bub_max = vec![0u32; ndims];
        let mut inj_sum = 0u64;
        let mut inj_max = 0u32;
        let mut recv_sum = 0u64;
        let mut recv_max = 0u32;
        for node in &self.nodes {
            for port in 0..self.ports {
                let dim = port / 2; // two directions per dimension
                for vc in 0..NUM_VCS {
                    let occ = node.vcs[vc_fifo_index(port, vc)].occupied_chunks();
                    if vc == Vc::Bubble.index() {
                        bub_sum[dim] += occ as u64;
                        bub_max[dim] = bub_max[dim].max(occ);
                    } else {
                        dyn_sum[dim] += occ as u64;
                        dyn_max[dim] = dyn_max[dim].max(occ);
                    }
                }
            }
            for fifo in &node.inj {
                let occ = fifo.occupied_chunks();
                inj_sum += occ as u64;
                inj_max = inj_max.max(occ);
            }
            let occ = node.reception.occupied_chunks();
            recv_sum += occ as u64;
            recv_max = recv_max.max(occ);
        }
        let p = self.nodes.len() as f64;
        let occ_stat = |sum: u64, max: u32, fifos_per_node: f64| OccStat {
            mean_chunks: sum as f64 / (p * fifos_per_node),
            max_chunks: max,
        };
        // Per node and dimension: 2 ports × 2 dynamic VCs, 2 × 1 bubble.
        sample.dyn_vc_occupancy = (0..ndims)
            .map(|d| occ_stat(dyn_sum[d], dyn_max[d], 4.0))
            .collect();
        sample.bubble_vc_occupancy = (0..ndims)
            .map(|d| occ_stat(bub_sum[d], bub_max[d], 2.0))
            .collect();
        sample.inj_occupancy = occ_stat(inj_sum, inj_max, self.cfg.inj_fifo_count.max(1) as f64);
        sample.reception_occupancy = occ_stat(recv_sum, recv_max, 1.0);

        // Phase attribution and head-of-line blocking. Only occupied
        // FIFOs (the masks) are walked, so a sample on a mostly idle
        // partition stays cheap.
        let mut p1 = 0u64;
        let mut p2 = 0u64;
        let mut count_kind = |kind: u8| match kind {
            1 => p1 += 1,
            2 => p2 += 1,
            _ => {}
        };
        let mut hol = 0u64;
        for (ni, node) in self.nodes.iter().enumerate() {
            let mut mask = node.vc_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for pkt in node.vcs[f].iter() {
                    count_kind(pkt.meta.kind);
                }
                if let Some(head) = node.vcs[f].head() {
                    if !head.plan.is_done() && self.head_is_hol_blocked(ni, f, head) {
                        hol += 1;
                    }
                }
            }
            let mut mask = node.inj_mask;
            while mask != 0 {
                let f = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for pkt in node.inj[f].iter() {
                    count_kind(pkt.meta.kind);
                }
            }
        }
        for sd in &self.shards {
            for slot in &sd.ring {
                for arrival in slot {
                    count_kind(arrival.pkt.meta.kind);
                }
            }
        }
        sample.phase1_in_flight = p1;
        sample.phase2_in_flight = p2;
        sample.hol_blocked_heads = hol;
        sample
    }
}
